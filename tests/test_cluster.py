"""Tests for the clustering / dependence substrate (KMeans, RDC)."""

import numpy as np
import pytest

from repro.cluster import kmeans, rdc, rdc_matrix


class TestKMeans:
    def test_separates_two_blobs(self, rng):
        a = rng.normal(loc=0.0, size=(100, 2))
        b = rng.normal(loc=10.0, size=(100, 2))
        points = np.vstack([a, b])
        labels, centers = kmeans(points, 2, rng)
        # Each blob must be (almost) pure.
        first, second = labels[:100], labels[100:]
        assert np.mean(first == np.round(np.median(first))) > 0.95
        assert np.mean(second == np.round(np.median(second))) > 0.95
        assert np.median(first) != np.median(second)

    def test_k_greater_than_n(self, rng):
        points = rng.normal(size=(3, 2))
        labels, centers = kmeans(points, 5, rng)
        assert len(labels) == 3

    def test_all_points_assigned(self, rng):
        points = rng.normal(size=(50, 3))
        labels, _ = kmeans(points, 4, rng)
        assert labels.shape == (50,)
        assert set(np.unique(labels)) <= {0, 1, 2, 3}

    def test_identical_points(self, rng):
        points = np.ones((20, 2))
        labels, _ = kmeans(points, 2, rng)
        assert len(labels) == 20

    def test_validates_input(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2, rng)
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 1)), 0, rng)

    def test_scale_invariance_of_clustering(self, rng):
        """A huge-domain column must not dominate: standardisation works."""
        x = np.concatenate([np.zeros(50), np.ones(50)])
        noise = rng.normal(size=100) * 1e6
        points = np.column_stack([x, noise])
        labels, _ = kmeans(points, 2, rng)
        # Clusters should follow the informative binary column at least
        # roughly, not the million-scale noise (which is uninformative).
        agreement = max(np.mean(labels == x), np.mean(labels == 1 - x))
        assert agreement > 0.6


class TestRdc:
    def test_independent_near_zero(self, rng):
        x = rng.normal(size=1500)
        y = rng.normal(size=1500)
        assert rdc(x, y, rng) < 0.35

    def test_linear_dependence_high(self, rng):
        x = rng.normal(size=1500)
        y = 2 * x + rng.normal(scale=0.01, size=1500)
        assert rdc(x, y, rng) > 0.9

    def test_nonlinear_dependence_detected(self, rng):
        """RDC (unlike Pearson) sees y = x^2 on symmetric x."""
        x = rng.uniform(-1, 1, size=1500)
        y = x**2 + rng.normal(scale=0.01, size=1500)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.2
        assert rdc(x, y, rng) > 0.5

    def test_constant_column_zero(self, rng):
        x = np.ones(100)
        y = rng.normal(size=100)
        assert rdc(x, y, rng) == 0.0

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            rdc(np.ones(5), np.ones(6), rng)

    def test_range(self, rng):
        for _ in range(5):
            x = rng.normal(size=300)
            y = rng.normal(size=300) + 0.5 * x
            score = rdc(x, y, rng)
            assert 0.0 <= score <= 1.0


class TestRdcMatrix:
    def test_shape_and_diagonal(self, rng):
        data = rng.normal(size=(300, 4))
        m = rdc_matrix(data, rng)
        assert m.shape == (4, 4)
        np.testing.assert_array_equal(np.diag(m), np.ones(4))
        np.testing.assert_allclose(m, m.T)

    def test_detects_dependent_pair(self, rng):
        a = rng.normal(size=500)
        b = a + rng.normal(scale=0.05, size=500)
        c = rng.normal(size=500)
        m = rdc_matrix(np.column_stack([a, b, c]), rng)
        assert m[0, 1] > 0.9
        assert m[0, 2] < 0.5

    def test_subsampling_cap(self, rng):
        data = rng.normal(size=(5000, 2))
        # Just verify it runs fast and returns sane values with the cap.
        m = rdc_matrix(data, rng, max_rows=500)
        assert 0.0 <= m[0, 1] <= 1.0
