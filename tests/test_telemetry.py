"""Cross-process telemetry, per-tenant SLOs, and exemplars (PR 7).

Unit coverage for the observability additions the sharded serving tier
rides on:

* :mod:`repro.obs.transport` — worker-side delta capture with bounded
  drop-oldest buffers, and the parent-side merge that dedupes on
  ``(worker_pid, seq)`` so a retransmitted snapshot can never
  double-count;
* span re-parenting: a worker span recorded under a propagated trace
  context links back to the dispatching ``serve.batch`` span after the
  merge;
* :mod:`repro.obs.slo` — multi-window burn-rate breach/recovery;
* :mod:`repro.obs.exemplars` — per-tenant top-K boards;
* the ``record_actual`` feedback loop through a shard router, and the
  SLO signal into :class:`~repro.lifecycle.drift.DriftDetector`;
* :func:`repro.obs.reset_for_tests` covering all of the above.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core import CardinalityEstimator, Predicate, Query, generate_workload
from repro.lifecycle.drift import DriftDetector
from repro.obs import (
    LATENCY,
    OBS_DROPPED,
    QERROR,
    EventLog,
    Exemplar,
    ExemplarStore,
    MetricsRegistry,
    SloObjective,
    SloRegistry,
    Span,
    SpanCollector,
    TelemetryCapture,
    TelemetryMerger,
    TelemetrySnapshot,
    clear_trace_context,
    current_trace_context,
    get_capture,
    get_collector,
    get_exemplars,
    get_slos,
    install_collector,
    install_worker_capture,
    set_trace_context,
    span,
)
from repro.serve.heuristic import HeuristicConstantEstimator
from repro.shard import ShardRequest, ShardRouter


class ConstantEstimator(CardinalityEstimator):
    """Answers a constant; fit is free."""

    def __init__(self, value: float = 5.0, name: str = "constant") -> None:
        super().__init__()
        self.value = value
        self.name = name

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return self.value


def distinct_queries(n: int) -> list[Query]:
    return [
        Query((Predicate(0, float(i % 6), float(i % 6) + 0.5 + i),))
        for i in range(n)
    ]


def make_span(i: int, name: str = "s") -> Span:
    return Span(
        name=name,
        span_id=1000 + i,
        parent_id=None,
        trace_id=77,
        start=float(i),
        end=float(i) + 0.5,
        attrs={"i": i},
    )


def fresh_capture(**kwargs) -> TelemetryCapture:
    defaults = dict(
        shard="s0",
        worker="w0",
        registry=MetricsRegistry(),
        collector=SpanCollector(),
        events=EventLog(),
    )
    defaults.update(kwargs)
    return TelemetryCapture(**defaults)


# ----------------------------------------------------------------------
# Worker-side delta capture
# ----------------------------------------------------------------------
class TestTelemetryCapture:
    def test_take_is_a_delta(self):
        registry = MetricsRegistry()
        capture = fresh_capture(registry=registry)
        registry.counter("test_queries_total").inc(3)
        first = capture.take()
        assert first.metrics["test_queries_total"]["series"][0]["value"] == 3.0
        # the registry was reset: the next take carries no series
        second = capture.take()
        assert second.metrics["test_queries_total"]["series"] == []

    def test_seq_increments_per_take(self):
        capture = fresh_capture()
        assert [capture.take().seq for _ in range(3)] == [1, 2, 3]

    def test_identity_labels_ride_the_snapshot(self):
        snapshot = fresh_capture(shard="shard-3", worker="w1").take()
        assert snapshot.shard == "shard-3"
        assert snapshot.worker == "w1"
        assert snapshot.worker_pid > 0

    def test_empty_snapshot_is_empty(self):
        assert fresh_capture().take().is_empty()

    def test_spans_truncated_drop_oldest(self):
        collector = SpanCollector()
        capture = fresh_capture(collector=collector, max_spans=2)
        for i in range(5):
            collector.add(make_span(i))
        snapshot = capture.take()
        assert [s["span_id"] for s in snapshot.spans] == [1003, 1004]
        assert snapshot.dropped_spans == 3

    def test_ring_eviction_between_takes_is_counted(self):
        collector = SpanCollector(capacity=2)
        capture = fresh_capture(collector=collector)
        for i in range(5):
            collector.add(make_span(i))
        snapshot = capture.take()
        assert len(snapshot.spans) == 2
        assert snapshot.dropped_spans == 3

    def test_events_truncated_drop_oldest(self):
        events = EventLog()
        capture = fresh_capture(events=events, max_events=2)
        for i in range(5):
            events.emit("tick", i=i)
        snapshot = capture.take()
        assert [e["i"] for e in snapshot.events] == [3, 4]
        assert snapshot.dropped_events == 3

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="bounds"):
            fresh_capture(max_spans=0)

    def test_install_worker_capture_registers_singleton(self):
        capture = install_worker_capture("s0", "w0")
        assert get_capture() is capture
        assert get_collector() is capture.collector


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------
def counter_snapshot(value: float, seq: int = 1, pid: int = 1234) -> TelemetrySnapshot:
    return TelemetrySnapshot(
        worker_pid=pid,
        worker="w0",
        shard="s0",
        seq=seq,
        metrics={
            "test_queries_total": {
                "kind": "counter",
                "help": "",
                "series": [{"labels": {"worker": "w0"}, "value": value}],
            }
        },
    )


class TestTelemetryMerger:
    def test_counters_gain_shard_and_pid_labels(self):
        registry = MetricsRegistry()
        merger = TelemetryMerger(registry=registry)
        assert merger.merge(counter_snapshot(5.0)) is True
        assert (
            registry.counter("test_queries_total").value(
                worker="w0", shard="s0", worker_pid=1234
            )
            == 5.0
        )

    def test_merge_is_idempotent_on_worker_pid_and_seq(self):
        """The dedupe satellite: a retransmitted snapshot (same
        ``(worker_pid, seq)``) is dropped whole, not double-counted."""
        registry = MetricsRegistry()
        merger = TelemetryMerger(registry=registry)
        snapshot = counter_snapshot(5.0)
        assert merger.merge(snapshot) is True
        assert merger.merge(snapshot) is False
        assert (
            registry.counter("test_queries_total").value(
                worker="w0", shard="s0", worker_pid=1234
            )
            == 5.0
        )
        assert merger.duplicate_total == 1
        assert (
            registry.counter(OBS_DROPPED).value(kind="duplicate_snapshot")
            == 1.0
        )

    def test_stale_seq_rejected(self):
        merger = TelemetryMerger(registry=MetricsRegistry())
        assert merger.merge(counter_snapshot(1.0, seq=2)) is True
        assert merger.merge(counter_snapshot(1.0, seq=1)) is False

    def test_same_seq_from_distinct_workers_both_merge(self):
        registry = MetricsRegistry()
        merger = TelemetryMerger(registry=registry)
        assert merger.merge(counter_snapshot(1.0, pid=1)) is True
        assert merger.merge(counter_snapshot(1.0, pid=2)) is True
        assert merger.merged_total == 2

    def test_merge_none_is_noop(self):
        assert TelemetryMerger(registry=MetricsRegistry()).merge(None) is False

    def test_spans_rehomed_with_identity_attrs(self):
        collector = SpanCollector()
        merger = TelemetryMerger(
            registry=MetricsRegistry(), collector=collector
        )
        snapshot = TelemetrySnapshot(
            worker_pid=1234,
            worker="w0",
            shard="s0",
            seq=1,
            spans=(make_span(0, name="estimator.estimate_batch").to_dict(),),
        )
        merger.merge(snapshot)
        (merged,) = collector.spans()
        assert merged.name == "estimator.estimate_batch"
        assert merged.attrs["worker_pid"] == 1234
        assert merged.attrs["shard"] == "s0"

    def test_spans_without_collector_counted_dropped(self):
        registry = MetricsRegistry()
        merger = TelemetryMerger(registry=registry)
        snapshot = TelemetrySnapshot(
            worker_pid=1,
            worker="w0",
            shard="s0",
            seq=1,
            spans=(make_span(0).to_dict(), make_span(1).to_dict()),
        )
        merger.merge(snapshot)
        assert registry.counter(OBS_DROPPED).value(kind="span") == 2.0

    def test_events_reemitted_with_worker_pid(self):
        events = EventLog()
        merger = TelemetryMerger(registry=MetricsRegistry(), events=events)
        snapshot = TelemetrySnapshot(
            worker_pid=42,
            worker="w0",
            shard="s0",
            seq=1,
            events=({"kind": "worker.thing", "seconds": 1.0, "detail": "x"},),
        )
        merger.merge(snapshot)
        (event,) = events.events(kind="worker.thing")
        assert event["detail"] == "x"
        assert event["worker_pid"] == 42

    def test_worker_side_drops_folded_into_parent_counter(self):
        registry = MetricsRegistry()
        merger = TelemetryMerger(registry=registry)
        snapshot = TelemetrySnapshot(
            worker_pid=1,
            worker="w0",
            shard="s0",
            seq=1,
            dropped_spans=2,
            dropped_events=3,
        )
        merger.merge(snapshot)
        dropped = registry.counter(OBS_DROPPED)
        assert dropped.value(kind="span") == 2.0
        assert dropped.value(kind="event") == 3.0


class TestSpanReparenting:
    def test_worker_span_links_under_dispatching_span(self):
        """Round-trip of the trace-context envelope: the worker adopts
        ``(trace_id, span_id)`` of the parent's ``serve.batch`` span, so
        its spans re-parent under it in the merged trace."""
        parent_collector = install_collector(SpanCollector())
        with span("serve.batch", shard="s0") as root:
            pass
        assert root is not None

        # "worker side": fresh collector, trace context from the envelope
        worker_collector = install_collector(SpanCollector())
        set_trace_context(root.trace_id, root.span_id)
        try:
            with span("estimator.estimate_batch"):
                pass
        finally:
            clear_trace_context()
        snapshot = fresh_capture(collector=worker_collector).take()

        merger = TelemetryMerger(
            registry=MetricsRegistry(), collector=parent_collector
        )
        merger.merge(snapshot)
        worker_spans = [
            s for s in parent_collector.spans() if "worker_pid" in s.attrs
        ]
        assert len(worker_spans) == 1
        assert worker_spans[0].parent_id == root.span_id
        assert worker_spans[0].trace_id == root.trace_id


# ----------------------------------------------------------------------
# SLO engine
# ----------------------------------------------------------------------
def tiny_objective(objective: str = LATENCY, **overrides) -> SloObjective:
    params = dict(
        objective=objective,
        threshold=1.0,  # 1 ms (latency) / ratio 1.0 (q-error) per-sample cut
        target=0.9,
        fast_window=4,
        slow_window=8,
        breach_burn_rate=2.0,
        recover_burn_rate=1.0,
        min_samples=4,
    )
    params.update(overrides)
    return SloObjective(**params)


class TestSloEngine:
    def test_noop_without_objectives(self):
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        assert slos.record_latency("t0", 100.0) is False
        assert slos.statuses() == []
        assert not slos.has_objectives()

    def test_breach_then_recovery_emits_events(self):
        registry, events = MetricsRegistry(), EventLog()
        slos = SloRegistry(registry=registry, events=events)
        slos.set_objective(tiny_objective())
        transitions = [slos.record_latency("t0", 0.005) for _ in range(8)]
        # breach the moment both windows have min_samples and burn hot
        assert transitions.index(True) == 3
        assert len(events.events(kind="slo.breach")) == 1
        assert slos.any_breached(LATENCY)
        assert slos.breached_tenants() == ["t0"]

        recovered = [slos.record_latency("t0", 0.0001) for _ in range(4)]
        assert recovered[-1] is True
        assert len(events.events(kind="slo.recovered")) == 1
        assert not slos.any_breached()
        (status,) = slos.statuses()
        assert status.breaches == 1 and status.recoveries == 1
        assert status.samples == 12 and status.bad_samples == 8

    def test_slow_window_vetoes_a_momentary_spike(self):
        """The multi-window rule: a burst that fills the fast window but
        not the slow one must not page."""
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(slow_window=40))
        for _ in range(36):
            assert slos.record_latency("t0", 0.0001) is False
        # 4 bad: fast window is 100% bad, slow is 4/40 = burn 1.0 < 2.0
        for _ in range(4):
            assert slos.record_latency("t0", 0.005) is False
        assert not slos.any_breached()
        # 4 more bad pushes the slow window over the breach rate too
        flips = [slos.record_latency("t0", 0.005) for _ in range(4)]
        assert flips[-1] is True
        assert slos.any_breached(LATENCY)

    def test_min_samples_gates_early_breach(self):
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(slow_window=16, min_samples=8))
        for _ in range(7):
            assert slos.record_latency("t0", 0.005) is False
        assert slos.record_latency("t0", 0.005) is True

    def test_qerror_objective_via_feedback_path(self):
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(QERROR, threshold=4.0))
        for _ in range(4):
            slos.record_qerror("t0", 50.0)
        assert slos.any_breached(QERROR)
        assert not slos.any_breached(LATENCY)

    def test_per_tenant_override_wins_over_default(self):
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(threshold=1.0))
        slos.set_objective(tiny_objective(threshold=1000.0), tenant="vip")
        for _ in range(8):
            slos.record_latency("t0", 0.005)
            slos.record_latency("vip", 0.005)
        assert slos.breached_tenants() == ["t0"]

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="objective"):
            SloObjective("uptime", threshold=1.0)
        with pytest.raises(ValueError, match="target"):
            SloObjective(LATENCY, threshold=1.0, target=1.0)
        with pytest.raises(ValueError, match="fast_window"):
            SloObjective(LATENCY, threshold=1.0, fast_window=8, slow_window=4)

    def test_transition_counter_and_breached_gauge(self):
        registry = MetricsRegistry()
        slos = SloRegistry(registry=registry, events=EventLog())
        slos.set_objective(tiny_objective())
        for _ in range(8):
            slos.record_latency("t0", 0.005)
        from repro.obs import SLO_BREACHED, SLO_TRANSITIONS

        assert (
            registry.counter(SLO_TRANSITIONS).value(
                tenant="t0", objective=LATENCY, transition="breach"
            )
            == 1.0
        )
        assert (
            registry.gauge(SLO_BREACHED).value(tenant="t0", objective=LATENCY)
            == 1.0
        )


class TestDriftSloSignal:
    def test_breached_accuracy_slo_trips_the_detector(self, tiny_table):
        estimator = ConstantEstimator(2.0).fit(tiny_table)
        probe = generate_workload(tiny_table, 6, np.random.default_rng(3))
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(QERROR, threshold=4.0))
        detector = DriftDetector(probe, slos=slos)
        detector.set_baseline(estimator, tiny_table)

        clean = detector.check(estimator, tiny_table)
        assert not clean.drifted

        for _ in range(4):
            slos.record_qerror("t0", 100.0)
        decision = detector.check(estimator, tiny_table)
        assert decision.drifted
        assert decision.reasons == ("slo",)
        assert decision.slo_tenants == ("t0",)


# ----------------------------------------------------------------------
# Exemplars
# ----------------------------------------------------------------------
def exemplar(tenant="t0", latency=0.001, qerror=None, trace_id=None, tag="q"):
    return Exemplar(
        tenant=tenant,
        estimator="worker",
        query=tag,
        estimate=10.0,
        latency_seconds=latency,
        actual=10.0 * (qerror or 1.0),
        qerror=qerror,
        trace_id=trace_id,
    )


class TestExemplarStore:
    def test_topk_keeps_the_worst_in_descending_order(self):
        store = ExemplarStore(per_tenant=2)
        for q in (3.0, 9.0, 1.5, 7.0):
            store.record_qerror(exemplar(qerror=q, tag=f"q{q}"))
        assert [e.qerror for e in store.worst_qerror("t0")] == [9.0, 7.0]

    def test_would_record_uses_the_board_floor(self):
        store = ExemplarStore(per_tenant=2)
        assert store.would_record_latency("t0", 0.0001)  # room on the board
        store.record_latency(exemplar(latency=0.5))
        store.record_latency(exemplar(latency=0.9))
        assert not store.would_record_latency("t0", 0.4)
        assert store.would_record_latency("t0", 0.6)

    def test_qerror_board_requires_a_qerror(self):
        with pytest.raises(ValueError, match="qerror"):
            ExemplarStore().record_qerror(exemplar(qerror=None))

    def test_merged_view_sorts_across_tenants(self):
        store = ExemplarStore(per_tenant=4)
        store.record_latency(exemplar(tenant="a", latency=0.1))
        store.record_latency(exemplar(tenant="b", latency=0.3))
        store.record_latency(exemplar(tenant="a", latency=0.2))
        assert [e.latency_seconds for e in store.slowest()] == [0.3, 0.2, 0.1]
        assert store.tenants() == ["a", "b"]

    def test_jsonl_export_tags_boards_and_links_traces(self, tmp_path):
        store = ExemplarStore()
        store.record_latency(exemplar(latency=0.5, trace_id=777))
        store.record_qerror(exemplar(qerror=9.0, trace_id=778))
        path = tmp_path / "exemplars.jsonl"
        assert store.to_jsonl(path) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        boards = {r["board"] for r in records}
        assert boards == {"slowest", "worst_qerror"}
        assert {r["trace_id"] for r in records} == {777, 778}

    def test_clear_empties_every_board(self):
        store = ExemplarStore()
        store.record_latency(exemplar())
        store.record_qerror(exemplar(qerror=2.0))
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


# ----------------------------------------------------------------------
# The record_actual feedback loop through the router (inline, no forks)
# ----------------------------------------------------------------------
class TestRecordActualFeedback:
    def test_feedback_updates_slo_and_exemplar_board(self, tiny_table):
        estimator = ConstantEstimator(2.0).fit(tiny_table)
        heuristic = HeuristicConstantEstimator()
        heuristic.fit(tiny_table)
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        slos.set_objective(tiny_objective(QERROR, threshold=4.0))
        exemplars = ExemplarStore(per_tenant=4)
        router = ShardRouter(
            estimator,
            [heuristic],
            num_shards=2,
            mode="inline",
            registry=MetricsRegistry(),
            events=EventLog(),
            slos=slos,
            exemplars=exemplars,
        )
        requests = [
            ShardRequest(query=q, tenant="t0") for q in distinct_queries(6)
        ]
        with router:
            served = router.serve_batch(requests)
            qerror = router.record_actual(requests[0], served[0], actual=12.0)
        assert qerror == pytest.approx(6.0)  # estimate 2 vs actual 12
        (status,) = [s for s in slos.statuses() if s.objective == QERROR]
        assert status.samples == 1 and status.bad_samples == 1
        worst = exemplars.worst_qerror("t0")
        assert worst and worst[0].qerror == pytest.approx(6.0)
        assert worst[0].actual == 12.0

    def test_latency_slo_fed_by_serving_path(self, tiny_table):
        estimator = ConstantEstimator(2.0).fit(tiny_table)
        heuristic = HeuristicConstantEstimator()
        heuristic.fit(tiny_table)
        slos = SloRegistry(registry=MetricsRegistry(), events=EventLog())
        # threshold far above anything real: samples flow, no breach
        slos.set_objective(tiny_objective(threshold=10_000.0))
        router = ShardRouter(
            estimator,
            [heuristic],
            num_shards=1,
            mode="inline",
            registry=MetricsRegistry(),
            events=EventLog(),
            slos=slos,
            exemplars=ExemplarStore(),
        )
        with router:
            router.serve_batch(
                [ShardRequest(query=q, tenant="t0") for q in distinct_queries(5)]
            )
        (status,) = slos.statuses()
        assert status.objective == LATENCY
        assert status.samples == 5
        assert not status.breached


# ----------------------------------------------------------------------
# Test isolation
# ----------------------------------------------------------------------
class TestResetForTests:
    def test_reset_covers_the_new_global_state(self, tiny_table):
        install_worker_capture("s0", "w0")
        set_trace_context(1, 2)
        get_slos().set_objective(tiny_objective())
        get_slos().record_latency("t0", 0.005)
        get_exemplars().record_latency(exemplar())

        obs.reset_for_tests()

        assert get_capture() is None
        assert get_collector() is None
        assert current_trace_context() is None
        assert not get_slos().has_objectives()
        assert get_slos().statuses() == []
        assert len(get_exemplars()) == 0
