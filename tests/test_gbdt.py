"""Tests for the gradient-boosted-trees substrate."""

import numpy as np
import pytest

from repro.gbdt import FeatureBinner, GradientBoostedTrees, RegressionTree


class TestFeatureBinner:
    def test_few_distinct_values_exact_bins(self, rng):
        x = rng.choice([1.0, 5.0, 9.0], size=(100, 1))
        binner = FeatureBinner(max_bins=64).fit(x)
        binned = binner.transform(x)
        assert set(np.unique(binned)) == {0, 1, 2}
        # Same value always maps to the same bin.
        assert len(np.unique(binned[x[:, 0] == 5.0])) == 1

    def test_many_values_quantile_bins(self, rng):
        x = rng.normal(size=(1000, 1))
        binner = FeatureBinner(max_bins=8).fit(x)
        binned = binner.transform(x)
        assert binned.max() < 8
        # Roughly balanced bins.
        counts = np.bincount(binned[:, 0])
        assert counts.min() > 50

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            FeatureBinner().transform(np.ones((2, 1)))

    def test_monotone_binning(self, rng):
        x = np.sort(rng.normal(size=(500, 1)), axis=0)
        binner = FeatureBinner(max_bins=16).fit(x)
        binned = binner.transform(x)[:, 0]
        assert (np.diff(binned) >= 0).all()


class TestRegressionTree:
    def test_perfect_split(self):
        binned = np.array([[0], [0], [1], [1]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = RegressionTree(max_depth=2, min_samples_leaf=1).fit(binned, y)
        np.testing.assert_allclose(tree.predict(binned), y)

    def test_depth_zero_returns_mean(self):
        binned = np.array([[0], [1], [2]])
        y = np.array([1.0, 2.0, 9.0])
        tree = RegressionTree(max_depth=0).fit(binned, y)
        np.testing.assert_allclose(tree.predict(binned), [4.0, 4.0, 4.0])

    def test_min_samples_leaf_respected(self):
        binned = np.array([[0], [1], [1], [1], [1], [1]])
        y = np.array([100.0, 1, 1, 1, 1, 1])
        tree = RegressionTree(max_depth=3, min_samples_leaf=3).fit(binned, y)
        # The single bin-0 row cannot be isolated with min_samples_leaf=3.
        assert len(np.unique(tree.predict(binned))) == 1

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones((3, 1), dtype=int), np.ones(2))

    def test_two_feature_interaction(self, rng):
        binned = rng.integers(0, 2, size=(400, 2))
        y = np.where(binned[:, 0] == binned[:, 1], 1.0, 0.0)
        tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(binned, y)
        pred = tree.predict(binned)
        assert np.mean((pred - y) ** 2) < 0.05


class TestGradientBoosting:
    def test_fits_nonlinear_function(self, rng):
        x = rng.uniform(-3, 3, size=(800, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2
        model = GradientBoostedTrees(num_trees=50, learning_rate=0.2).fit(x, y)
        pred = model.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_more_trees_reduce_train_error(self, rng):
        x = rng.uniform(-3, 3, size=(400, 2))
        y = np.sin(x[:, 0]) * x[:, 1]
        small = GradientBoostedTrees(num_trees=5).fit(x, y)
        large = GradientBoostedTrees(num_trees=60).fit(x, y)
        err = lambda m: np.mean((m.predict(x) - y) ** 2)
        assert err(large) < err(small)

    def test_constant_target(self, rng):
        x = rng.normal(size=(100, 3))
        y = np.full(100, 3.5)
        model = GradientBoostedTrees(num_trees=5).fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-9)

    def test_extend_adds_trees(self, rng):
        x = rng.normal(size=(200, 2))
        y = x[:, 0] * 2
        model = GradientBoostedTrees(num_trees=10).fit(x, y)
        before = model.num_fitted_trees
        model.extend(x, y, extra_trees=5)
        assert model.num_fitted_trees == before + 5

    def test_extend_improves_on_shifted_data(self, rng):
        x = rng.normal(size=(300, 2))
        model = GradientBoostedTrees(num_trees=20).fit(x, x[:, 0])
        y_new = x[:, 0] + 5.0
        err_before = np.mean((model.predict(x) - y_new) ** 2)
        model.extend(x, y_new, extra_trees=20)
        err_after = np.mean((model.predict(x) - y_new) ** 2)
        assert err_after < err_before

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(num_trees=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((1, 1)))

    def test_num_nodes_positive(self, rng):
        x = rng.normal(size=(100, 2))
        model = GradientBoostedTrees(num_trees=3).fit(x, x[:, 0])
        assert model.num_nodes() >= 3
