"""Tests for the plan-quality substrate (cost model, plan regret)."""

import numpy as np
import pytest

from repro.core import Predicate, Query
from repro.planner import AccessPath, CostModel, SingleTablePlanner


class TestCostModel:
    def test_seq_scan_cost_independent_of_matches(self):
        model = CostModel()
        a = model.cost(AccessPath.SEQUENTIAL_SCAN, 1, 100_000)
        b = model.cost(AccessPath.SEQUENTIAL_SCAN, 99_999, 100_000)
        assert a == b

    def test_index_scan_scales_with_matches(self):
        model = CostModel()
        few = model.cost(AccessPath.INDEX_SCAN, 10, 100_000)
        many = model.cost(AccessPath.INDEX_SCAN, 10_000, 100_000)
        assert many > few * 100

    def test_index_beats_seq_for_selective_queries(self):
        model = CostModel()
        rows = 100_000
        assert model.cost(AccessPath.INDEX_SCAN, 5, rows) < model.cost(
            AccessPath.SEQUENTIAL_SCAN, 5, rows
        )

    def test_seq_beats_index_for_broad_queries(self):
        model = CostModel()
        rows = 100_000
        assert model.cost(AccessPath.SEQUENTIAL_SCAN, rows, rows) < model.cost(
            AccessPath.INDEX_SCAN, rows, rows
        )

    def test_matches_clamped(self):
        model = CostModel()
        assert model.cost(AccessPath.INDEX_SCAN, -5, 1000) == model.cost(
            AccessPath.INDEX_SCAN, 0, 1000
        )
        assert model.cost(AccessPath.INDEX_SCAN, 1e9, 1000) == model.cost(
            AccessPath.INDEX_SCAN, 1000, 1000
        )


class TestPlanner:
    @pytest.fixture
    def planner(self, small_synthetic):
        return SingleTablePlanner(small_synthetic)

    @pytest.fixture
    def query(self):
        return Query((Predicate(0, 0.0, 10.0),))

    def test_selective_query_gets_index(self, planner, query):
        choice = planner.choose(query, estimated_rows=3)
        assert choice.path is AccessPath.INDEX_SCAN

    def test_broad_query_gets_seq_scan(self, planner, query, small_synthetic):
        choice = planner.choose(query, estimated_rows=small_synthetic.num_rows)
        assert choice.path is AccessPath.SEQUENTIAL_SCAN

    def test_perfect_estimate_no_regret(self, planner, query):
        for actual in (1.0, 100.0, 3000.0):
            assert planner.regret(query, actual, actual) == pytest.approx(1.0)

    def test_underestimate_causes_regret(self, planner, query, small_synthetic):
        """Believing 1 row matches when most of the table does forces an
        index scan where a sequential scan was right."""
        actual = float(small_synthetic.num_rows)
        regret = planner.regret(query, estimated_rows=1.0, actual_rows=actual)
        assert regret > 5.0

    def test_regret_at_least_one(self, planner, query, rng):
        for _ in range(50):
            est = float(rng.uniform(0, 4000))
            act = float(rng.uniform(0, 4000))
            assert planner.regret(query, est, act) >= 1.0 - 1e-9

    def test_regret_grows_with_qerror_on_average(self, planner, query, rng):
        """The Moerkotte link: larger q-errors mean larger average regret."""
        actual = 2000.0
        small_err = [planner.regret(query, actual * f, actual)
                     for f in (0.5, 0.8, 1.25, 2.0)]
        large_err = [planner.regret(query, actual * f, actual)
                     for f in (1e-3, 0.01, 100.0, 1000.0)]
        assert np.mean(large_err) >= np.mean(small_err)
