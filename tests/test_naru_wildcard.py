"""Tests for Naru's wildcard-skipping training/inference path."""

import time

import numpy as np
import pytest

from repro.core import Predicate, Query, generate_workload, qerrors
from repro.datasets import census
from repro.estimators.learned import NaruEstimator


@pytest.fixture(scope="module")
def wide_table():
    return census(2500)


@pytest.fixture(scope="module")
def wildcard_naru(wide_table):
    return NaruEstimator(
        epochs=4, num_samples=64, wildcard_skipping=True, inference_seed=1
    ).fit(wide_table)


class TestWildcardSkipping:
    def test_requires_made_block(self):
        with pytest.raises(ValueError, match="MADE"):
            NaruEstimator(block="transformer", wildcard_skipping=True)

    def test_estimates_finite(self, wildcard_naru, wide_table, rng):
        test = generate_workload(wide_table, 40, rng)
        estimates = wildcard_naru.estimate_many(list(test.queries))
        assert np.isfinite(estimates).all()
        assert (estimates >= 0).all()

    def test_accuracy_comparable_to_plain(self, wide_table, rng):
        test = generate_workload(wide_table, 60, rng)
        plain = NaruEstimator(epochs=4, num_samples=64, inference_seed=1)
        plain.fit(wide_table)
        skipping = NaruEstimator(
            epochs=4, num_samples=64, wildcard_skipping=True, inference_seed=1
        ).fit(wide_table)
        queries = list(test.queries)
        geo = lambda est: float(
            np.exp(
                np.log(
                    qerrors(est.estimate_many(queries), test.cardinalities)
                ).mean()
            )
        )
        assert geo(skipping) < geo(plain) * 2.0

    def test_skips_unpredicated_columns(self, wildcard_naru, wide_table):
        """A sparse query must be cheaper than a dense one: fewer model
        passes thanks to skipping."""
        cols = wide_table.num_columns
        sparse = Query((Predicate(cols - 1, 0.0, 1e9),))
        dense = Query(
            tuple(Predicate(i, 0.0, 1e9) for i in range(cols))
        )
        def timed(query):
            start = time.perf_counter()
            for _ in range(5):
                wildcard_naru.estimate(query)
            return time.perf_counter() - start

        # The sparse query predicates only the last column: plain
        # progressive sampling would walk all columns, skipping walks one.
        assert timed(sparse) < timed(dense)

    def test_full_domain_fidelity_still_holds(self, wildcard_naru, wide_table):
        preds = tuple(
            Predicate(i, c.domain_min, c.domain_max)
            for i, c in enumerate(wide_table.columns)
        )
        assert wildcard_naru.estimate(Query(preds)) == pytest.approx(
            wide_table.num_rows
        )

    def test_masked_training_masks_inputs_only(self, wide_table):
        """The NLL under full masking equals the marginal product model:
        finite and trainable (no NaNs from the masked inputs)."""
        est = NaruEstimator(
            epochs=2, num_samples=16, wildcard_skipping=True, wildcard_rate=1.0
        ).fit(wide_table)
        assert np.isfinite(est.loss_history).all()
