"""Tests for the hierarchical and fallback ensembles (Section 7.1)."""

import numpy as np
import pytest

from repro.core import Predicate, Query
from repro.datasets import apply_update
from repro.estimators.learned import (
    FallbackEstimator,
    HierarchicalEstimator,
    LwXgbEstimator,
)
from repro.estimators.traditional import PostgresEstimator, SamplingEstimator


class TestHierarchical:
    @pytest.fixture
    def hier(self, small_synthetic):
        light = PostgresEstimator()
        heavy = SamplingEstimator(fraction=0.2)
        est = HierarchicalEstimator(light, heavy, predicate_threshold=2)
        return est.fit(small_synthetic)

    def test_routes_simple_queries_to_light(self, hier):
        q = Query((Predicate(0, 0.0, 50.0),))
        light_before = hier.light.timing.inference_count
        hier.estimate(q)
        assert hier.light.timing.inference_count == light_before + 1

    def test_routes_complex_queries_to_heavy(self, hier):
        q = Query((Predicate(0, 0.0, 50.0), Predicate(1, 0.0, 50.0)))
        heavy_before = hier.heavy.timing.inference_count
        hier.estimate(q)
        assert hier.heavy.timing.inference_count == heavy_before + 1

    def test_routing_fractions(self, hier):
        queries = [
            Query((Predicate(0, 0.0, 50.0),)),
            Query((Predicate(0, 0.0, 50.0), Predicate(1, 0.0, 50.0))),
        ]
        light_frac, heavy_frac = hier.routing_fractions(queries)
        assert light_frac == heavy_frac == 0.5

    def test_query_driven_members_require_workload(self, small_synthetic):
        est = HierarchicalEstimator(PostgresEstimator(), LwXgbEstimator())
        assert est.requires_workload
        with pytest.raises(ValueError):
            est.fit(small_synthetic)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HierarchicalEstimator(
                PostgresEstimator(), SamplingEstimator(), predicate_threshold=0
            )

    def test_combined_size(self, hier):
        assert hier.model_size_bytes() == (
            hier.light.model_size_bytes() + hier.heavy.model_size_bytes()
        )


class TestFallback:
    @pytest.fixture
    def fallback(self, small_synthetic):
        est = FallbackEstimator(PostgresEstimator(), SamplingEstimator(fraction=0.2))
        return est.fit(small_synthetic)

    def test_serves_heavy_after_fit(self, fallback):
        assert fallback.serving == "sampling"

    def test_update_demotes_to_light(self, fallback, small_synthetic, rng):
        new_table, appended = apply_update(small_synthetic, rng)
        fallback.update(new_table, appended)
        assert fallback.serving == "postgres"

    def test_promote_restores_heavy(self, fallback, small_synthetic, rng):
        new_table, appended = apply_update(small_synthetic, rng)
        fallback.update(new_table, appended)
        seconds = fallback.promote()
        assert seconds > 0.0
        assert fallback.serving == "sampling"

    def test_promote_without_pending_is_noop(self, fallback):
        assert fallback.promote() == 0.0

    def test_estimates_follow_serving_model(self, fallback, small_synthetic, rng):
        q = Query((Predicate(0, 0.0, 50.0),))
        heavy_answer = fallback.estimate(q)
        new_table, appended = apply_update(small_synthetic, rng)
        fallback.update(new_table, appended)
        light_count_before = fallback.light.timing.inference_count
        fallback.estimate(q)
        assert fallback.light.timing.inference_count == light_count_before + 1
        assert np.isfinite(heavy_answer)
