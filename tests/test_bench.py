"""Integration tests for the benchmark harness (tiny scale).

These exercise each experiment end-to-end on minuscule inputs; the
numbers are meaningless at this size, but the plumbing — training,
caching, mixing, formatting — must work.
"""

import multiprocessing

import numpy as np
import pytest

from repro.bench import BenchContext
from repro.bench.dynamic_exp import figure7, figure8, format_figure7, format_figure8
from repro.bench.figure2 import comparison_graph, missing_edge_fraction
from repro.bench.reporting import format_seconds, render_table
from repro.bench.robustness import figure11, format_figure11
from repro.bench.rules_exp import format_table6, table6
from repro.bench.static import (
    figure3,
    figure4,
    format_figure3,
    format_figure4,
    format_table3,
    format_table4,
    table3,
    table4,
)
from repro.scale import Scale


@pytest.fixture(scope="module")
def tiny_scale() -> Scale:
    return Scale(
        name="tiny",
        row_fraction=0.1,
        train_queries=120,
        test_queries=60,
        nn_epochs=2,
        naru_epochs=2,
        update_queries=60,
        synthetic_rows=2000,
        naru_samples=32,
    )


@pytest.fixture(scope="module")
def ctx(tiny_scale) -> BenchContext:
    return BenchContext(tiny_scale, seed=11)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_format_seconds(self):
        assert format_seconds(0.005) == "5.0ms"
        assert format_seconds(5.0) == "5.0s"
        assert format_seconds(300.0) == "5.0min"


class TestContext:
    def test_tables_cached(self, ctx):
        assert ctx.table("census") is ctx.table("census")

    def test_estimators_cached(self, ctx):
        a = ctx.estimator("postgres", "census")
        assert ctx.estimator("postgres", "census") is a

    def test_fresh_estimator_not_cached(self, ctx):
        a = ctx.fresh_estimator("postgres", "census")
        assert ctx.fresh_estimator("postgres", "census") is not a

    def test_row_scaling(self, ctx):
        from repro.datasets.realworld import DEFAULT_ROWS

        assert ctx.table("census").num_rows == int(DEFAULT_ROWS["census"] * 0.1)


class TestStaticExperiments:
    def test_table3(self, ctx):
        rows = table3(ctx)
        assert [r["dataset"] for r in rows] == ["census", "forest", "power", "dmv"]
        assert "10^" in format_table3(rows)

    def test_figure3(self, ctx):
        series = figure3(ctx)
        for fracs in series.values():
            assert fracs.sum() == pytest.approx(1.0, abs=1e-6)
        assert "census" in format_figure3(series)

    def test_table4_subset(self, ctx):
        results = table4(ctx, datasets=["census"], methods=["postgres", "deepdb"])
        assert set(results["census"]) == {"postgres", "deepdb"}
        text = format_table4(results)
        assert "L v.s. T" in text

    def test_figure4_subset(self, ctx):
        rows = figure4(ctx, datasets=["census"], methods=["postgres", "lw-xgb", "naru"])
        by_method = {r.method: r for r in rows}
        assert by_method["naru"].train_seconds_gpu < by_method["naru"].train_seconds_cpu
        assert by_method["postgres"].train_seconds_gpu == by_method["postgres"].train_seconds_cpu
        assert "Figure 4" in format_figure4(rows)


class TestDynamicExperiments:
    def test_figure7_shape(self, ctx):
        points = figure7(ctx, datasets=("census",), epoch_grid=(1, 2))
        assert len(points) == 2
        assert points[0].epochs == 1
        # More epochs -> longer update.
        assert points[1].update_seconds > points[0].update_seconds
        assert "Figure 7" in format_figure7(points)

    def test_figure8_gpu_never_slower_for_naru(self, ctx):
        cells = figure8(ctx, datasets=("census",), methods=("naru", "lw-nn"))
        by = {(c.method, c.device): c for c in cells}
        assert (
            by[("naru", "gpu")].update_seconds
            <= by[("naru", "cpu")].update_seconds
        )
        assert "Figure 8" in format_figure8(cells)


class TestRobustnessExperiments:
    def test_figure11_spread(self, ctx):
        result = figure11(ctx, repeats=40)
        assert len(result.estimates) == 40
        assert result.spread >= 0.0
        assert "Figure 11" in format_figure11(result)


class TestRulesExperiment:
    def test_table6_subset(self, ctx):
        results = table6(ctx, methods=["lw-xgb", "deepdb"], num_checks=10)
        text = format_table6(results)
        assert "monotonicity" in text
        assert all(r.satisfied for r in results["deepdb"].values())


class TestFigure2:
    def test_graph_nodes(self):
        g = comparison_graph()
        assert g.number_of_nodes() == 5

    def test_missing_fraction_over_half(self):
        assert missing_edge_fraction() > 0.5


class TestCli:
    def test_cli_runs_table3(self, capsys, tiny_scale, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_cli_rejects_unknown(self, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_help_lists_every_experiment(self, capsys):
        from repro.bench.__main__ import EXPERIMENTS, main

        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "--trace-out" in out

    def test_trace_out_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.bench.__main__ import main
        from repro.obs import parse_exposition

        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert main(["figure2", "--trace-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        exposition = (tmp_path / "figure2_metrics.prom").read_text()
        parse_exposition(exposition)  # must lint
        snapshot = json.loads((tmp_path / "figure2_metrics.json").read_text())
        assert isinstance(snapshot, dict)
        assert (tmp_path / "figure2_spans.jsonl").exists()
        assert (tmp_path / "figure2_events.jsonl").exists()


class TestObsExperiment:
    def test_obs_experiment_cross_check(self, ctx, tmp_path):
        from repro.bench.obs_exp import format_obs, obs_experiment
        from repro.obs import get_collector, get_monitor

        report = obs_experiment(
            ctx, primary="lw-xgb", dataset="census", out_dir=tmp_path
        )
        # per-epoch/round telemetry captured for both training loops
        assert set(report.models) == {"lw-xgb", "lw-nn"}
        for model in report.models:
            epochs, first, last = report.training[model]
            assert epochs > 0
        # the two latency bookkeeping paths agree tier by tier
        for tier, attempts, samples in report.tier_check:
            assert attempts == samples, tier
        assert report.artifacts is not None
        assert report.artifacts.spans_written > 0
        text = format_obs(report)
        assert "Cross-check" in text
        assert "lint passed" in text
        # collector/monitor were restored to the pre-experiment state
        assert get_collector() is None
        assert get_monitor() is None


class TestParallelJobs:
    """--jobs must change wall-clock only: identical tables at any N."""

    def test_jobs_validated(self, tiny_scale):
        with pytest.raises(ValueError):
            BenchContext(tiny_scale, jobs=0)

    def test_executor_only_with_jobs(self, tiny_scale):
        assert BenchContext(tiny_scale, jobs=1).executor() is None
        parallel_ctx = BenchContext(tiny_scale, jobs=2)
        assert parallel_ctx.executor() is not None
        assert parallel_ctx.executor() is parallel_ctx.executor()

    def test_prefit_fills_the_estimator_cache(self, tiny_scale):
        jctx = BenchContext(tiny_scale, seed=11, jobs=2)
        pairs = [("postgres", "census"), ("lw-xgb", "census")]
        jctx.prefit(pairs)
        assert set(jctx._fitted) == set(pairs)
        # A second prefit is a no-op (nothing retrains).
        fitted_before = dict(jctx._fitted)
        jctx.prefit(pairs)
        assert all(jctx._fitted[k] is fitted_before[k] for k in pairs)

    def test_table4_cell_identical_at_any_job_count(self, tiny_scale):
        serial_ctx = BenchContext(tiny_scale, seed=11)
        jobs_ctx = BenchContext(tiny_scale, seed=11, jobs=2)
        kwargs = dict(datasets=["census"], methods=["postgres", "lw-nn"])
        serial = table4(serial_ctx, **kwargs)
        parallel = table4(jobs_ctx, **kwargs)
        for method in kwargs["methods"]:
            assert (
                serial["census"][method].as_tuple()
                == parallel["census"][method].as_tuple()
            ), method


class TestInterrupt:
    """Graceful shutdown: Ctrl-C / SIGTERM flush partial artifacts."""

    @staticmethod
    def _install(monkeypatch, name, fn):
        from repro.bench.__main__ import EXPERIMENTS

        monkeypatch.setitem(EXPERIMENTS, name, fn)

    def test_keyboard_interrupt_exits_130_and_reports_progress(
        self, capsys, monkeypatch
    ):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")
        self._install(monkeypatch, "quick", lambda ctx: "quick done")

        def boom(ctx):
            raise KeyboardInterrupt

        self._install(monkeypatch, "boom", boom)
        assert main(["quick", "boom"]) == 130
        captured = capsys.readouterr()
        assert "quick done" in captured.out
        assert "interrupted during boom" in captured.err
        assert "completed: quick" in captured.err

    def test_interrupt_still_flushes_trace(self, capsys, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")

        def boom(ctx):
            raise KeyboardInterrupt

        self._install(monkeypatch, "boom", boom)
        assert main(["boom", "--trace-out", str(tmp_path)]) == 130
        assert "trace written" in capsys.readouterr().out
        assert (tmp_path / "boom_spans.jsonl").exists()
        assert (tmp_path / "boom_events.jsonl").exists()

    def test_sigterm_takes_the_interrupt_path(self, capsys, monkeypatch):
        import os
        import signal

        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")

        def self_terminate(ctx):
            os.kill(os.getpid(), signal.SIGTERM)
            return "unreachable"

        self._install(monkeypatch, "terminating", self_terminate)
        assert main(["terminating"]) == 130
        assert "interrupted during terminating" in capsys.readouterr().err
        # The handler was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_sigterm_handler_restored_after_clean_run(self, capsys, monkeypatch):
        import signal

        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "ci")
        self._install(monkeypatch, "quick", lambda ctx: "quick done")
        assert main(["quick"]) == 0
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_scale_experiment_flushes_partial_results(self, ctx, tmp_path):
        import json

        from repro.bench.scale_exp import ChaosScenario, scale_experiment

        def interrupting_wrap(est, seed):
            raise KeyboardInterrupt

        scenarios = [
            ChaosScenario("no-fault"),
            ChaosScenario("interrupted", worker_wrap=interrupting_wrap),
        ]
        json_path = tmp_path / "BENCH_serve.json"
        text_path = tmp_path / "scale_serving.txt"
        with pytest.raises(KeyboardInterrupt):
            scale_experiment(
                ctx,
                replay=64,
                num_shards=1,
                workers_per_shard=1,
                mode="inline",
                scenarios=scenarios,
                json_path=json_path,
                text_path=text_path,
            )
        payload = json.loads(json_path.read_text())
        assert payload["partial"] is True
        assert list(payload["scenarios"]) == ["no-fault"]
        assert payload["scenarios"]["no-fault"]["availability"] == 1.0
        assert text_path.exists()


class TestObsReport:
    """The obs-report experiment: SLO dashboard, exemplars, overhead."""

    pytestmark = pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="no fork on platform",
    )

    def test_obs_report_plumbing(self, ctx, tmp_path):
        import json

        from repro.bench.obs_report import (
            format_obs_report,
            obs_report_experiment,
        )

        result = obs_report_experiment(
            ctx,
            replay=256,
            num_shards=1,
            workers_per_shard=1,
            mode="fork",
            trials=1,
            out_dir=tmp_path,
        )
        assert result.queries == 256
        assert set(result.tenants) == {"t0", "t1", "t2", "t3"}
        assert result.telemetry_consistent
        assert result.worker_spans > 0
        assert result.worker_spans_reparented is True
        assert any(s.objective == "latency" for s in result.statuses)
        # the q-error feedback stride must label every tenant
        qerror_tenants = {
            s.tenant for s in result.statuses if s.objective == "qerror"
        }
        assert qerror_tenants == {"t0", "t1", "t2", "t3"}

        records = [
            json.loads(line)
            for line in open(result.jsonl_path)  # noqa: SIM115
        ]
        kinds = {r["record"] for r in records}
        assert {"slo_status", "exemplar", "overhead"} <= kinds
        overhead_text = (tmp_path / "obs_overhead.txt").read_text()
        assert "< 5%" in overhead_text

        report = format_obs_report(result)
        assert "Telemetry invariant" in report
        assert "CONSISTENT" in report

    def test_trace_out_includes_merged_worker_spans(
        self, capsys, tmp_path, monkeypatch
    ):
        """--trace-out artifacts must carry the forked workers' spans,
        re-parented under the dispatching serve.batch spans."""
        import json

        from repro.bench import __main__ as bench_main
        from repro.bench.obs_report import obs_report_experiment

        monkeypatch.setenv("REPRO_SCALE", "ci")
        monkeypatch.setitem(
            bench_main.EXPERIMENTS,
            "obs-report",
            lambda ctx: str(
                obs_report_experiment(
                    ctx,
                    replay=128,
                    num_shards=1,
                    workers_per_shard=1,
                    mode="fork",
                    trials=1,
                    out_dir=None,
                ).worker_spans
            ),
        )
        assert bench_main.main(["obs-report", "--trace-out", str(tmp_path)]) == 0
        assert "trace written" in capsys.readouterr().out
        spans_path = tmp_path / "obs-report_spans.jsonl"
        spans = [
            json.loads(line) for line in spans_path.read_text().splitlines()
        ]
        worker_spans = [
            s for s in spans if s.get("attrs", {}).get("worker_pid")
        ]
        assert worker_spans, "no merged worker span in the trace dump"
        batch_ids = {
            s["span_id"] for s in spans if s["name"] == "serve.batch"
        }
        assert any(s.get("parent_id") in batch_ids for s in worker_spans)


class TestBenchServeMergeDiscipline:
    """BENCH_serve.json is shared: scale and guard must not clobber
    each other's sections on regeneration (the fastpath merge rule)."""

    def fake_guard_result(self):
        from repro.bench.guard_exp import (
            GuardBenchResult,
            GuardScenarioResult,
            QuarantineCycleResult,
        )

        scenario = GuardScenarioResult(
            scenario="correlated-shift",
            queries=10,
            worst_q_off=120.0,
            p95_q_off=80.0,
            worst_q_on=6.0,
            p95_q_on=4.0,
            improvement=20.0,
            availability=1.0,
            clamped=5,
            ood_rerouted=0,
            demotions=0,
        )
        cycle = QuarantineCycleResult(
            serves=24,
            demoted_after=8,
            demotions=1,
            probes_failed=0,
            readmissions=1,
            final_state="healthy",
        )
        return GuardBenchResult(
            method="lw-xgb",
            dataset="census",
            scenarios=[scenario],
            quarantine=cycle,
            p50_off_us=100.0,
            p50_on_us=104.0,
            p50_overhead_fraction=0.04,
            worst_case_improvement=20.0,
            availability=1.0,
        )

    def test_guard_write_preserves_scale_sections(self, ctx, tmp_path):
        import json

        from repro.bench.guard_exp import write_guard_artifacts

        json_path = tmp_path / "BENCH_serve.json"
        scale_payload = {
            "experiment": "scale_serving",
            "speedup": 2.5,
            "scenarios": {"no-fault": {"availability": 1.0}},
        }
        json_path.write_text(json.dumps(scale_payload))
        write_guard_artifacts(
            ctx, self.fake_guard_result(), json_path, tmp_path / "guard.txt"
        )
        merged = json.loads(json_path.read_text())
        assert merged["experiment"] == "scale_serving"
        assert merged["speedup"] == 2.5
        assert merged["scenarios"] == {"no-fault": {"availability": 1.0}}
        assert merged["guard"]["worst_case_improvement"] == 20.0
        assert merged["guard"]["quarantine"]["readmissions"] == 1

    def test_scale_write_preserves_guard_section(self, ctx, tmp_path):
        import json

        from repro.bench.scale_exp import write_serve_artifacts

        json_path = tmp_path / "BENCH_serve.json"
        json_path.write_text(json.dumps({"guard": {"availability": 1.0}}))
        write_serve_artifacts(
            ctx,
            [],
            num_shards=1,
            workers_per_shard=1,
            json_path=json_path,
            text_path=tmp_path / "scale.txt",
        )
        merged = json.loads(json_path.read_text())
        assert merged["guard"] == {"availability": 1.0}
        assert merged["experiment"] == "scale_serving"

    def test_guard_write_survives_a_corrupt_file(self, ctx, tmp_path):
        import json

        from repro.bench.guard_exp import write_guard_artifacts

        json_path = tmp_path / "BENCH_serve.json"
        json_path.write_text("{not json")
        write_guard_artifacts(
            ctx, self.fake_guard_result(), json_path, tmp_path / "guard.txt"
        )
        merged = json.loads(json_path.read_text())
        assert set(merged) == {"guard"}

    def test_guard_cli_experiment_is_registered(self):
        from repro.bench.__main__ import EXPERIMENTS

        assert "guard" in EXPERIMENTS
