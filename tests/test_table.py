"""Tests for the Table substrate (exact query evaluation, metadata)."""

import numpy as np
import pytest

from repro.core import Predicate, Query, Table


class TestConstruction:
    def test_rejects_1d_data(self):
        with pytest.raises(ValueError, match="2-D"):
            Table("bad", np.arange(5.0))

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError, match="at least one row"):
            Table("bad", np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Table("bad", np.array([[1.0, np.nan]]))

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValueError, match="column_names"):
            Table("bad", np.ones((2, 2)), column_names=["only_one"])

    def test_rejects_mismatched_categorical(self):
        with pytest.raises(ValueError, match="categorical"):
            Table("bad", np.ones((2, 2)), categorical=[True])

    def test_default_column_names(self):
        t = Table("t", np.ones((2, 3)))
        assert t.column_names == ["col0", "col1", "col2"]

    def test_shape_properties(self, tiny_table):
        assert tiny_table.num_rows == 12
        assert tiny_table.num_columns == 3
        assert tiny_table.num_categorical == 1


class TestColumnMetadata:
    def test_distinct_values_sorted(self, tiny_table):
        col = tiny_table.columns[0]
        assert list(col.distinct_values) == [0, 1, 2, 3, 4, 5]
        assert col.num_distinct == 6

    def test_domain_bounds(self, tiny_table):
        col = tiny_table.columns[1]
        assert col.domain_min == 10
        assert col.domain_max == 70
        assert col.domain_size == 60

    def test_column_index_lookup(self, tiny_table):
        assert tiny_table.column_index("b") == 1
        with pytest.raises(KeyError):
            tiny_table.column_index("nope")

    def test_log10_domain_product(self, tiny_table):
        expected = np.log10(6) + np.log10(7) + np.log10(3)
        assert tiny_table.log10_domain_product() == pytest.approx(expected)


class TestQueryEvaluation:
    def test_closed_range(self, tiny_table):
        q = Query((Predicate(0, 1, 3),))
        assert tiny_table.cardinality(q) == 6

    def test_equality(self, tiny_table):
        q = Query((Predicate(2, 1, 1),))
        assert tiny_table.cardinality(q) == 4

    def test_open_range_lower_only(self, tiny_table):
        q = Query((Predicate(1, 50, None),))
        assert tiny_table.cardinality(q) == 5

    def test_open_range_upper_only(self, tiny_table):
        q = Query((Predicate(1, None, 20),))
        assert tiny_table.cardinality(q) == 3

    def test_conjunction(self, tiny_table):
        q = Query((Predicate(0, 0, 2), Predicate(2, 1, 1)))
        assert tiny_table.cardinality(q) == 3

    def test_empty_predicate_matches_nothing(self, tiny_table):
        q = Query((Predicate(0, 3, 1),))
        assert tiny_table.cardinality(q) == 0

    def test_selectivity(self, tiny_table):
        q = Query((Predicate(2, 2, 2),))
        assert tiny_table.selectivity(q) == pytest.approx(4 / 12)

    def test_cardinalities_batch(self, tiny_table):
        qs = [Query((Predicate(0, 0, 0),)), Query((Predicate(0, 5, 5),))]
        np.testing.assert_array_equal(tiny_table.cardinalities(qs), [2, 2])


class TestDerivedTables:
    def test_sample_size_and_metadata(self, tiny_table, rng):
        s = tiny_table.sample(0.5, rng)
        assert s.num_rows == 6
        assert s.column_names == tiny_table.column_names
        assert [c.is_categorical for c in s.columns] == [False, False, True]

    def test_sample_fraction_validation(self, tiny_table, rng):
        with pytest.raises(ValueError):
            tiny_table.sample(0.0, rng)
        with pytest.raises(ValueError):
            tiny_table.sample(1.5, rng)

    def test_append_rows(self, tiny_table):
        new = tiny_table.append_rows(np.array([[9.0, 99.0, 9.0]]))
        assert new.num_rows == 13
        assert new.columns[0].domain_max == 9.0
        # original untouched
        assert tiny_table.num_rows == 12

    def test_append_rejects_wrong_width(self, tiny_table):
        with pytest.raises(ValueError):
            tiny_table.append_rows(np.ones((2, 2)))
