"""Behavioural tests for the eight traditional estimators."""

import numpy as np
import pytest

from repro.core import Predicate, Query, qerrors
from repro.estimators.traditional import (
    BayesEstimator,
    DbmsAEstimator,
    KdeFeedbackEstimator,
    MhistEstimator,
    MySQLEstimator,
    PostgresEstimator,
    QuickSelEstimator,
    SamplingEstimator,
)

DATA_DRIVEN = [
    PostgresEstimator,
    MySQLEstimator,
    DbmsAEstimator,
    SamplingEstimator,
    MhistEstimator,
    BayesEstimator,
]
QUERY_DRIVEN = [QuickSelEstimator, KdeFeedbackEstimator]


def _fit(factory, table, workloads):
    est = factory()
    est.fit(table, workloads[0] if est.requires_workload else None)
    return est


@pytest.fixture(scope="module", params=DATA_DRIVEN + QUERY_DRIVEN)
def fitted(request, small_census, census_workloads):
    return _fit(request.param, small_census, census_workloads)


class TestCommonBehaviour:
    def test_estimates_are_nonnegative(self, fitted, census_workloads):
        _, test = census_workloads
        estimates = fitted.estimate_many(list(test.queries))
        assert (estimates >= 0).all()

    def test_reasonable_accuracy(self, fitted, small_census, census_workloads):
        """Every traditional method should do far better than guessing 1
        (geometric-mean q-error, since the median query is tiny)."""
        _, test = census_workloads
        estimates = fitted.estimate_many(list(test.queries))
        errors = qerrors(estimates, test.cardinalities)
        baseline = qerrors(np.ones(len(test)), test.cardinalities)
        geo = lambda e: float(np.exp(np.log(e).mean()))
        assert geo(errors) < geo(baseline)

    def test_timing_recorded(self, fitted):
        assert fitted.timing.fit_seconds > 0.0
        assert fitted.timing.inference_count > 0

    def test_model_size_positive(self, fitted):
        assert fitted.model_size_bytes() > 0


class TestEstimatorProtocol:
    def test_estimate_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            PostgresEstimator().estimate(Query((Predicate(0, 0, 1),)))

    def test_query_driven_requires_workload(self, small_census):
        with pytest.raises(ValueError, match="query-driven"):
            QuickSelEstimator().fit(small_census)

    def test_update_refits_by_default(self, small_census, rng):
        from repro.datasets import apply_update

        est = PostgresEstimator().fit(small_census)
        new_table, appended = apply_update(small_census, rng)
        seconds = est.update(new_table, appended)
        assert seconds > 0.0
        # After the update the stats reflect the new domain.
        q = Query((Predicate(0, None, None if False else new_table.columns[0].domain_max),))
        assert est.estimate(q) > 0


class TestDbmsSpecifics:
    def test_postgres_single_predicate_accuracy(self, small_census):
        est = PostgresEstimator().fit(small_census)
        col = small_census.columns[0]
        mid = (col.domain_min + col.domain_max) / 2
        q = Query((Predicate(0, col.domain_min, mid),))
        truth = small_census.cardinality(q)
        assert qerrors(np.array([est.estimate(q)]), np.array([truth]))[0] < 1.6

    def test_avi_on_independent_columns(self, rng):
        """On truly independent columns AVI is nearly exact."""
        from repro.core import Table

        data = np.column_stack([rng.integers(0, 10, 20_000),
                                rng.integers(0, 10, 20_000)]).astype(float)
        table = Table("indep", data)
        est = PostgresEstimator().fit(table)
        q = Query((Predicate(0, 0, 4), Predicate(1, 0, 4)))
        truth = table.cardinality(q)
        assert abs(est.estimate(q) - truth) / truth < 0.15

    def test_dbmsa_builds_pair_statistics(self, small_census):
        est = DbmsAEstimator().fit(small_census)
        assert len(est._pairs) >= 1

    def test_dbmsa_beats_avi_on_correlated_pair(self, rng):
        """The joint histogram must capture a perfect correlation."""
        from repro.core import Table

        x = rng.integers(0, 20, 30_000).astype(float)
        table = Table("corr", np.column_stack([x, x]))
        q = Query((Predicate(0, 0, 4), Predicate(1, 0, 4)))
        truth = table.cardinality(q)
        avi = PostgresEstimator().fit(table)
        joint = DbmsAEstimator().fit(table)
        err = lambda e: qerrors(np.array([e.estimate(q)]), np.array([truth]))[0]
        assert err(joint) < err(avi)


class TestSampling:
    def test_scales_sample_counts(self, rng):
        from repro.core import Table

        data = rng.integers(0, 2, size=(10_000, 1)).astype(float)
        table = Table("coin", data)
        est = SamplingEstimator(fraction=0.1).fit(table)
        q = Query((Predicate(0, 1, 1),))
        assert est.estimate(q) == pytest.approx(table.cardinality(q), rel=0.1)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            SamplingEstimator(fraction=0.0)


class TestMhist:
    def test_respects_bucket_budget(self, small_census):
        est = MhistEstimator(max_buckets=40).fit(small_census)
        assert est.num_buckets <= 40

    def test_exact_on_degenerate_column(self, rng):
        from repro.core import Table

        data = np.column_stack([np.zeros(1000), rng.integers(0, 4, 1000)])
        table = Table("deg", data.astype(float))
        est = MhistEstimator().fit(table)
        q = Query((Predicate(0, 0, 0),))
        assert est.estimate(q) == pytest.approx(1000, rel=0.01)


class TestBayes:
    def test_captures_functional_dependency(self, rng):
        """AVI fails on y = x; a Chow-Liu tree must not."""
        from repro.core import Table

        x = rng.integers(0, 20, 20_000).astype(float)
        table = Table("fd", np.column_stack([x, x]))
        est = BayesEstimator().fit(table)
        q = Query((Predicate(0, 3, 3), Predicate(1, 3, 3)))
        truth = table.cardinality(q)
        assert qerrors(np.array([est.estimate(q)]), np.array([truth]))[0] < 1.5

    def test_single_column_table(self, rng):
        from repro.core import Table

        table = Table("one", rng.integers(0, 5, size=(500, 1)).astype(float))
        est = BayesEstimator().fit(table)
        q = Query((Predicate(0, 2, 2),))
        assert est.estimate(q) == pytest.approx(table.cardinality(q), rel=0.2)


class TestQuickSel:
    def test_learns_from_feedback(self, small_synthetic, synthetic_workloads):
        train, test = synthetic_workloads
        est = QuickSelEstimator(num_kernels=100).fit(small_synthetic, train)
        errors = qerrors(
            est.estimate_many(list(test.queries)), test.cardinalities
        )
        assert np.median(errors) < 20

    def test_weights_form_distribution(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        est = QuickSelEstimator(num_kernels=50).fit(small_synthetic, train)
        assert (est._weights >= 0).all()
        assert est._weights.sum() == pytest.approx(1.0, abs=1e-6)


class TestKdeFeedback:
    def test_bandwidths_positive(self, small_census, census_workloads):
        train, _ = census_workloads
        est = KdeFeedbackEstimator(feedback_queries=50).fit(small_census, train)
        assert (est._bandwidths > 0).all()

    def test_feedback_tuning_not_worse(self, small_census, census_workloads):
        """Feedback-tuned bandwidths must beat or match Scott's rule."""
        train, test = census_workloads
        tuned = KdeFeedbackEstimator(feedback_queries=100).fit(small_census, train)
        queries = list(test.queries)
        tuned_err = np.median(qerrors(tuned.estimate_many(queries), test.cardinalities))
        # Re-fit with no tuning passes by zeroing the feedback budget.
        plain = KdeFeedbackEstimator(feedback_queries=1).fit(small_census, train)
        plain_err = np.median(qerrors(plain.estimate_many(queries), test.cardinalities))
        assert tuned_err <= plain_err * 1.5
