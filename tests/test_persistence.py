"""Tests for estimator persistence (save / load round-trips)."""

import numpy as np
import pytest

from repro.estimators.learned import DeepDbEstimator, NaruEstimator
from repro.estimators.traditional import PostgresEstimator
from repro.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    atomic_write_bytes,
    load_bundle,
    load_estimator,
    load_info,
    save_bundle,
    save_estimator,
)


class TestRoundTrip:
    def test_postgres_round_trip(self, small_synthetic, tmp_path, rng):
        from repro.core import generate_workload

        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        info = save_estimator(est, path)
        assert info.estimator_name == "postgres"
        assert info.num_rows == small_synthetic.num_rows

        loaded = load_estimator(path)
        test = generate_workload(small_synthetic, 30, rng)
        np.testing.assert_allclose(
            loaded.estimate_many(list(test.queries)),
            est.estimate_many(list(test.queries)),
        )

    def test_naru_round_trip(self, small_synthetic, tmp_path):
        from repro.core import Predicate, Query

        est = NaruEstimator(
            epochs=2, num_samples=32, inference_seed=3
        ).fit(small_synthetic)
        path = tmp_path / "naru.repro"
        save_estimator(est, path)
        loaded = load_estimator(path)
        q = Query((Predicate(0, 0.0, 50.0),))
        # With a pinned inference seed the reloaded model must agree.
        assert loaded.estimate(q) == pytest.approx(est.estimate(q))

    def test_quantized_naru_round_trip(self, small_synthetic, tmp_path):
        from repro.core import Predicate, Query

        est = NaruEstimator(
            epochs=2, num_samples=32, inference_seed=3, quantize="int8"
        ).fit(small_synthetic)
        path = tmp_path / "naru-int8.repro"
        save_estimator(est, path)
        loaded = load_estimator(path)
        q = Query((Predicate(0, 0.0, 50.0),))
        assert loaded.estimate(q) == pytest.approx(est.estimate(q))
        # Packed-weight size survives the round-trip, and the loaded
        # model is still inference-only.
        assert loaded.model_size_bytes() == est.model_size_bytes()
        with pytest.raises(RuntimeError, match="quantized"):
            loaded.train_epochs(small_synthetic, 1)

    def test_deepdb_round_trip(self, small_synthetic, tmp_path):
        from repro.core import Predicate, Query

        est = DeepDbEstimator().fit(small_synthetic)
        path = tmp_path / "spn.repro"
        save_estimator(est, path)
        loaded = load_estimator(path)
        q = Query((Predicate(0, 10.0, 60.0), Predicate(1, 10.0, 60.0)))
        assert loaded.estimate(q) == pytest.approx(est.estimate(q))

    def test_metadata_readable_without_loading(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        info = load_info(path)
        assert info.format_version == FORMAT_VERSION
        assert info.estimator_class == "PostgresEstimator"


class TestFailureModes:
    def test_unfitted_estimator_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="fitted"):
            save_estimator(PostgresEstimator(), tmp_path / "x.repro")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.repro"
        path.write_bytes(b"not an artifact")
        with pytest.raises(PersistenceError, match="not a repro"):
            load_estimator(path)

    def test_truncated_artifact_rejected(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(PersistenceError):
            load_estimator(path)

    def test_truncated_payload_fails_checksum(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(PersistenceError, match="checksum"):
            load_estimator(path)

    def test_bit_flip_fails_checksum(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # corrupt one payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError, match="checksum"):
            load_estimator(path)

    def test_version_mismatch_rejected(self, small_synthetic, tmp_path, monkeypatch):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        import repro.persistence as persistence

        monkeypatch.setattr(persistence, "FORMAT_VERSION", 999)
        save_estimator(est, path)
        monkeypatch.undo()
        with pytest.raises(PersistenceError, match="format"):
            load_estimator(path)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_failed_write_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"original")

        import repro.persistence as persistence

        def exploding_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(persistence.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_bytes(path, b"replacement")
        # A crash mid-write must not tear the destination...
        assert path.read_bytes() == b"original"
        # ...and must not leave a temp file behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_save_estimator_is_atomic_over_existing(
        self, small_synthetic, tmp_path, monkeypatch
    ):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        good = path.read_bytes()

        import repro.persistence as persistence

        monkeypatch.setattr(
            persistence,
            "atomic_write_bytes",
            lambda p, d: (_ for _ in ()).throw(OSError("torn")),
        )
        with pytest.raises(OSError):
            save_estimator(est, path)
        assert path.read_bytes() == good
        load_estimator(path)  # still a valid artifact


class TestBundles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.repro"
        save_bundle({"x": np.arange(3.0)}, path, kind="unit-test")
        payload = load_bundle(path, kind="unit-test")
        np.testing.assert_array_equal(payload["x"], np.arange(3.0))

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.repro"
        save_bundle({"x": 1}, path, kind="training-checkpoint")
        with pytest.raises(PersistenceError, match="kind"):
            load_bundle(path, kind="estimator")

    def test_truncated_bundle_fails_checksum(self, tmp_path):
        path = tmp_path / "state.repro"
        save_bundle({"x": list(range(1000))}, path, kind="unit-test")
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(PersistenceError):
            load_bundle(path, kind="unit-test")


class TestFloat32RoundTrip:
    """A float32 model must come back float32 — never upcast on load."""

    def test_save_load_preserves_dtype_and_estimates(
        self, small_synthetic, tmp_path, rng
    ):
        from repro.core import generate_workload
        from repro.estimators.learned import LwNnEstimator

        train = generate_workload(small_synthetic, 80, rng)
        est = LwNnEstimator(epochs=3, hidden_units=(16,), dtype="float32")
        est.fit(small_synthetic, train)
        path = tmp_path / "lwnn32.repro"
        save_estimator(est, path)

        loaded = load_estimator(path)
        assert loaded.dtype == "float32"
        assert all(
            p.value.dtype == np.float32 for p in loaded._model.parameters()
        )
        test = generate_workload(small_synthetic, 30, rng)
        np.testing.assert_array_equal(
            loaded.estimate_many(list(test.queries)),
            est.estimate_many(list(test.queries)),
        )

    def test_training_state_restore_keeps_float32(self, small_synthetic, rng):
        from repro.core import generate_workload
        from repro.estimators.learned import LwNnEstimator

        train = generate_workload(small_synthetic, 80, rng)
        est = LwNnEstimator(epochs=4, hidden_units=(16,), dtype="float32")
        est.begin_training(small_synthetic, train)
        est.train_epochs(train, 2)
        state = est.training_state()

        resumed = LwNnEstimator(epochs=4, hidden_units=(16,), dtype="float32")
        resumed.restore_training(small_synthetic, train, state)
        assert all(
            p.value.dtype == np.float32 for p in resumed._model.parameters()
        )
        assert all(m.dtype == np.float32 for m in resumed._optimizer._m)

        # The resumed run must continue step-for-step with the original.
        est.train_epochs(train, 2)
        resumed.train_epochs(train, 2)
        for p_a, p_b in zip(
            est._model.parameters(), resumed._model.parameters()
        ):
            np.testing.assert_array_equal(p_a.value, p_b.value)
