"""Tests for estimator persistence (save / load round-trips)."""

import numpy as np
import pytest

from repro.estimators.learned import DeepDbEstimator, NaruEstimator
from repro.estimators.traditional import PostgresEstimator
from repro.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_estimator,
    load_info,
    save_estimator,
)


class TestRoundTrip:
    def test_postgres_round_trip(self, small_synthetic, tmp_path, rng):
        from repro.core import generate_workload

        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        info = save_estimator(est, path)
        assert info.estimator_name == "postgres"
        assert info.num_rows == small_synthetic.num_rows

        loaded = load_estimator(path)
        test = generate_workload(small_synthetic, 30, rng)
        np.testing.assert_allclose(
            loaded.estimate_many(list(test.queries)),
            est.estimate_many(list(test.queries)),
        )

    def test_naru_round_trip(self, small_synthetic, tmp_path):
        from repro.core import Predicate, Query

        est = NaruEstimator(
            epochs=2, num_samples=32, inference_seed=3
        ).fit(small_synthetic)
        path = tmp_path / "naru.repro"
        save_estimator(est, path)
        loaded = load_estimator(path)
        q = Query((Predicate(0, 0.0, 50.0),))
        # With a pinned inference seed the reloaded model must agree.
        assert loaded.estimate(q) == pytest.approx(est.estimate(q))

    def test_deepdb_round_trip(self, small_synthetic, tmp_path):
        from repro.core import Predicate, Query

        est = DeepDbEstimator().fit(small_synthetic)
        path = tmp_path / "spn.repro"
        save_estimator(est, path)
        loaded = load_estimator(path)
        q = Query((Predicate(0, 10.0, 60.0), Predicate(1, 10.0, 60.0)))
        assert loaded.estimate(q) == pytest.approx(est.estimate(q))

    def test_metadata_readable_without_loading(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        info = load_info(path)
        assert info.format_version == FORMAT_VERSION
        assert info.estimator_class == "PostgresEstimator"


class TestFailureModes:
    def test_unfitted_estimator_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="fitted"):
            save_estimator(PostgresEstimator(), tmp_path / "x.repro")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.repro"
        path.write_bytes(b"not an artifact")
        with pytest.raises(PersistenceError, match="not a repro"):
            load_estimator(path)

    def test_truncated_artifact_rejected(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(PersistenceError):
            load_estimator(path)

    def test_truncated_payload_fails_checksum(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(PersistenceError, match="checksum"):
            load_estimator(path)

    def test_bit_flip_fails_checksum(self, small_synthetic, tmp_path):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        save_estimator(est, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # corrupt one payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError, match="checksum"):
            load_estimator(path)

    def test_version_mismatch_rejected(self, small_synthetic, tmp_path, monkeypatch):
        est = PostgresEstimator().fit(small_synthetic)
        path = tmp_path / "pg.repro"
        import repro.persistence as persistence

        monkeypatch.setattr(persistence, "FORMAT_VERSION", 999)
        save_estimator(est, path)
        monkeypatch.undo()
        with pytest.raises(PersistenceError, match="format"):
            load_estimator(path)
