"""Tests for the observability layer (repro.obs) and its integrations."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.core import Predicate, Query, generate_workload
from repro.estimators.learned import (
    LwNnEstimator,
    LwXgbEstimator,
    MscnEstimator,
    NaruEstimator,
)
from repro.estimators.traditional import SamplingEstimator
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    ESTIMATOR_PHASE_SECONDS,
    TRAIN_EPOCHS,
    TRAIN_LOSS,
    EventLog,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    SpanCollector,
    TrainingMonitor,
    format_quantiles_ms,
    get_collector,
    get_monitor,
    install_collector,
    install_monitor,
    log_spaced_buckets,
    monitored_training,
    parse_exposition,
    percentile_ms,
    span,
    timed_span,
    uninstall_collector,
)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "help text")
        c.inc(tier="a")
        c.inc(2.0, tier="a")
        c.inc(tier="b")
        assert c.value(tier="a") == 3.0
        assert c.value(tier="b") == 1.0
        assert c.value(tier="missing") == 0.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_set_and_inc(self):
        g = MetricsRegistry().gauge("loss")
        g.set(2.5, model="naru")
        g.inc(-1.0, model="naru")
        assert g.value(model="naru") == 1.5

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("x_total")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total").inc(**{"9bad": 1})

    def test_log_spaced_buckets(self):
        bounds = log_spaced_buckets(1e-3, 1.0, per_decade=2)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] == pytest.approx(1.0)
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(math.sqrt(10.0)) for r in ratios)
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(100.0)

    def test_histogram_observe_and_quantile(self):
        h = Histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(6.05)
        assert 0.1 <= h.quantile(0.5) <= 1.0
        h.observe(100.0)  # lands in +Inf bucket
        assert h.count() == 5
        assert h.quantile(1.0) == 10.0  # capped at the last finite bound

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05, tier="a")
        h.observe(0.5, tier="a")
        samples = {
            (s.name, tuple(sorted(s.labels.items()))): s.value
            for s in parse_exposition(reg.render_text())
        }
        def key(le=None):
            labels = {"tier": "a"} | ({"le": le} if le is not None else {})
            return tuple(sorted(labels.items()))

        assert samples[("lat_seconds_bucket", key("0.1"))] == 1
        assert samples[("lat_seconds_bucket", key("1"))] == 2
        assert samples[("lat_seconds_bucket", key("+Inf"))] == 2
        assert samples[("lat_seconds_count", key())] == 2

    def test_render_text_lints_and_snapshot_is_json_safe(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total", "with help").inc(tier='we"ird')
        reg.gauge("b").set(float("nan"))
        reg.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
        samples = parse_exposition(reg.render_text())
        assert any(s.name == "a_total" for s in samples)
        path = tmp_path / "metrics.json"
        reg.to_json(path)
        snapshot = json.loads(path.read_text())
        assert snapshot["a_total"]["kind"] == "counter"
        assert snapshot["c_seconds"]["series"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_metrics(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.counter("a_total").value() == 0.0
        assert reg.names() == ["a_total"]

    def test_parse_exposition_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("this is { not a sample\n")
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_exposition("# TYPE x flamegraph\n")
        with pytest.raises(ValueError, match="malformed value"):
            parse_exposition("x_total 1.2.3\n")

    @pytest.mark.parametrize(
        "value",
        [
            'quo"te',
            "back\\slash",
            "new\nline",
            'all\\three\n"at once"',
            r"literal \n not a newline",
            "",
        ],
    )
    def test_label_escaping_round_trips(self, value):
        """render_text → parse_exposition reproduces the original label
        value exactly, whatever characters it contains."""
        reg = MetricsRegistry()
        reg.counter("rt_total").inc(3, tier=value)
        (sample,) = parse_exposition(reg.render_text())
        assert sample.name == "rt_total"
        assert sample.labels == {"tier": value}
        assert sample.value == 3.0

    def test_escaped_values_cannot_confuse_the_parser(self):
        """Braces, equals signs and commas inside label values must not
        split or terminate the label block."""
        reg = MetricsRegistry()
        hostile = 'a="b",c}d 9'
        reg.counter("rt_total").inc(tier=hostile, other="x")
        (sample,) = parse_exposition(reg.render_text())
        assert sample.labels == {"tier": hostile, "other": "x"}
        assert sample.value == 1.0


class TestLatencySummaries:
    def test_percentile_ms_matches_numpy(self):
        samples = [0.001, 0.002, 0.004, 0.010, 0.100]
        for q in (0.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile_ms(samples, q) == pytest.approx(
                float(np.percentile([1000.0 * s for s in samples], q))
            )
        assert percentile_ms([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile_ms([0.1], 150.0)

    def test_latency_window_slides(self):
        window = LatencyWindow(maxlen=3)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert len(window) == 3
        assert window.percentile_ms(0.0) == pytest.approx(2000.0)
        assert "p50=" in window.summary_text() and "p99=" in window.summary_text()

    def test_format_quantiles_ms(self):
        assert format_quantiles_ms(1.234, 9.876) == "p50=1.23ms p99=9.88ms"


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_fast_path_without_collector(self):
        assert get_collector() is None
        with span("anything") as record:
            assert record is None

    def test_nesting_links_parents(self):
        collector = install_collector()
        with span("outer") as outer:
            with span("inner"):
                pass
        inner_span, outer_span = collector.spans("inner")[0], collector.spans("outer")[0]
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert collector.children(outer_span) == [inner_span]
        assert outer is outer_span

    def test_error_status_and_attrs(self):
        collector = install_collector()
        with pytest.raises(RuntimeError):
            with span("boom", tier="naru"):
                raise RuntimeError("nope")
        record = collector.spans("boom")[0]
        assert record.status == "error"
        assert record.attrs["tier"] == "naru"
        assert record.duration_seconds >= 0.0

    def test_ring_buffer_evicts_oldest(self):
        collector = install_collector(SpanCollector(capacity=2))
        for name in ("a", "b", "c"):
            with span(name):
                pass
        assert [s.name for s in collector.spans()] == ["b", "c"]

    def test_timed_span_measures_without_collector(self):
        with timed_span("work") as timer:
            pass
        assert timer.elapsed >= 0.0
        assert timer.span is None

    def test_timed_span_agrees_with_span_record(self):
        collector = install_collector()
        with timed_span("work") as timer:
            pass
        record = collector.spans("work")[0]
        assert timer.span is record
        assert timer.elapsed == pytest.approx(record.duration_seconds)

    def test_jsonl_round_trip(self, tmp_path):
        collector = install_collector()
        with span("outer", tier="x"):
            with span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        assert collector.to_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attrs"] == {"tier": "x"}

    def test_uninstall_restores_fast_path(self):
        install_collector()
        uninstall_collector()
        with span("quiet") as record:
            assert record is None


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEvents:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("breaker.transition", breaker="naru", old="closed", new="open")
        log.emit("serve.fallback", tier="sampling")
        log.emit("breaker.transition", breaker="mscn", old="closed", new="open")
        assert len(log) == 3
        assert [e["breaker"] for e in log.events("breaker.transition")] == [
            "naru",
            "mscn",
        ]
        assert log.events("breaker.transition", breaker="naru")[0]["new"] == "open"
        assert log.kinds()["breaker.transition"] == 2

    def test_ring_buffer_and_jsonl(self, tmp_path):
        log = EventLog(capacity=2)
        for i in range(3):
            log.emit("tick", i=i)
        assert [e["i"] for e in log.events()] == [1, 2]
        path = tmp_path / "events.jsonl"
        assert log.to_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["i"] for r in rows] == [1, 2]

    def test_timestamps_are_monotonic(self):
        log = EventLog()
        first = log.emit("a")
        second = log.emit("b")
        assert second.seconds >= first.seconds


# ----------------------------------------------------------------------
# Training monitor
# ----------------------------------------------------------------------
class TestTrainingMonitor:
    def test_on_epoch_feeds_records_metrics_events(self):
        registry = MetricsRegistry()
        events = EventLog()
        monitor = TrainingMonitor(registry=registry, events=events)
        monitor.on_epoch("naru", epoch=0, loss=3.0, grad_norm=1.5, seconds=0.1)
        monitor.on_epoch("naru", epoch=1, loss=2.0, seconds=0.1)
        assert monitor.losses("naru") == [3.0, 2.0]
        assert monitor.models() == ["naru"]
        assert registry.counter(TRAIN_EPOCHS).value(model="naru") == 2
        assert registry.gauge(TRAIN_LOSS).value(model="naru") == 2.0
        assert [e["epoch"] for e in events.events("train.epoch")] == [0, 1]

    def test_monitored_training_restores_previous(self):
        assert get_monitor() is None
        outer = install_monitor()
        with monitored_training() as inner:
            assert get_monitor() is inner
            assert inner is not outer
        assert get_monitor() is outer

    def test_reset_for_tests_clears_everything(self):
        install_monitor()
        install_collector()
        obs.emit("anything")
        obs.get_registry().counter("stray_total").inc()
        obs.reset_for_tests()
        assert get_monitor() is None
        assert get_collector() is None
        assert len(obs.get_events()) == 0
        assert obs.get_registry().counter("stray_total").value() == 0.0


# ----------------------------------------------------------------------
# Estimator instrumentation (TimingRecord <- timed_span, satellite 1)
# ----------------------------------------------------------------------
class TestEstimatorInstrumentation:
    def test_fit_seconds_accumulates_across_refits(self, tiny_table):
        est = SamplingEstimator()
        est.fit(tiny_table)
        first = est.timing.fit_seconds
        assert est.timing.fit_count == 1
        assert first > 0.0
        est.fit(tiny_table)
        assert est.timing.fit_count == 2
        assert est.timing.fit_seconds > first
        assert est.timing.mean_fit_seconds == pytest.approx(
            est.timing.fit_seconds / 2
        )

    def test_phases_feed_the_default_histogram(self, tiny_table):
        est = SamplingEstimator().fit(tiny_table)
        est.estimate(Query((Predicate(0, 0.0, 2.0),)))
        hist = obs.get_registry().get(ESTIMATOR_PHASE_SECONDS)
        assert hist.count(phase="fit", estimator="sampling") == 1
        assert hist.count(phase="estimate", estimator="sampling") == 1

    def test_fit_and_estimate_record_spans_when_collecting(self, tiny_table):
        collector = install_collector()
        est = SamplingEstimator().fit(tiny_table)
        est.estimate(Query((Predicate(0, 0.0, 2.0),)))
        names = collector.names()
        assert names["estimator.fit"] == 1
        assert names["estimator.estimate"] == 1
        fit_span = collector.spans("estimator.fit")[0]
        assert fit_span.attrs["estimator"] == "sampling"
        assert fit_span.duration_seconds == pytest.approx(
            est.timing.fit_seconds, rel=0.5
        )


# ----------------------------------------------------------------------
# Batch-inference instrumentation (estimate_many accounting)
# ----------------------------------------------------------------------
class TestBatchInstrumentation:
    @staticmethod
    def _queries(n):
        return [Query((Predicate(0, 0.0, 2.0),))] * n

    def test_batch_counts_every_query(self, tiny_table):
        est = SamplingEstimator().fit(tiny_table)
        est.estimate_many(self._queries(7))
        assert est.timing.inference_count == 7
        assert est.timing.total_inference_seconds > 0.0
        # A follow-up scalar estimate keeps accumulating on top.
        est.estimate(Query((Predicate(0, 0.0, 2.0),)))
        assert est.timing.inference_count == 8

    def test_batch_observes_estimate_phase_once(self, tiny_table):
        est = SamplingEstimator().fit(tiny_table)
        est.estimate_many(self._queries(5))
        hist = obs.get_registry().get(ESTIMATOR_PHASE_SECONDS)
        assert hist.count(phase="estimate", estimator="sampling") == 1

    def test_batch_records_a_single_span(self, tiny_table):
        # Regression: estimate_many used to re-enter timed_span once per
        # query, emitting N per-query spans (and N phase observations)
        # for one logical batch call.
        collector = install_collector()
        est = SamplingEstimator().fit(tiny_table)
        est.estimate_many(self._queries(9))
        names = collector.names()
        assert names["estimator.estimate_batch"] == 1
        assert names.get("estimator.estimate", 0) == 0
        span = collector.spans("estimator.estimate_batch")[0]
        assert span.attrs["estimator"] == "sampling"
        assert span.attrs["batch"] == 9


# ----------------------------------------------------------------------
# Training-loop telemetry (per-epoch loss for the learned methods)
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_workload(tiny_table, rng):
    return generate_workload(tiny_table, 40, rng)


class TestTrainingTelemetry:
    def _fit(self, estimator, tiny_table, tiny_workload):
        with monitored_training() as monitor:
            estimator.fit(
                tiny_table,
                tiny_workload if estimator.requires_workload else None,
            )
        return monitor

    def test_naru_reports_epochs(self, tiny_table, tiny_workload):
        est = NaruEstimator(hidden_units=8, hidden_layers=1, epochs=2, num_samples=20)
        monitor = self._fit(est, tiny_table, tiny_workload)
        records = monitor.records_for("naru")
        assert [r.epoch for r in records] == [0, 1]
        assert all(math.isfinite(r.loss) for r in records)
        assert all(r.grad_norm is not None and r.grad_norm >= 0.0 for r in records)
        assert monitor.losses("naru") == est.loss_history

    def test_lw_nn_reports_epochs(self, tiny_table, tiny_workload):
        est = LwNnEstimator(hidden_units=(8,), epochs=3)
        monitor = self._fit(est, tiny_table, tiny_workload)
        assert len(monitor.records_for("lw-nn")) == 3
        assert monitor.losses("lw-nn") == est.loss_history

    def test_mscn_reports_epochs(self, tiny_table, tiny_workload):
        est = MscnEstimator(hidden_units=8, sample_size=10, epochs=2)
        monitor = self._fit(est, tiny_table, tiny_workload)
        assert len(monitor.records_for("mscn")) == 2

    def test_lw_xgb_reports_boosting_rounds(self, tiny_table, tiny_workload):
        est = LwXgbEstimator(num_trees=4, max_depth=2)
        monitor = self._fit(est, tiny_table, tiny_workload)
        records = monitor.records_for("lw-xgb")
        assert [r.epoch for r in records] == [0, 1, 2, 3]
        # squared-loss boosting: residual MSE is non-increasing
        losses = monitor.losses("lw-xgb")
        assert losses == sorted(losses, reverse=True)

    def test_no_monitor_means_no_records(self, tiny_table, tiny_workload):
        assert get_monitor() is None
        LwNnEstimator(hidden_units=(8,), epochs=1).fit(tiny_table, tiny_workload)
        assert len(obs.get_events().events("train.epoch")) == 0


# ----------------------------------------------------------------------
# Serving spans (service -> tier parent links)
# ----------------------------------------------------------------------
class TestServingSpans:
    def test_serve_spans_nest_tier_attempts(self, tiny_table):
        from repro.serve import EstimatorService

        collector = install_collector()
        svc = EstimatorService(
            [SamplingEstimator(), SamplingEstimator()], deadline_ms=None
        )
        svc.fit(tiny_table)
        collector.clear()  # drop the fit spans; inspect serving only
        svc.serve(Query((Predicate(0, 0.0, 2.0),)))
        serve_spans = collector.spans("serve")
        assert len(serve_spans) == 1
        tier_spans = collector.children(serve_spans[0])
        assert [s.name for s in tier_spans] == ["serve.tier"]
        assert tier_spans[0].attrs["outcome"] == "served"
        assert serve_spans[0].attrs["tier"] == "sampling"
