"""Batch/scalar equivalence for the vectorized inference hot path.

``estimate_many`` must return the same numbers as the one-query-at-a-time
loop for every registered estimator — exactly for deterministic
estimators, and to floating-point rounding (1e-9 relative) for the
vectorized paths whose summation order legitimately differs (grouped AVI
products, sparse MADE kernel, segment-sum pooling).  Edge cases ride
along: wildcard (one-sided / full-domain) predicates, empty (lo > hi)
predicates, the one-row table, and the zero-row rejection.
"""

import numpy as np
import pytest

from repro import Scale, estimator_names, make_estimator
from repro.core import Predicate, Query, Table, generate_workload
from repro.serve import HeuristicConstantEstimator

TINY = Scale(
    name="tiny",
    row_fraction=0.1,
    train_queries=150,
    test_queries=40,
    nn_epochs=2,
    naru_epochs=2,
    update_queries=50,
    synthetic_rows=1500,
    naru_samples=32,
)

#: Estimators whose batch path must be bit-identical to the scalar loop:
#: either the default loop fallback or a vectorized path with unchanged
#: summation order.
EXACT = {"sampling", "lw-xgb", "bayes", "kde-fb", "deepdb", "quicksel", "dbms-a"}

#: Everything else agrees to rounding error only (vectorized reductions
#: reorder floating-point sums).
RTOL = 1e-9


@pytest.fixture(scope="module")
def table():
    from repro.datasets import generate_synthetic

    rng = np.random.default_rng(31)
    return generate_synthetic(2500, skew=1.0, correlation=0.6, domain_size=50, rng=rng)


@pytest.fixture(scope="module")
def train(table):
    rng = np.random.default_rng(32)
    return generate_workload(table, TINY.train_queries, rng)


@pytest.fixture(scope="module", params=estimator_names())
def fitted(request, table, train):
    est = make_estimator(request.param, TINY)
    est.fit(table, train if est.requires_workload else None)
    if hasattr(est, "inference_seed"):
        # Pin stochastic inference so the scalar loop and the batch draw
        # identical sampling trajectories.
        est.inference_seed = 1234
    return est


def edge_queries(table) -> list[Query]:
    """Wildcard, empty, equality and all-column queries."""
    col0 = table.columns[0]
    mid = (col0.domain_min + col0.domain_max) / 2
    return [
        Query((Predicate(0, None, mid),)),  # one-sided hi
        Query((Predicate(0, mid, None),)),  # one-sided lo
        Query((Predicate(0, col0.domain_min, col0.domain_max),)),  # full domain
        Query((Predicate(0, mid + 1.0, mid - 1.0),)),  # empty: lo > hi
        Query((Predicate(0, float(col0.distinct_values[0]),
                         float(col0.distinct_values[0])),)),  # equality
        Query(
            tuple(
                Predicate(i, c.domain_min, (c.domain_min + c.domain_max) / 2)
                for i, c in enumerate(table.columns)
            )
        ),  # every column predicated
    ]


class TestEquivalence:
    def test_matches_scalar_loop(self, fitted, table):
        rng = np.random.default_rng(33)
        queries = list(generate_workload(table, 60, rng).queries) + edge_queries(
            table
        )
        scalar = np.array([fitted.estimate(q) for q in queries])
        batch = fitted.estimate_many(queries)
        assert batch.shape == (len(queries),)
        if fitted.name in EXACT:
            assert np.array_equal(scalar, batch)
        else:
            np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_empty_predicate_agrees(self, fitted, table):
        query = Query((Predicate(0, 30.0, 10.0),))
        scalar = fitted.estimate(query)
        batch = fitted.estimate_many([query, query])
        np.testing.assert_allclose(batch, [scalar, scalar], rtol=RTOL)

    def test_empty_batch(self, fitted):
        out = fitted.estimate_many([])
        assert out.shape == (0,)

    def test_batch_output_is_clamped(self, fitted, table):
        rng = np.random.default_rng(34)
        queries = list(generate_workload(table, 20, rng).queries)
        out = fitted.estimate_many(queries)
        assert (out >= 0.0).all()


class TestUnseededNaru:
    """The shared stateful inference RNG must advance in scalar order."""

    @pytest.mark.parametrize("wildcard", [False, True])
    def test_two_instances_agree(self, table, wildcard):
        from repro.estimators.learned import NaruEstimator

        def build():
            est = NaruEstimator(
                epochs=2, num_samples=16, seed=5, wildcard_skipping=wildcard
            )
            est.fit(table)
            return est

        rng = np.random.default_rng(35)
        queries = list(generate_workload(table, 30, rng).queries)
        scalar_est, batch_est = build(), build()
        scalar = np.array([scalar_est.estimate(q) for q in queries])
        batch = batch_est.estimate_many(queries)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)


class TestDegenerateTables:
    def test_zero_row_table_rejected(self):
        # A zero-row table cannot exist, so batch equivalence on one is
        # untestable by construction; the rejection is the contract.
        with pytest.raises(ValueError, match="at least one row"):
            Table("empty", np.empty((0, 3)))

    def test_one_row_table(self):
        data = np.array([[1.0, 5.0, 2.0]])
        tiny = Table("one-row", data)
        queries = [
            Query((Predicate(0, 0.0, 2.0),)),
            Query((Predicate(0, 3.0, 4.0),)),
            Query((Predicate(1, None, 5.0), Predicate(2, 2.0, None))),
            Query((Predicate(0, 2.0, 0.0),)),  # empty
        ]
        for name in ("postgres", "mysql", "sampling", "mhist"):
            est = make_estimator(name, TINY)
            est.fit(tiny)
            scalar = np.array([est.estimate(q) for q in queries])
            batch = est.estimate_many(queries)
            np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)
        heur = HeuristicConstantEstimator()
        heur.fit(tiny)
        scalar = np.array([heur.estimate(q) for q in queries])
        assert np.array_equal(heur.estimate_many(queries), scalar)


class TestBatchHookContract:
    def test_wrong_shape_raises(self, table):
        class Broken(HeuristicConstantEstimator):
            def _estimate_batch(self, queries):
                return np.ones(len(queries) + 1)

        est = Broken()
        est.fit(table)
        with pytest.raises(ValueError, match="shape"):
            est.estimate_many([Query((Predicate(0, 0.0, 1.0),))])

    def test_nan_raw_estimates_clamp_to_zero(self, table):
        class NanBatch(HeuristicConstantEstimator):
            def _estimate_batch(self, queries):
                return np.full(len(queries), np.nan)

        est = NanBatch()
        est.fit(table)
        out = est.estimate_many([Query((Predicate(0, 0.0, 1.0),))] * 3)
        # Scalar estimate() maps NaN to 0.0 via max(); the batch clamp
        # must reproduce that, not propagate NaN.
        assert np.array_equal(out, np.zeros(3))


class TestFastPathTiers:
    """Batch/scalar equivalence for the int8 and distilled-student tiers.

    Quantized inference runs in float32, so naru's sampler can round a
    bin differently between the scalar loop and the batch kernel —
    bitwise equality is unattainable.  Mirroring the float32 gating of
    the mixed-precision work, the quantized tiers are held to q-error
    *bands* instead: batch vs scalar within p95 q-error 1.1, and the
    quantized model within 1.5x p95 q-error of its own fp teacher.
    """

    QERR_BATCH_P95 = 1.1
    QERR_TEACHER_P95 = 1.5

    @staticmethod
    def qerr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.maximum(np.asarray(a, dtype=np.float64), 1.0)
        b = np.maximum(np.asarray(b, dtype=np.float64), 1.0)
        return np.maximum(a / b, b / a)

    @pytest.fixture(scope="class")
    def probes(self, table):
        rng = np.random.default_rng(41)
        return list(generate_workload(table, 60, rng).queries) + edge_queries(table)

    @pytest.fixture(scope="class", params=["mscn-int8", "lw-nn-int8"])
    def quantized_mlp(self, request, table, train):
        est = make_estimator(request.param, TINY)
        est.fit(table, train)
        return est

    def test_mlp_batch_matches_scalar(self, quantized_mlp, probes):
        scalar = np.array([quantized_mlp.estimate(q) for q in probes])
        batch = quantized_mlp.estimate_many(probes)
        # Dequantize-on-the-fly runs in float32; reordered reductions
        # cost more ulps than the float64 paths' 1e-9.
        np.testing.assert_allclose(batch, scalar, rtol=2e-4, atol=1e-6)

    def test_naru_batch_within_qerror_band(self, table, probes):
        est = make_estimator("naru-int8", TINY)
        est.fit(table)
        est.inference_seed = 1234
        scalar = np.array([est.estimate(q) for q in probes])
        batch = est.estimate_many(probes)
        p95 = float(np.percentile(self.qerr(batch, scalar), 95.0))
        assert p95 <= self.QERR_BATCH_P95, (
            f"quantized naru batch vs scalar p95 q-error {p95:.3f} "
            f"exceeds {self.QERR_BATCH_P95}"
        )

    @pytest.mark.parametrize("method", ["naru", "mscn", "lw-nn"])
    def test_quantized_tracks_fp_teacher(self, method, table, train, probes):
        import copy

        teacher = make_estimator(method, TINY)
        teacher.fit(table, train if teacher.requires_workload else None)
        if hasattr(teacher, "inference_seed"):
            teacher.inference_seed = 1234
        quantized = copy.deepcopy(teacher)
        quantized.quantize_int8()
        fp = teacher.estimate_many(probes)
        q8 = quantized.estimate_many(probes)
        p95 = float(np.percentile(self.qerr(q8, fp), 95.0))
        assert p95 <= self.QERR_TEACHER_P95, (
            f"int8 {method} p95 q-error vs fp teacher {p95:.3f} "
            f"exceeds {self.QERR_TEACHER_P95}"
        )

    def test_student_batch_matches_scalar(self, table, train, probes):
        from repro.fastpath import DistilledStudent

        teacher = make_estimator("mscn", TINY)  # deterministic teacher
        teacher.fit(table, train)
        student = DistilledStudent(teacher, num_queries=200, seed=3)
        student.fit(table)
        scalar = np.array([student.estimate(q) for q in probes])
        batch = student.estimate_many(probes)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_cache_on_off_exact_hit_identity(self, table, train):
        """A cached answer must equal the answer the chain would give."""
        from repro.fastpath import SemanticEstimateCache
        from repro.serve import EstimatorService

        rng = np.random.default_rng(43)
        queries = list(generate_workload(table, 20, rng).queries)

        def build(cache):
            est = make_estimator("lw-xgb", TINY)
            est.fit(table, train)
            return EstimatorService([est], cache=cache, deadline_ms=None)

        plain = build(None)
        cached = build(SemanticEstimateCache(capacity=256, scan_limit=0))
        uncached_answers = plain.estimate_many(queries)
        first = cached.estimate_many(queries)   # cold: populates
        second = cached.estimate_many(queries)  # warm: exact hits
        assert cached.cache.hits >= len(queries)
        np.testing.assert_array_equal(first, uncached_answers)
        np.testing.assert_array_equal(second, uncached_answers)


@pytest.mark.slow
class TestBatchPerfSmoke:
    """Batched inference must beat the scalar loop on a real batch."""

    @pytest.mark.parametrize("method", ["naru", "mscn"])
    def test_faster_than_scalar_loop(self, method, table, train):
        import time

        est = make_estimator(method, TINY)
        est.fit(table, train if est.requires_workload else None)
        if hasattr(est, "inference_seed"):
            est.inference_seed = 99
        rng = np.random.default_rng(36)
        queries = list(generate_workload(table, 256, rng).queries)
        start = time.perf_counter()
        for q in queries:
            est.estimate(q)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        est.estimate_many(queries)
        batch_seconds = time.perf_counter() - start
        assert batch_seconds < scalar_seconds, (
            f"{method}: batch {batch_seconds:.3f}s not faster than "
            f"scalar {scalar_seconds:.3f}s on {len(queries)} queries"
        )
