"""Batch/scalar equivalence for the vectorized inference hot path.

``estimate_many`` must return the same numbers as the one-query-at-a-time
loop for every registered estimator — exactly for deterministic
estimators, and to floating-point rounding (1e-9 relative) for the
vectorized paths whose summation order legitimately differs (grouped AVI
products, sparse MADE kernel, segment-sum pooling).  Edge cases ride
along: wildcard (one-sided / full-domain) predicates, empty (lo > hi)
predicates, the one-row table, and the zero-row rejection.
"""

import numpy as np
import pytest

from repro import Scale, estimator_names, make_estimator
from repro.core import Predicate, Query, Table, generate_workload
from repro.serve import HeuristicConstantEstimator

TINY = Scale(
    name="tiny",
    row_fraction=0.1,
    train_queries=150,
    test_queries=40,
    nn_epochs=2,
    naru_epochs=2,
    update_queries=50,
    synthetic_rows=1500,
    naru_samples=32,
)

#: Estimators whose batch path must be bit-identical to the scalar loop:
#: either the default loop fallback or a vectorized path with unchanged
#: summation order.
EXACT = {"sampling", "lw-xgb", "bayes", "kde-fb", "deepdb", "quicksel", "dbms-a"}

#: Everything else agrees to rounding error only (vectorized reductions
#: reorder floating-point sums).
RTOL = 1e-9


@pytest.fixture(scope="module")
def table():
    from repro.datasets import generate_synthetic

    rng = np.random.default_rng(31)
    return generate_synthetic(2500, skew=1.0, correlation=0.6, domain_size=50, rng=rng)


@pytest.fixture(scope="module")
def train(table):
    rng = np.random.default_rng(32)
    return generate_workload(table, TINY.train_queries, rng)


@pytest.fixture(scope="module", params=estimator_names())
def fitted(request, table, train):
    est = make_estimator(request.param, TINY)
    est.fit(table, train if est.requires_workload else None)
    if hasattr(est, "inference_seed"):
        # Pin stochastic inference so the scalar loop and the batch draw
        # identical sampling trajectories.
        est.inference_seed = 1234
    return est


def edge_queries(table) -> list[Query]:
    """Wildcard, empty, equality and all-column queries."""
    col0 = table.columns[0]
    mid = (col0.domain_min + col0.domain_max) / 2
    return [
        Query((Predicate(0, None, mid),)),  # one-sided hi
        Query((Predicate(0, mid, None),)),  # one-sided lo
        Query((Predicate(0, col0.domain_min, col0.domain_max),)),  # full domain
        Query((Predicate(0, mid + 1.0, mid - 1.0),)),  # empty: lo > hi
        Query((Predicate(0, float(col0.distinct_values[0]),
                         float(col0.distinct_values[0])),)),  # equality
        Query(
            tuple(
                Predicate(i, c.domain_min, (c.domain_min + c.domain_max) / 2)
                for i, c in enumerate(table.columns)
            )
        ),  # every column predicated
    ]


class TestEquivalence:
    def test_matches_scalar_loop(self, fitted, table):
        rng = np.random.default_rng(33)
        queries = list(generate_workload(table, 60, rng).queries) + edge_queries(
            table
        )
        scalar = np.array([fitted.estimate(q) for q in queries])
        batch = fitted.estimate_many(queries)
        assert batch.shape == (len(queries),)
        if fitted.name in EXACT:
            assert np.array_equal(scalar, batch)
        else:
            np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_empty_predicate_agrees(self, fitted, table):
        query = Query((Predicate(0, 30.0, 10.0),))
        scalar = fitted.estimate(query)
        batch = fitted.estimate_many([query, query])
        np.testing.assert_allclose(batch, [scalar, scalar], rtol=RTOL)

    def test_empty_batch(self, fitted):
        out = fitted.estimate_many([])
        assert out.shape == (0,)

    def test_batch_output_is_clamped(self, fitted, table):
        rng = np.random.default_rng(34)
        queries = list(generate_workload(table, 20, rng).queries)
        out = fitted.estimate_many(queries)
        assert (out >= 0.0).all()


class TestUnseededNaru:
    """The shared stateful inference RNG must advance in scalar order."""

    @pytest.mark.parametrize("wildcard", [False, True])
    def test_two_instances_agree(self, table, wildcard):
        from repro.estimators.learned import NaruEstimator

        def build():
            est = NaruEstimator(
                epochs=2, num_samples=16, seed=5, wildcard_skipping=wildcard
            )
            est.fit(table)
            return est

        rng = np.random.default_rng(35)
        queries = list(generate_workload(table, 30, rng).queries)
        scalar_est, batch_est = build(), build()
        scalar = np.array([scalar_est.estimate(q) for q in queries])
        batch = batch_est.estimate_many(queries)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)


class TestDegenerateTables:
    def test_zero_row_table_rejected(self):
        # A zero-row table cannot exist, so batch equivalence on one is
        # untestable by construction; the rejection is the contract.
        with pytest.raises(ValueError, match="at least one row"):
            Table("empty", np.empty((0, 3)))

    def test_one_row_table(self):
        data = np.array([[1.0, 5.0, 2.0]])
        tiny = Table("one-row", data)
        queries = [
            Query((Predicate(0, 0.0, 2.0),)),
            Query((Predicate(0, 3.0, 4.0),)),
            Query((Predicate(1, None, 5.0), Predicate(2, 2.0, None))),
            Query((Predicate(0, 2.0, 0.0),)),  # empty
        ]
        for name in ("postgres", "mysql", "sampling", "mhist"):
            est = make_estimator(name, TINY)
            est.fit(tiny)
            scalar = np.array([est.estimate(q) for q in queries])
            batch = est.estimate_many(queries)
            np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)
        heur = HeuristicConstantEstimator()
        heur.fit(tiny)
        scalar = np.array([heur.estimate(q) for q in queries])
        assert np.array_equal(heur.estimate_many(queries), scalar)


class TestBatchHookContract:
    def test_wrong_shape_raises(self, table):
        class Broken(HeuristicConstantEstimator):
            def _estimate_batch(self, queries):
                return np.ones(len(queries) + 1)

        est = Broken()
        est.fit(table)
        with pytest.raises(ValueError, match="shape"):
            est.estimate_many([Query((Predicate(0, 0.0, 1.0),))])

    def test_nan_raw_estimates_clamp_to_zero(self, table):
        class NanBatch(HeuristicConstantEstimator):
            def _estimate_batch(self, queries):
                return np.full(len(queries), np.nan)

        est = NanBatch()
        est.fit(table)
        out = est.estimate_many([Query((Predicate(0, 0.0, 1.0),))] * 3)
        # Scalar estimate() maps NaN to 0.0 via max(); the batch clamp
        # must reproduce that, not propagate NaN.
        assert np.array_equal(out, np.zeros(3))


@pytest.mark.slow
class TestBatchPerfSmoke:
    """Batched inference must beat the scalar loop on a real batch."""

    @pytest.mark.parametrize("method", ["naru", "mscn"])
    def test_faster_than_scalar_loop(self, method, table, train):
        import time

        est = make_estimator(method, TINY)
        est.fit(table, train if est.requires_workload else None)
        if hasattr(est, "inference_seed"):
            est.inference_seed = 99
        rng = np.random.default_rng(36)
        queries = list(generate_workload(table, 256, rng).queries)
        start = time.perf_counter()
        for q in queries:
            est.estimate(q)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        est.estimate_many(queries)
        batch_seconds = time.perf_counter() - start
        assert batch_seconds < scalar_seconds, (
            f"{method}: batch {batch_seconds:.3f}s not faster than "
            f"scalar {scalar_seconds:.3f}s on {len(queries)} queries"
        )
