"""Property-based correctness suite for :mod:`repro.fastpath`.

Three families of seeded random properties, each over 1000+ generated
cases:

* **Quantization round-trip** — per-channel int8 quantization must
  reconstruct every weight to within half a quantization step
  (``scale/2``), preserve exact zeros (the MADE masks depend on it),
  and the dequantize-on-the-fly matmul must equal the matmul against
  the explicitly dequantized matrix.
* **Subsumption soundness** — whenever :func:`subsumes` claims
  ``sub ⊆ sup``, brute-force row evaluation over a random table must
  agree: every row matching the subset matches the superset.  The
  checker may decline containment it cannot prove (one-directional),
  but a positive claim must never be wrong.
* **Monotonicity bound** — every semantic cache answer lies in
  ``[0, cached]`` where ``cached`` is the containing rectangle's
  stored estimate, both for :func:`interpolated_bound` directly and
  for answers served by :class:`SemanticEstimateCache`.
"""

import numpy as np
import pytest

from repro.core import Predicate, Query
from repro.fastpath import (
    SemanticEstimateCache,
    interpolated_bound,
    qmatmul,
    quantize_per_channel,
    subsumes,
)

# ----------------------------------------------------------------------
# Case generators
# ----------------------------------------------------------------------

def random_weight(rng: np.random.Generator) -> np.ndarray:
    """A weight matrix with a randomly nasty value distribution."""
    rows = int(rng.integers(1, 40))
    cols = int(rng.integers(1, 40))
    kind = rng.integers(0, 5)
    if kind == 0:  # plain Gaussian init
        w = rng.normal(0.0, rng.uniform(1e-3, 10.0), size=(rows, cols))
    elif kind == 1:  # heavy-tailed with outlier channels
        w = rng.standard_t(2, size=(rows, cols)) * rng.uniform(0.1, 100.0)
    elif kind == 2:  # one-sided (all positive) — range must still span 0
        w = rng.uniform(0.5, 3.0, size=(rows, cols))
    elif kind == 3:  # constant columns (zero span per channel)
        w = np.tile(rng.normal(size=(1, cols)), (rows, 1))
    else:  # mostly-masked: exact zeros everywhere but a few entries
        w = np.zeros((rows, cols))
        hot = rng.random(size=(rows, cols)) < 0.2
        w[hot] = rng.normal(0.0, 5.0, size=int(hot.sum()))
    # Sprinkle exact zeros into every variant: masked MADE weights are
    # the norm, not the exception.
    w[rng.random(size=w.shape) < 0.1] = 0.0
    return w.astype(np.float32)


def random_predicate(rng: np.random.Generator, column: int) -> Predicate:
    """Closed / one-sided / equality / empty, over a small domain."""
    a, b = np.sort(rng.uniform(0.0, 20.0, size=2)).tolist()
    kind = rng.integers(0, 5)
    if kind == 0:
        return Predicate(column, a, b)
    if kind == 1:
        return Predicate(column, None, b)
    if kind == 2:
        return Predicate(column, a, None)
    if kind == 3:
        return Predicate(column, a, a)  # equality
    return Predicate(column, b + 1.0, a)  # empty: lo > hi


def random_query(rng: np.random.Generator, num_columns: int) -> Query:
    num_preds = int(rng.integers(1, num_columns + 1))
    cols = rng.choice(num_columns, size=num_preds, replace=False)
    return Query(tuple(random_predicate(rng, int(c)) for c in sorted(cols)))


def tighten(rng: np.random.Generator, query: Query, num_columns: int) -> Query:
    """A query whose rows are a subset of ``query``'s by construction."""
    preds = []
    for p in query.predicates:
        lo = p.lo if p.lo is not None else -1e6
        hi = p.hi if p.hi is not None else 1e6
        if hi < lo:  # empty stays empty
            preds.append(p)
            continue
        new_lo, new_hi = np.sort(rng.uniform(lo, hi, size=2)).tolist()
        preds.append(Predicate(p.column, new_lo, new_hi))
    # Optionally constrain an extra, previously free column.
    free = sorted(set(range(num_columns)) - set(query.columns))
    if free and rng.random() < 0.5:
        col = int(rng.choice(free))
        preds.append(random_predicate(rng, col))
    return Query(tuple(sorted(preds, key=lambda p: p.column)))


def row_mask(table_data: np.ndarray, query: Query) -> np.ndarray:
    """Brute-force row-level evaluation of the conjunction."""
    mask = np.ones(len(table_data), dtype=bool)
    for p in query.predicates:
        col = table_data[:, p.column]
        if p.lo is not None:
            mask &= col >= p.lo
        if p.hi is not None:
            mask &= col <= p.hi
    return mask


# ----------------------------------------------------------------------
# Quantization round-trip
# ----------------------------------------------------------------------

class TestQuantizationRoundTrip:
    def test_error_within_half_step_1000_cases(self):
        rng = np.random.default_rng(20260807)
        for _ in range(1000):
            w = random_weight(rng)
            qt = quantize_per_channel(w)
            err = np.abs(qt.dequantize() - w)
            # Per-element bound: half a quantization step per channel,
            # plus float32 rounding slack.
            bound = qt.scale.astype(np.float64) * 0.5 * (1.0 + 1e-3) + 1e-7
            assert (err <= bound[None, :]).all(), (
                f"round-trip error {err.max()} exceeds half-step bound"
            )

    def test_exact_zeros_preserved(self):
        """Masked MADE weights must dequantize back to exactly 0.0."""
        rng = np.random.default_rng(7)
        for _ in range(200):
            w = random_weight(rng)
            qt = quantize_per_channel(w)
            back = qt.dequantize()
            zero = w == 0.0
            assert (back[zero] == 0.0).all(), "exact zero not preserved"

    def test_qmatmul_matches_dequantized_matmul(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            w = random_weight(rng)
            qt = quantize_per_channel(w)
            x = rng.normal(0.0, 2.0, size=(5, w.shape[0])).astype(np.float32)
            fused = qmatmul(x, qt)
            explicit = x @ qt.dequantize()
            # Float32 rounding error scales with the *accumulated*
            # magnitude — including the zero-point correction the fused
            # kernel subtracts — not the (possibly cancelled) result.
            accumulated = np.abs(x) @ np.abs(qt.q.astype(np.float32))
            correction = np.abs(x).sum(axis=-1, keepdims=True) * np.abs(
                qt.zero_point.astype(np.float32)
            )
            budget = 1e-5 * (accumulated + correction) * qt.scale + 1e-6
            assert (np.abs(fused - explicit) <= budget).all()

    def test_quantized_range_is_int8(self):
        rng = np.random.default_rng(13)
        for _ in range(100):
            qt = quantize_per_channel(random_weight(rng))
            assert qt.q.dtype == np.int8
            assert qt.scale.dtype == np.float32
            assert (qt.scale > 0.0).all()

    def test_size_shrinks_4x_vs_float32(self):
        rng = np.random.default_rng(17)
        w = rng.normal(size=(256, 256)).astype(np.float32)
        qt = quantize_per_channel(w)
        # int8 payload plus per-channel scale/zero-point overhead.
        assert qt.size_bytes <= w.nbytes // 4 + 256 * 5


# ----------------------------------------------------------------------
# Subsumption soundness
# ----------------------------------------------------------------------

class TestSubsumptionSoundness:
    def test_positive_claims_sound_1000_cases(self):
        """subsumes == True must imply row containment, brute-forced."""
        rng = np.random.default_rng(20210807)
        num_columns = 4
        table_data = rng.uniform(0.0, 20.0, size=(300, num_columns))
        positives = 0
        for _ in range(1200):
            sup = random_query(rng, num_columns)
            # Mix constructed-subset pairs (exercise the True branch)
            # with unrelated pairs (exercise refusals).
            if rng.random() < 0.6:
                sub = tighten(rng, sup, num_columns)
            else:
                sub = random_query(rng, num_columns)
            if subsumes(sup, sub):
                positives += 1
                sup_mask = row_mask(table_data, sup)
                sub_mask = row_mask(table_data, sub)
                escaped = sub_mask & ~sup_mask
                assert not escaped.any(), (
                    f"{escaped.sum()} rows match {sub} but not the "
                    f"claimed superset {sup}"
                )
        # The generator must actually exercise the positive branch.
        assert positives >= 300, f"only {positives} positive claims generated"

    def test_constructed_subsets_recognised(self):
        """Interval-tightened pairs must be claimed (no false negatives
        for the easy constructive case with both sides bounded)."""
        rng = np.random.default_rng(23)
        recognised = 0
        for _ in range(500):
            lo, hi = np.sort(rng.uniform(0.0, 20.0, size=2)).tolist()
            sup = Query((Predicate(0, lo, hi),))
            in_lo, in_hi = np.sort(rng.uniform(lo, hi, size=2)).tolist()
            sub = Query((Predicate(0, in_lo, in_hi),))
            assert subsumes(sup, sub)
            recognised += 1
        assert recognised == 500

    def test_free_superset_column_defeats_nothing(self):
        """A column only the *subset* constrains cannot break containment."""
        sup = Query((Predicate(0, 0.0, 10.0),))
        sub = Query((Predicate(0, 2.0, 8.0), Predicate(1, 5.0, 6.0)))
        assert subsumes(sup, sub)

    def test_constrained_superset_column_missing_from_subset_defeats(self):
        sup = Query((Predicate(0, 0.0, 10.0), Predicate(1, 0.0, 5.0)))
        sub = Query((Predicate(0, 2.0, 8.0),))
        assert not subsumes(sup, sub)

    def test_strictly_wider_subset_refused(self):
        sup = Query((Predicate(0, 2.0, 8.0),))
        sub = Query((Predicate(0, 0.0, 10.0),))
        assert not subsumes(sup, sub)


# ----------------------------------------------------------------------
# Monotonicity bound
# ----------------------------------------------------------------------

class TestMonotonicityBound:
    def test_interpolated_bound_in_range_1000_cases(self):
        rng = np.random.default_rng(20190807)
        num_columns = 4
        for _ in range(1000):
            sup = random_query(rng, num_columns)
            sub = tighten(rng, sup, num_columns)
            if not subsumes(sup, sub):
                continue
            cached = float(rng.uniform(0.0, 1e6))
            answer = interpolated_bound(sup, sub, cached)
            assert 0.0 <= answer <= cached, (
                f"semantic answer {answer} outside [0, {cached}]"
            )

    def test_sampled_interpolation_respects_bound_1000_cases(self):
        """Empirical (sample-driven) interpolation obeys the same clamp."""
        rng = np.random.default_rng(20220807)
        num_columns = 4
        sample = rng.uniform(0.0, 20.0, size=(200, num_columns)).astype(
            np.float32
        )
        for _ in range(1000):
            sup = random_query(rng, num_columns)
            sub = tighten(rng, sup, num_columns)
            cached = float(rng.uniform(0.0, 1e6))
            answer = interpolated_bound(sup, sub, cached, sample)
            assert 0.0 <= answer <= cached

    def test_sampled_interpolation_tracks_skew(self):
        """With all the mass in the subset range, the empirical answer
        keeps (almost) the whole cached estimate where the uniform
        width ratio would wrongly shrink it."""
        rng = np.random.default_rng(37)
        # 95% of rows in [0, 1], 5% spread over [1, 100].
        col = np.concatenate(
            [rng.uniform(0.0, 1.0, 950), rng.uniform(1.0, 100.0, 50)]
        )
        sample = col[:, None].astype(np.float32)
        sup = Query((Predicate(0, 0.0, 100.0),))
        sub = Query((Predicate(0, 0.0, 1.0),))
        uniform = interpolated_bound(sup, sub, 1000.0)
        empirical = interpolated_bound(sup, sub, 1000.0, sample)
        assert uniform <= 20.0  # width ratio: 1/100th of the estimate
        assert empirical >= 900.0  # observed mass: almost all of it

    def test_empty_subset_predicate_answers_zero(self):
        sup = Query((Predicate(0, 0.0, 10.0),))
        sub = Query((Predicate(0, 8.0, 2.0),))  # lo > hi: matches nothing
        assert subsumes(sup, sub) is False or True  # containment irrelevant
        assert interpolated_bound(sup, sub, 500.0) == 0.0

    def test_cache_served_answers_respect_bound(self):
        """Every answer the cache serves semantically is ≤ its source."""
        rng = np.random.default_rng(29)
        cache = SemanticEstimateCache(capacity=64, scan_limit=64)
        num_columns = 3
        semantic_served = 0
        for _ in range(1000):
            if rng.random() < 0.4 or len(cache) == 0:
                q = random_query(rng, num_columns)
                cache.put(q, float(rng.uniform(0.0, 1e5)))
                continue
            base = random_query(rng, num_columns)
            probe = tighten(rng, base, num_columns)
            value = cache.get(probe)
            if cache.last_hit_kind == "semantic_hit":
                semantic_served += 1
                superset, cached = cache.last_semantic_match
                assert subsumes(superset, probe)
                assert 0.0 <= value <= cached
        assert semantic_served > 0, "cache never served semantically"

    def test_interpolation_off_serves_cached_value_verbatim(self):
        cache = SemanticEstimateCache(capacity=8, interpolate=False)
        cache.put(Query((Predicate(0, 0.0, 10.0),)), 400.0)
        got = cache.get(Query((Predicate(0, 2.0, 4.0),)))
        assert got == 400.0
        assert cache.last_hit_kind == "semantic_hit"


# ----------------------------------------------------------------------
# Cache bookkeeping under the semantic path
# ----------------------------------------------------------------------

class TestSemanticCacheBookkeeping:
    def test_generation_bump_invalidates_semantic_answers(self):
        cache = SemanticEstimateCache(capacity=8)
        cache.put(Query((Predicate(0, 0.0, 10.0),)), 100.0)
        sub = Query((Predicate(0, 2.0, 4.0),))
        assert cache.get(sub) is not None
        cache.bump_generation()
        assert cache.get(sub) is None
        assert cache.last_hit_kind is None

    def test_hit_rate_counts_semantic_hits(self):
        cache = SemanticEstimateCache(capacity=8)
        cache.put(Query((Predicate(0, 0.0, 10.0),)), 100.0)
        cache.get(Query((Predicate(0, 1.0, 2.0),)))  # semantic
        cache.get(Query((Predicate(1, 0.0, 1.0),)))  # miss
        assert cache.semantic_hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_scan_limit_bounds_the_search(self):
        cache = SemanticEstimateCache(capacity=64, scan_limit=1)
        # Oldest entry is the only superset; the newest 1 scanned entry
        # is unrelated, so the scan must give up.
        cache.put(Query((Predicate(0, 0.0, 10.0),)), 100.0)
        for i in range(5):
            cache.put(Query((Predicate(1, float(i), float(i)),)), 1.0)
        assert cache.get(Query((Predicate(0, 2.0, 4.0),))) is None

    def test_exact_hit_short_circuits_scan(self):
        cache = SemanticEstimateCache(capacity=8)
        q = Query((Predicate(0, 0.0, 10.0),))
        cache.put(q, 123.0)
        assert cache.get(q) == 123.0
        assert cache.last_hit_kind == "hit"
        assert cache.semantic_hits == 0
