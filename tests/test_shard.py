"""Tests for the sharded serving tier (repro.shard)."""

import multiprocessing

import numpy as np
import pytest

from repro.core import CardinalityEstimator, Predicate, Query
from repro.faults import NaNFault, WorkerCrashFault, WorkerHangFault
from repro.lifecycle.retrain import RetryPolicy
from repro.registry import make_shard_service
from repro.shard import (
    AdmissionConfig,
    AdmissionController,
    HashRing,
    ShardRequest,
    ShardRouter,
    WorkerSupervisor,
    routing_key,
    stable_hash,
)
from repro.shard.supervisor import EXHAUSTED, LIVE, RESTARTING, STOPPED

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK_AVAILABLE, reason="no fork on platform")


class ConstantEstimator(CardinalityEstimator):
    """Answers a constant; fit is free."""

    def __init__(self, value: float = 5.0, name: str = "constant") -> None:
        super().__init__()
        self.value = value
        self.name = name

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return self.value


class FlakyEstimator(ConstantEstimator):
    """Raises on every estimate until ``heal()`` is called."""

    def __init__(self) -> None:
        super().__init__(name="flaky")
        self.broken = True

    def estimate_many(self, queries) -> np.ndarray:
        if self.broken:
            raise RuntimeError("flaky worker model")
        return super().estimate_many(queries)

    def heal(self) -> None:
        self.broken = False


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def distinct_queries(n: int) -> list[Query]:
    return [Query((Predicate(0, float(i % 6), float(i % 6) + 0.5 + i),)) for i in range(n)]


@pytest.fixture
def requests() -> list[ShardRequest]:
    return [ShardRequest(query=q) for q in distinct_queries(12)]


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # blake2b, not the salted builtin: these values must never move.
        assert stable_hash("shard-0#0") == stable_hash("shard-0#0")
        assert stable_hash("a") != stable_hash("b")

    def test_routing_is_deterministic(self):
        ring = HashRing(["s0", "s1", "s2"])
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.node_for(k) for k in keys]
        second = [ring.node_for(k) for k in keys]
        assert first == second
        assert set(first) == {"s0", "s1", "s2"}  # all shards get traffic

    def test_adding_a_node_remaps_a_minority(self):
        ring = HashRing(["s0", "s1", "s2"], replicas=128)
        keys = [f"key-{i}" for i in range(1000)]
        before = [ring.node_for(k) for k in keys]
        ring.add_node("s3")
        after = [ring.node_for(k) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        # Consistent hashing: ~1/4 of keys move, nowhere near all.
        assert 0 < moved < len(keys) // 2
        # Every moved key landed on the new node (never shuffled
        # between old nodes).
        assert all(a == "s3" for b, a in zip(before, after) if b != a)

    def test_removing_a_node_reassigns_only_its_keys(self):
        ring = HashRing(["s0", "s1", "s2"], replicas=128)
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove_node("s2")
        for k in keys:
            if before[k] != "s2":
                assert ring.node_for(k) == before[k]
            else:
                assert ring.node_for(k) in {"s0", "s1"}

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError, match="already"):
            ring.add_node("s0")
        with pytest.raises(KeyError, match="not on the ring"):
            ring.remove_node("s9")
        with pytest.raises(RuntimeError, match="no nodes"):
            HashRing([]).node_for("k")

    def test_routing_key_separates_tenants(self):
        query = distinct_queries(1)[0]
        a = routing_key(ShardRequest(query=query, tenant="a"))
        b = routing_key(ShardRequest(query=query, tenant="b"))
        assert a != b


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_everything_admitted_without_pressure(self, requests):
        controller = AdmissionController(AdmissionConfig(queue_capacity=100))
        decision = controller.admit(requests)
        assert decision.admitted == tuple(range(len(requests)))
        assert decision.shed == ()

    def test_capacity_sheds_lowest_priority_first(self):
        queries = distinct_queries(6)
        requests = [
            ShardRequest(query=q, priority=i % 2)  # odd indices: priority 1
            for i, q in enumerate(queries)
        ]
        controller = AdmissionController(AdmissionConfig(queue_capacity=3))
        decision = controller.admit(requests)
        assert decision.admitted == (1, 3, 5)  # the high-priority half
        assert all(reason == "capacity" for _, reason in decision.shed)

    def test_admitted_preserved_in_arrival_order(self):
        queries = distinct_queries(5)
        requests = [
            ShardRequest(query=q, priority=p)
            for q, p in zip(queries, [0, 2, 1, 2, 0])
        ]
        controller = AdmissionController(AdmissionConfig(queue_capacity=5))
        assert controller.admit(requests).admitted == (0, 1, 2, 3, 4)

    def test_tenant_quota_contains_noisy_tenant(self):
        queries = distinct_queries(8)
        requests = [
            ShardRequest(query=q, tenant="noisy" if i < 6 else "quiet")
            for i, q in enumerate(queries)
        ]
        controller = AdmissionController(
            AdmissionConfig(queue_capacity=8, tenant_quota=2)
        )
        decision = controller.admit(requests)
        assert decision.admitted == (0, 1, 6, 7)
        assert decision.shed_reasons == {"quota": 4}

    def test_deadline_sheds_requests_that_cannot_make_it(self):
        controller = AdmissionController(AdmissionConfig(queue_capacity=100))
        # 10ms per query observed -> position 5 predicts 50ms wait.
        controller.observe_service(queries=10, seconds=0.1)
        queries = distinct_queries(10)
        requests = [ShardRequest(query=q, deadline_ms=35.0) for q in queries]
        decision = controller.admit(requests)
        # Positions 0..3 predict <= 30ms and make it; the rest shed now
        # rather than queue to fail.
        assert decision.admitted == (0, 1, 2, 3)
        assert all(reason == "deadline" for _, reason in decision.shed)

    def test_service_time_ewma_converges(self):
        controller = AdmissionController(
            AdmissionConfig(service_time_alpha=0.5)
        )
        assert controller.predicted_wait_ms(10) == 0.0  # no signal yet
        controller.observe_service(100, 1.0)   # 10ms/query
        controller.observe_service(100, 2.0)   # 20ms/query
        assert controller.service_seconds_per_query == pytest.approx(0.015)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            AdmissionConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="tenant_quota"):
            AdmissionConfig(tenant_quota=0)
        with pytest.raises(ValueError, match="service_time_alpha"):
            AdmissionConfig(service_time_alpha=0.0)


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
class TestSupervisorInline:
    """Supervisor semantics testable without forking (mode='inline')."""

    def make(self, estimator, tiny_table, **kwargs):
        estimator.fit(tiny_table)
        clock = FakeClock()
        supervisor = WorkerSupervisor(
            "s0",
            estimator,
            kwargs.pop("num_workers", 2),
            mode="inline",
            policy=kwargs.pop(
                "policy",
                RetryPolicy(
                    max_attempts=2,
                    backoff_base_seconds=1.0,
                    backoff_cap_seconds=8.0,
                    jitter=0.0,
                ),
            ),
            clock=clock,
            **kwargs,
        )
        supervisor.start()
        return supervisor, clock

    def test_dispatch_answers(self, tiny_table):
        supervisor, _ = self.make(ConstantEstimator(4.0), tiny_table)
        result = supervisor.dispatch(distinct_queries(3))
        assert result.values is not None
        np.testing.assert_array_equal(result.values, [4.0] * 3)
        assert result.attempts == 1
        assert result.worker == "s0/w0"

    def test_round_robin_between_workers(self, tiny_table):
        supervisor, _ = self.make(ConstantEstimator(), tiny_table)
        workers = {supervisor.dispatch(distinct_queries(1)).worker for _ in range(4)}
        assert workers == {"s0/w0", "s0/w1"}

    def test_failures_consume_budget_then_exhaust(self, tiny_table):
        supervisor, clock = self.make(FlakyEstimator(), tiny_table)
        queries = distinct_queries(2)
        # Both workers fail and enter backoff; dispatch degrades to None.
        assert supervisor.dispatch(queries).values is None
        assert supervisor.live_count == 0
        assert not supervisor.exhausted
        # Backoff not elapsed: still nobody to restart.
        assert supervisor.dispatch(queries).values is None
        clock.advance(10.0)
        assert supervisor.dispatch(queries).values is None  # attempt 2 fails
        clock.advance(10.0)
        assert supervisor.dispatch(queries).values is None  # budget spent
        assert supervisor.exhausted
        assert supervisor.total_restarts == 4  # 2 restarts x 2 workers

    def test_worker_recovers_after_restart(self, tiny_table):
        flaky = FlakyEstimator()
        supervisor, clock = self.make(flaky, tiny_table, num_workers=1)
        assert supervisor.dispatch(distinct_queries(1)).values is None
        flaky.heal()
        clock.advance(2.0)  # past backoff: restart_due reforks
        result = supervisor.dispatch(distinct_queries(1))
        assert result.values is not None
        assert supervisor.live_count == 1
        assert supervisor.worker_states() == {"s0/w0": LIVE}

    def test_restart_waits_out_backoff(self, tiny_table):
        flaky = FlakyEstimator()
        supervisor, clock = self.make(flaky, tiny_table, num_workers=1)
        supervisor.dispatch(distinct_queries(1))
        flaky.heal()
        assert supervisor.restart_due() == 0  # backoff (1s) not elapsed
        clock.advance(0.5)
        assert supervisor.restart_due() == 0
        clock.advance(0.6)
        assert supervisor.restart_due() == 1

    def test_drain_marks_stopped(self, tiny_table):
        supervisor, _ = self.make(ConstantEstimator(), tiny_table)
        supervisor.drain()
        assert supervisor.worker_states() == {
            "s0/w0": STOPPED,
            "s0/w1": STOPPED,
        }

    def test_validation(self, tiny_table):
        estimator = ConstantEstimator().fit(tiny_table)
        with pytest.raises(ValueError, match="num_workers"):
            WorkerSupervisor("s0", estimator, 0)
        with pytest.raises(ValueError, match="mode"):
            WorkerSupervisor("s0", estimator, 1, mode="threads")
        with pytest.raises(ValueError, match="timeouts"):
            WorkerSupervisor("s0", estimator, 1, request_timeout_seconds=0.0)


@needs_fork
class TestSupervisorFork:
    """Real forked workers: crashes, hangs, heartbeats, drain."""

    def make(self, estimator, table, **kwargs):
        estimator.fit(table)
        supervisor = WorkerSupervisor(
            "s0",
            estimator,
            kwargs.pop("num_workers", 2),
            mode="fork",
            policy=kwargs.pop(
                "policy",
                RetryPolicy(
                    max_attempts=2,
                    backoff_base_seconds=0.01,
                    backoff_cap_seconds=0.05,
                ),
            ),
            **kwargs,
        )
        supervisor.start()
        return supervisor

    def test_fork_inherits_model_and_answers(self, tiny_table):
        supervisor = self.make(ConstantEstimator(6.0), tiny_table)
        try:
            result = supervisor.dispatch(distinct_queries(4))
            np.testing.assert_array_equal(result.values, [6.0] * 4)
        finally:
            supervisor.drain()

    def test_crash_redispatches_to_sibling(self, tiny_table):
        # Worker faults crash the first estimate; the schedule is forked
        # into both workers, but `after=1` means each worker answers its
        # first call — so w0 crashes on its second batch and the sibling
        # (still on call #1... also past `after` now) would too.  Use a
        # crash-only-first-call wrapper: after=0 crashes call 1 of each
        # worker, so the batch fails on w0 AND w1, then falls through.
        crash = WorkerCrashFault(
            ConstantEstimator(3.0), probability=1.0, after=1
        )
        supervisor = self.make(crash, tiny_table)
        try:
            first = supervisor.dispatch(distinct_queries(1))
            assert first.values is not None  # call 1 on w0: clean
            second = supervisor.dispatch(distinct_queries(1))
            # w1's first call is also clean: redispatch saves the batch.
            assert second.values is not None
            third = supervisor.dispatch(distinct_queries(1))
            # Both workers are now past `after`: they die; batch degrades.
            assert third.values is None
            assert supervisor.live_count == 0
        finally:
            supervisor.drain()

    def test_hang_is_killed_and_restarted(self, tiny_table):
        hang = WorkerHangFault(
            ConstantEstimator(2.0), hang_seconds=5.0, probability=1.0
        )
        supervisor = self.make(
            hang, tiny_table, num_workers=1, request_timeout_seconds=0.2
        )
        try:
            result = supervisor.dispatch(distinct_queries(1))
            assert result.values is None  # timed out, killed
            assert supervisor.worker_states()["s0/w0"] == RESTARTING
            assert supervisor.total_restarts == 1
        finally:
            supervisor.drain()

    def test_heartbeat_reaps_dead_worker(self, tiny_table):
        supervisor = self.make(ConstantEstimator(), tiny_table, num_workers=1)
        try:
            worker = supervisor._workers[0]
            worker.process.kill()
            worker.process.join()
            supervisor.check_health()
            assert supervisor.worker_states()["s0/w0"] in (
                RESTARTING,
                LIVE,  # restart may already have fired (tiny backoff)
            )
        finally:
            supervisor.drain()

    def test_heartbeat_passes_on_healthy_pool(self, tiny_table):
        supervisor = self.make(ConstantEstimator(), tiny_table)
        try:
            supervisor.check_health()
            assert supervisor.live_count == 2
        finally:
            supervisor.drain()

    def test_drain_stops_processes(self, tiny_table):
        supervisor = self.make(ConstantEstimator(), tiny_table)
        processes = [w.process for w in supervisor._workers]
        supervisor.drain()
        assert all(not p.is_alive() for p in processes)
        assert set(supervisor.worker_states().values()) == {STOPPED}

    def test_worker_error_keeps_worker_alive(self, tiny_table):
        supervisor = self.make(FlakyEstimator(), tiny_table, num_workers=1)
        try:
            result = supervisor.dispatch(distinct_queries(1))
            # The estimator raised inside the worker; the error came
            # back as data, the process survived.
            assert result.values is None
            assert supervisor.worker_states()["s0/w0"] == LIVE
        finally:
            supervisor.drain()


# ----------------------------------------------------------------------
# Shard + router
# ----------------------------------------------------------------------
class TestShardRouter:
    def router(self, tiny_table, estimator=None, **kwargs):
        primary = (estimator or ConstantEstimator(4.0)).fit(tiny_table)
        kwargs.setdefault("mode", "inline")
        kwargs.setdefault("num_shards", 2)
        return ShardRouter(
            primary, [ConstantEstimator(1.0, name="fallback").fit(tiny_table)], **kwargs
        )

    def test_serve_preserves_input_order(self, tiny_table, requests):
        with self.router(tiny_table) as router:
            served = router.serve_batch(requests)
        assert len(served) == len(requests)
        assert [s.estimate for s in served] == [4.0] * len(requests)

    def test_routing_is_stable(self, tiny_table, requests):
        with self.router(tiny_table) as router:
            first = [router.route(r) for r in requests]
            second = [router.route(r) for r in requests]
        assert first == second

    def test_worker_error_degrades_to_fallback_chain(self, tiny_table, requests):
        with self.router(tiny_table, estimator=FlakyEstimator()) as router:
            served = router.serve_batch(requests)
        # Primary raises everywhere; the in-process chain's next tier
        # answers (value 1.0), nobody is dropped.
        assert [s.estimate for s in served] == [1.0] * len(requests)
        totals = router.totals()
        assert totals.fallback_served == len(requests)

    def test_nan_worker_values_reserved_cleanly(self, tiny_table, requests):
        nan = NaNFault(ConstantEstimator(9.0), probability=1.0)
        primary = ConstantEstimator(4.0).fit(tiny_table)
        nan.fit(tiny_table)
        router = ShardRouter(
            primary,
            [ConstantEstimator(1.0, name="fallback").fit(tiny_table)],
            num_shards=2,
            mode="inline",
            worker_estimator=nan,
        )
        with router:
            served = router.serve_batch(requests)
        # Worker answers are all NaN; the parent's clean primary
        # re-serves every query.
        assert [s.estimate for s in served] == [4.0] * len(requests)
        assert router.totals().fallback_served == len(requests)

    def test_shed_requests_get_heuristic_answers(self, tiny_table):
        queries = distinct_queries(8)
        requests = [ShardRequest(query=q, priority=i % 2) for i, q in enumerate(queries)]
        with self.router(
            tiny_table,
            num_shards=1,
            admission=AdmissionConfig(queue_capacity=4),
        ) as router:
            served = router.serve_batch(requests)
        shed = [s for s in served if s.tier == "shed:heuristic"]
        assert len(shed) == 4
        assert all(s.degraded for s in shed)
        assert all(np.isfinite(s.estimate) for s in served)
        assert router.totals().shed == 4

    def test_exhausted_pool_flips_to_fallback_mode(self, tiny_table, requests):
        router = self.router(
            tiny_table,
            estimator=FlakyEstimator(),
            num_shards=1,
            policy=RetryPolicy(
                max_attempts=1,
                backoff_base_seconds=0.0,
                backoff_cap_seconds=0.0,
                jitter=0.0,
            ),
        )
        with router:
            for _ in range(4):
                served = router.serve_batch(requests)
                assert len(served) == len(requests)
            shard = router.shards["shard-0"]
            assert shard.supervisor.exhausted
            assert shard.fallback_mode

    @needs_fork
    def test_fork_matches_inline_bit_for_bit(self, small_census, census_workloads):
        from repro.estimators.traditional import SamplingEstimator
        from repro.serve import HeuristicConstantEstimator

        primary = SamplingEstimator().fit(small_census)
        heuristic = HeuristicConstantEstimator().fit(small_census)
        _, test = census_workloads
        requests = [ShardRequest(query=q) for q in test.queries]
        with ShardRouter(
            primary, [heuristic], num_shards=3, workers_per_shard=2, mode="fork"
        ) as forked:
            fork_answers = [s.estimate for s in forked.serve_batch(requests)]
        with ShardRouter(primary, [heuristic], num_shards=1, mode="inline") as ref:
            inline_answers = [s.estimate for s in ref.serve_batch(requests)]
        assert fork_answers == inline_answers

    def test_rolling_swap_promotes_and_bumps_generations(self, tiny_table, requests):
        with self.router(tiny_table, cache_capacity=16) as router:
            router.serve_batch(requests)
            generations = [
                s.fallback_service.model_generation
                for s in router.shards.values()
            ]
            candidate = ConstantEstimator(8.0, name="candidate").fit(tiny_table)
            report = router.rolling_swap(
                candidate, probe_queries=[r.query for r in requests[:2]]
            )
            assert report.promoted
            assert report.swapped == ("shard-0", "shard-1")
            assert router.estimator is candidate
            for shard, generation in zip(router.shards.values(), generations):
                assert shard.fallback_service.model_generation == generation + 1
            served = router.serve_batch(requests)
        assert [s.estimate for s in served] == [8.0] * len(requests)

    def test_rolling_swap_probe_failure_rolls_back(self, tiny_table, requests):
        incumbent = ConstantEstimator(4.0)
        with self.router(tiny_table, estimator=incumbent) as router:
            bad = NaNFault(ConstantEstimator(9.0), probability=1.0)
            bad.fit(tiny_table)
            report = router.rolling_swap(
                bad, probe_queries=[r.query for r in requests[:2]]
            )
            assert not report.promoted
            assert report.rolled_back
            assert router.estimator is incumbent
            served = router.serve_batch(requests)
        assert [s.estimate for s in served] == [4.0] * len(requests)

    def test_rolling_swap_gate_rejection_touches_no_shard(self, tiny_table, requests):
        from repro.lifecycle.gate import PromotionGate

        with self.router(tiny_table) as router:
            bad = NaNFault(ConstantEstimator(9.0), probability=1.0)
            bad.fit(tiny_table)
            gate = PromotionGate([r.query for r in requests[:4]])
            report = router.rolling_swap(bad, gate=gate)
            assert not report.promoted
            assert not report.rolled_back
            assert report.swapped == ()
            assert report.gate_report is not None
            assert not report.gate_report.passed
            served = router.serve_batch(requests)
        assert [s.estimate for s in served] == [4.0] * len(requests)

    def test_make_shard_service_builds_fitted_router(self, small_census):
        router = make_shard_service(
            "sampling", small_census, num_shards=2, mode="inline"
        )
        queries = distinct_queries(6)
        with router:
            served = router.serve_queries(queries)
        assert len(served) == 6
        assert all(np.isfinite(s.estimate) for s in served)

    def test_make_shard_service_typo_hint(self, small_census):
        with pytest.raises(KeyError, match="did you mean 'sampling'"):
            make_shard_service("samplng", small_census)

    def test_availability_accounting_under_mixed_chaos(self, tiny_table):
        """Every request gets a finite answer even with faults + shed."""
        queries = distinct_queries(30)
        requests = [
            ShardRequest(query=q, tenant=f"t{i % 3}", priority=i % 2)
            for i, q in enumerate(queries)
        ]
        nan = NaNFault(ConstantEstimator(2.0), probability=0.5, seed=1)
        nan.fit(tiny_table)
        router = self.router(
            tiny_table,
            worker_estimator=nan,
            admission=AdmissionConfig(queue_capacity=10, tenant_quota=5),
        )
        with router:
            served = router.serve_batch(requests)
        assert len(served) == len(requests)
        assert all(
            np.isfinite(s.estimate) and 0.0 <= s.estimate <= tiny_table.num_rows
            for s in served
        )


@needs_fork
class TestForkTelemetry:
    """Cross-process telemetry through real forked workers."""

    def test_counter_sum_matches_and_worker_spans_reparent(self, tiny_table):
        from repro.obs import (
            WORKER_QUERIES,
            EventLog,
            MetricsRegistry,
            SpanCollector,
            install_collector,
            uninstall_collector,
        )

        registry, events = MetricsRegistry(), EventLog()
        collector = install_collector(SpanCollector())
        try:
            estimator = ConstantEstimator(3.0).fit(tiny_table)
            fallback = ConstantEstimator(1.0).fit(tiny_table)
            router = ShardRouter(
                estimator,
                [fallback],
                num_shards=2,
                workers_per_shard=2,
                mode="fork",
                registry=registry,
                events=events,
            )
            with router:
                for _ in range(3):
                    router.serve_batch(
                        [ShardRequest(query=q) for q in distinct_queries(12)]
                    )
                totals = router.totals()

            # every query a worker answered arrived with a counter delta
            # riding the same reply: the merged per-worker sum is exact
            merged = sum(
                series["value"]
                for series in registry.counter(WORKER_QUERIES).snapshot()[
                    "series"
                ]
            )
            assert totals.worker_answered > 0
            assert int(merged) == totals.worker_answered

            spans = collector.spans()
            worker_spans = [s for s in spans if "worker_pid" in s.attrs]
            assert worker_spans, "no worker spans survived the merge"
            assert all(s.attrs.get("shard") for s in worker_spans)
            batch_ids = {s.span_id for s in spans if s.name == "serve.batch"}
            assert any(s.parent_id in batch_ids for s in worker_spans)
        finally:
            uninstall_collector()
