"""Tests for per-column statistics (equi-depth histograms, MCVs)."""

import numpy as np
import pytest

from repro.core import Predicate
from repro.estimators.traditional.histograms import (
    ColumnStatistics,
    EquiDepthHistogram,
    McvList,
)


class TestEquiDepthHistogram:
    def test_full_range_fraction_is_one(self, rng):
        values = rng.normal(size=2000)
        hist = EquiDepthHistogram(values, 50)
        assert hist.range_fraction(None, None) == pytest.approx(1.0)

    def test_half_range_uniform_data(self, rng):
        values = rng.uniform(0, 100, size=50_000)
        hist = EquiDepthHistogram(values, 100)
        assert hist.range_fraction(0.0, 50.0) == pytest.approx(0.5, abs=0.02)

    def test_empty_range(self, rng):
        hist = EquiDepthHistogram(rng.normal(size=100), 10)
        assert hist.range_fraction(5.0, 1.0) == 0.0

    def test_out_of_domain_range(self, rng):
        hist = EquiDepthHistogram(rng.uniform(0, 1, 100), 10)
        assert hist.range_fraction(5.0, 9.0) == 0.0

    def test_equality_on_heavy_hitter(self):
        values = np.concatenate([np.zeros(800), np.arange(1, 201)])
        hist = EquiDepthHistogram(values, 50)
        frac = hist.equality_fraction(0.0)
        assert frac == pytest.approx(0.8, abs=0.05)

    def test_equality_outside_domain(self, rng):
        hist = EquiDepthHistogram(rng.uniform(0, 1, 100), 10)
        assert hist.equality_fraction(5.0) == 0.0

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram(np.array([]), 10)

    def test_more_buckets_than_values(self):
        hist = EquiDepthHistogram(np.array([1.0, 2.0, 3.0]), 100)
        assert hist.num_buckets <= 3


class TestMcvList:
    def test_top_values_kept(self):
        values = np.concatenate([np.zeros(500), np.ones(300), np.arange(2, 202)])
        mcvs = McvList(values, limit=2)
        assert set(mcvs.values) == {0.0, 1.0}
        assert mcvs.equality_fraction(0.0) == pytest.approx(0.5)
        assert mcvs.equality_fraction(1.0) == pytest.approx(0.3)

    def test_misses_return_none(self):
        values = np.concatenate([np.zeros(500), np.arange(1, 101)])
        mcvs = McvList(values, limit=5)
        assert mcvs.equality_fraction(57.0) is None

    def test_only_genuinely_common_values(self, rng):
        """Uniform data has no value above average frequency."""
        values = np.arange(1000, dtype=float)
        mcvs = McvList(values, limit=100)
        assert len(mcvs) == 0

    def test_range_fraction(self):
        values = np.concatenate([np.zeros(400), np.full(400, 10.0), np.arange(20, 220)])
        mcvs = McvList(values, limit=5)
        assert mcvs.range_fraction(0.0, 10.0) == pytest.approx(0.8)
        assert mcvs.range_fraction(5.0, None) == pytest.approx(0.4)


class TestColumnStatistics:
    def test_equality_selectivity_mcv(self):
        values = np.concatenate([np.zeros(900), np.arange(1, 101)])
        stats = ColumnStatistics(values, num_buckets=20)
        assert stats.selectivity(Predicate(0, 0.0, 0.0)) == pytest.approx(0.9)

    def test_equality_selectivity_non_mcv(self):
        values = np.concatenate([np.zeros(900), np.arange(1, 101)])
        stats = ColumnStatistics(values, num_buckets=20)
        sel = stats.selectivity(Predicate(0, 42.0, 42.0))
        # Uniform over the ~100 non-MCV distinct values of the leftover mass.
        assert sel == pytest.approx(0.1 / 100, rel=0.2)

    def test_range_selectivity_accuracy(self, rng):
        values = rng.exponential(scale=10, size=20_000)
        stats = ColumnStatistics(values, num_buckets=100)
        truth = np.mean((values >= 5) & (values <= 15))
        est = stats.selectivity(Predicate(0, 5.0, 15.0))
        assert est == pytest.approx(truth, abs=0.02)

    def test_empty_predicate(self, rng):
        stats = ColumnStatistics(rng.normal(size=100), num_buckets=10)
        assert stats.selectivity(Predicate(0, 9.0, 1.0)) == 0.0

    def test_open_ranges(self, rng):
        values = rng.uniform(0, 1, size=10_000)
        stats = ColumnStatistics(values, num_buckets=50)
        assert stats.selectivity(Predicate(0, None, 0.25)) == pytest.approx(
            0.25, abs=0.02
        )
        assert stats.selectivity(Predicate(0, 0.75, None)) == pytest.approx(
            0.25, abs=0.02
        )
