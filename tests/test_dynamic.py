"""Tests for the dynamic-environment simulator and device model."""

import numpy as np
import pytest

from repro.core import generate_workload
from repro.datasets import apply_update
from repro.dynamic import (
    CPU,
    GPU,
    Device,
    label_update_workload,
    measure_update,
    mix_for_horizon,
    run_dynamic,
)
from repro.estimators.learned import DeepDbEstimator, LwXgbEstimator, NaruEstimator
from repro.estimators.traditional import PostgresEstimator


@pytest.fixture(scope="module")
def update_setting(small_synthetic):
    rng = np.random.default_rng(5)
    new_table, appended = apply_update(small_synthetic, rng)
    test = generate_workload(new_table, 100, rng)
    return new_table, appended, test


class TestDevice:
    def test_cpu_identity(self):
        assert CPU.model_seconds("naru", 10.0) == 10.0

    def test_gpu_speedups(self):
        assert GPU.model_seconds("naru", 8.0) == 1.0
        assert GPU.model_seconds("lw-nn", 15.0) == 1.0
        # MSCN is *slower* on GPU for small models (paper Section 4.3).
        assert GPU.model_seconds("mscn", 1.0) > 1.0

    def test_unknown_method_unchanged(self):
        assert GPU.model_seconds("postgres", 3.0) == 3.0

    def test_custom_device(self):
        dev = Device("tpu", {"naru": 100.0})
        assert dev.model_seconds("naru", 50.0) == 0.5


class TestLabelUpdateWorkload:
    def test_data_driven_gets_none(self, small_synthetic, update_setting, rng):
        new_table, _, _ = update_setting
        est = DeepDbEstimator().fit(small_synthetic)
        workload, seconds = label_update_workload(est, new_table, 50, rng)
        assert workload is None
        assert seconds == 0.0

    def test_query_driven_gets_labelled_queries(
        self, small_synthetic, synthetic_workloads, update_setting, rng
    ):
        train, _ = synthetic_workloads
        new_table, _, _ = update_setting
        est = LwXgbEstimator(num_trees=8).fit(small_synthetic, train)
        workload, seconds = label_update_workload(est, new_table, 50, rng)
        assert workload is not None
        assert len(workload) == 50
        assert seconds > 0.0
        # Labels are sample-scaled approximations of the new table.
        assert (workload.cardinalities >= 0).all()


class TestMeasureAndMix:
    @pytest.fixture(scope="class")
    def measurement(self, small_synthetic, update_setting):
        new_table, appended, test = update_setting
        est = DeepDbEstimator().fit(small_synthetic)
        rng = np.random.default_rng(6)
        return measure_update(est, new_table, appended, test, rng, 50)

    def test_measurement_fields(self, measurement):
        assert measurement.method == "deepdb"
        assert measurement.model_seconds > 0.0
        assert len(measurement.stale_qerrors) == len(measurement.updated_qerrors)

    def test_long_horizon_uses_updated_model(self, measurement):
        res = mix_for_horizon(measurement, horizon_seconds=1e9)
        assert res.finished
        assert res.stale_fraction < 0.01
        np.testing.assert_allclose(
            np.sort(res.dynamic_qerrors), np.sort(measurement.updated_qerrors)
        )

    def test_short_horizon_stale_only(self, measurement):
        res = mix_for_horizon(measurement, horizon_seconds=1e-9)
        assert not res.finished
        assert res.stale_fraction == 1.0
        np.testing.assert_array_equal(
            res.dynamic_qerrors, measurement.stale_qerrors
        )

    def test_intermediate_horizon_mixes(self, measurement):
        horizon = measurement.effective_update_seconds() * 2
        res = mix_for_horizon(measurement, horizon)
        assert res.finished
        assert 0.0 < res.stale_fraction < 1.0

    def test_gpu_reduces_stale_fraction_for_naru(
        self, small_synthetic, update_setting
    ):
        new_table, appended, test = update_setting
        est = NaruEstimator(epochs=2, update_epochs=1, num_samples=32)
        est.fit(small_synthetic)
        rng = np.random.default_rng(8)
        meas = measure_update(est, new_table, appended, test, rng, 50)
        horizon = meas.effective_update_seconds(CPU) * 1.5
        cpu_res = mix_for_horizon(meas, horizon, CPU)
        gpu_res = mix_for_horizon(meas, horizon, GPU)
        assert gpu_res.stale_fraction < cpu_res.stale_fraction

    def test_invalid_horizon(self, measurement):
        with pytest.raises(ValueError):
            mix_for_horizon(measurement, 0.0)


class TestRunDynamic:
    def test_stale_model_errs_after_correlated_append(
        self, small_synthetic, update_setting
    ):
        """The sorted-copy append changes correlation: the stale model's
        p99 should exceed the updated model's."""
        new_table, appended, test = update_setting
        est = PostgresEstimator().fit(small_synthetic)
        rng = np.random.default_rng(9)
        meas = measure_update(est, new_table, appended, test, rng, 50)
        assert meas.stale_p99 >= meas.updated_p99

    def test_run_dynamic_end_to_end(self, small_synthetic, update_setting):
        new_table, appended, test = update_setting
        est = DeepDbEstimator().fit(small_synthetic)
        rng = np.random.default_rng(10)
        res = run_dynamic(
            est, new_table, appended, test, horizon_seconds=60.0, rng=rng,
            update_query_count=50,
        )
        assert res.finished
        assert res.p99 >= 1.0
