"""Tests for the neural substrate: numeric gradient checks, masks, Adam."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    MaskedLinear,
    ReLU,
    ResMade,
    SGD,
    Sequential,
    mse_loss,
    qerror_loss,
    softmax,
    softmax_cross_entropy,
)


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_gradient_check_weight(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        diff = layer.forward(x) - target
        layer.backward(2 * diff)
        numeric = numeric_gradient(loss, layer.weight.value)
        np.testing.assert_allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_gradient_check_input(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 2))
        diff = layer.forward(x) - target
        grad_in = layer.backward(2 * diff)

        def loss():
            return float(np.sum((layer.forward(x) - target) ** 2))

        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-5)


class TestMaskedLinear:
    def test_mask_zeroes_connections(self, rng):
        mask = np.array([[1.0, 0.0], [0.0, 1.0]])
        layer = MaskedLinear(2, 2, mask, rng)
        x = np.array([[1.0, 0.0]])
        out = layer.forward(x)
        # Second output must not see the first input.
        assert out[0, 1] == pytest.approx(layer.bias.value[1])

    def test_masked_weights_never_update(self, rng):
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        layer = MaskedLinear(2, 2, mask, rng)
        opt = SGD(layer.parameters(), 0.1)
        for _ in range(3):
            out = layer.forward(np.ones((4, 2)))
            layer.zero_grad()
            layer.backward(np.ones_like(out))
            opt.step()
        assert layer.weight.value[0, 1] * mask[0, 1] == 0.0
        assert (layer.weight.grad * (1 - mask) == 0.0).all()

    def test_mask_shape_validated(self, rng):
        with pytest.raises(ValueError):
            MaskedLinear(2, 3, np.ones((2, 2)), rng)


class TestSequentialAndReLU:
    def test_relu(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_mlp_gradient_check(self, rng):
        model = Sequential(Linear(3, 5, rng), ReLU(), Linear(5, 1, rng))
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(6, 1))

        def loss():
            return float(np.sum((model.forward(x) - y) ** 2))

        model.zero_grad()
        model.backward(2 * (model.forward(x) - y))
        for p in model.parameters():
            numeric = numeric_gradient(loss, p.value)
            np.testing.assert_allclose(p.grad, numeric, atol=1e-4)

    def test_mlp_learns_linear_function(self, rng):
        model = Sequential(Linear(2, 16, rng), ReLU(), Linear(16, 1, rng))
        opt = Adam(model.parameters(), 1e-2)
        x = rng.normal(size=(256, 2))
        y = (2 * x[:, :1] - 3 * x[:, 1:]) + 1.0
        for _ in range(500):
            pred = model.forward(x)
            loss, grad = mse_loss(pred, y)
            model.zero_grad()
            model.backward(grad)
            opt.step()
        assert loss < 0.05


class TestLosses:
    def test_mse_gradient(self, rng):
        pred = rng.normal(size=10)
        target = rng.normal(size=10)
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(np.mean((pred - target) ** 2))
        np.testing.assert_allclose(grad, 2 * (pred - target) / 10)

    def test_qerror_loss_at_truth(self):
        loss, grad = qerror_loss(np.array([3.0]), np.array([3.0]))
        assert loss == pytest.approx(1.0)
        np.testing.assert_array_equal(grad, [0.0])

    def test_qerror_loss_value(self):
        # est = e^2, act = e^0 -> qerror = e^2
        loss, _ = qerror_loss(np.array([2.0]), np.array([0.0]))
        assert loss == pytest.approx(np.exp(2.0))

    def test_qerror_loss_clipped(self):
        loss, grad = qerror_loss(np.array([100.0]), np.array([0.0]), clip=5.0)
        assert loss == pytest.approx(np.exp(5.0))
        assert np.isfinite(grad).all()

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(4, 7)) * 50)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))
        assert (probs >= 0).all()

    def test_cross_entropy_gradient_check(self, rng):
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 3])

        def loss():
            return softmax_cross_entropy(logits, targets)[0]

        _, grad = softmax_cross_entropy(logits, targets)
        numeric = numeric_gradient(loss, logits)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)


class TestOptimizers:
    def test_adam_converges_on_quadratic(self, rng):
        layer = Linear(1, 1, rng)
        opt = Adam(layer.parameters(), 0.05)
        x = np.array([[1.0]])
        for _ in range(200):
            out = layer.forward(x)
            layer.zero_grad()
            layer.backward(2 * (out - 7.0))
            opt.step()
        assert layer.forward(x)[0, 0] == pytest.approx(7.0, abs=1e-2)

    def test_learning_rate_validated(self, rng):
        layer = Linear(1, 1, rng)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), 0.0)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), -1.0)

    def _train_steps(self, layer, opt, steps):
        x = np.array([[1.0]])
        for _ in range(steps):
            out = layer.forward(x)
            layer.zero_grad()
            layer.backward(2 * (out - 7.0))
            opt.step()

    def test_adam_state_dict_round_trip_is_step_for_step(self, rng):
        # One optimizer runs 40 steps straight; the other runs 15, has
        # its state serialized into a fresh Adam, and runs the rest.
        layer_a = Linear(1, 1, np.random.default_rng(3))
        layer_b = Linear(1, 1, np.random.default_rng(3))
        opt_a = Adam(layer_a.parameters(), 0.05)
        opt_b = Adam(layer_b.parameters(), 0.05)

        self._train_steps(layer_a, opt_a, 40)
        self._train_steps(layer_b, opt_b, 15)

        state = opt_b.state_dict()
        resumed = Adam(layer_b.parameters(), 0.05)
        resumed.load_state_dict(state)
        self._train_steps(layer_b, resumed, 25)

        for p_a, p_b in zip(layer_a.parameters(), layer_b.parameters()):
            np.testing.assert_array_equal(p_a.value, p_b.value)

    def test_adam_state_dict_is_a_deep_copy(self, rng):
        layer = Linear(1, 1, rng)
        opt = Adam(layer.parameters(), 0.05)
        self._train_steps(layer, opt, 3)
        state = opt.state_dict()
        moments_before = [m.copy() for m in state["m"]]
        self._train_steps(layer, opt, 3)
        for saved, before in zip(state["m"], moments_before):
            np.testing.assert_array_equal(saved, before)

    def test_adam_load_state_dict_validates_shapes(self, rng):
        layer = Linear(1, 1, rng)
        opt = Adam(layer.parameters(), 0.05)
        state = opt.state_dict()
        with pytest.raises(ValueError):
            Adam(Linear(2, 2, rng).parameters(), 0.05).load_state_dict(state)
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError):
            Adam(layer.parameters(), 0.05).load_state_dict(state)


class TestResMade:
    def test_autoregressive_property(self, rng):
        """Output logits for column i must not depend on columns >= i."""
        cards = [3, 4, 2]
        model = ResMade(cards, hidden_units=16, hidden_layers=3, rng=rng)
        base = np.array([[0, 1, 0]])
        x0 = model.encode(base)
        for col in range(3):
            # Perturb a later column; logits for `col` must not move.
            for later in range(col, 3):
                for new_val in range(cards[later]):
                    row = base.copy()
                    row[0, later] = new_val
                    x1 = model.encode(row)
                    l0 = model.column_logits(model.forward(x0), col)
                    l1 = model.column_logits(model.forward(x1), col)
                    np.testing.assert_allclose(l0, l1, atol=1e-12)

    def test_encode_one_hot(self, rng):
        model = ResMade([2, 3], 8, 2, rng)
        enc = model.encode(np.array([[1, 2]]))
        np.testing.assert_array_equal(enc, [[0, 1, 0, 0, 1]])

    def test_encode_rejects_out_of_range(self, rng):
        model = ResMade([2, 3], 8, 2, rng)
        with pytest.raises(ValueError):
            model.encode(np.array([[2, 0]]))

    def test_distributions_sum_to_one(self, rng):
        model = ResMade([3, 4], 8, 2, rng)
        x = model.encode(np.array([[0, 0], [2, 3]]))
        logits = model.forward(x)
        for col in range(2):
            dist = model.column_distribution(logits, col)
            np.testing.assert_allclose(dist.sum(axis=1), [1.0, 1.0])

    def test_nll_training_learns_marginal(self, rng):
        """A single-column MADE should learn the empirical distribution."""
        data = rng.choice(3, size=(600, 1), p=[0.7, 0.2, 0.1])
        model = ResMade([3], hidden_units=8, hidden_layers=2, rng=rng)
        opt = Adam(model.parameters(), 2e-2)
        for _ in range(300):
            loss, grad = model.nll_step(data)
            model.zero_grad()
            model.backward(grad)
            opt.step()
        dist = model.column_distribution(
            model.forward(model.encode(np.array([[0]]))), 0
        )[0]
        empirical = np.bincount(data[:, 0], minlength=3) / len(data)
        np.testing.assert_allclose(dist, empirical, atol=0.05)

    def test_nll_decreases(self, rng):
        data = rng.integers(0, 4, size=(400, 3))
        model = ResMade([4, 4, 4], 16, 2, rng)
        opt = Adam(model.parameters(), 1e-2)
        losses = []
        for _ in range(30):
            loss, grad = model.nll_step(data)
            model.zero_grad()
            model.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0]


class TestFusedAdam:
    """The fused in-place step must be bit-identical to the reference."""

    def _mlp_and_batch(self, dtype=np.float64):
        rng = np.random.default_rng(5)
        model = Sequential(
            Linear(6, 16, np.random.default_rng(9), dtype=dtype),
            ReLU(),
            Linear(16, 1, np.random.default_rng(10), dtype=dtype),
        )
        x = rng.standard_normal((32, 6)).astype(dtype)
        y = rng.standard_normal(32).astype(dtype)
        return model, x, y

    def _train(self, fused: bool, dtype=np.float64):
        model, x, y = self._mlp_and_batch(dtype)
        opt = Adam(model.parameters(), 1e-2, fused=fused)
        for _ in range(25):
            pred = model.forward(x).ravel()
            _, grad = mse_loss(pred, y)
            opt.zero_grad()
            model.backward(grad[:, None])
            opt.step()
        return model

    def test_bit_identical_to_unfused_float64(self):
        fused = self._train(fused=True)
        unfused = self._train(fused=False)
        for p_f, p_u in zip(fused.parameters(), unfused.parameters()):
            np.testing.assert_array_equal(p_f.value, p_u.value)

    def test_bit_identical_to_unfused_float32(self):
        fused = self._train(fused=True, dtype=np.float32)
        unfused = self._train(fused=False, dtype=np.float32)
        for p_f, p_u in zip(fused.parameters(), unfused.parameters()):
            np.testing.assert_array_equal(p_f.value, p_u.value)

    def test_moments_adopt_parameter_dtype_on_load(self):
        # A float32 model restoring float64-saved moments must come back
        # float32: persistence never silently upcasts a model.
        layer = Linear(3, 3, np.random.default_rng(0), dtype=np.float32)
        opt = Adam(layer.parameters(), 1e-3)
        state = opt.state_dict()
        state["m"] = [m.astype(np.float64) for m in state["m"]]
        state["v"] = [v.astype(np.float64) for v in state["v"]]
        fresh = Adam(layer.parameters(), 1e-3)
        fresh.load_state_dict(state)
        assert all(m.dtype == np.float32 for m in fresh._m)
        assert all(v.dtype == np.float32 for v in fresh._v)


class TestFloat32Path:
    """The opt-in float32 dtype must survive every layer it touches."""

    def test_linear_forward_backward_stay_float32(self, rng):
        layer = Linear(4, 3, rng, dtype=np.float32)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        out = layer.forward(x)
        assert out.dtype == np.float32
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.dtype == np.float32
        assert layer.weight.grad.dtype == np.float32

    def test_masked_linear_invariant_under_float32_adam(self, rng):
        mask = (rng.random((4, 4)) < 0.5).astype(np.float32)
        layer = MaskedLinear(4, 4, mask, rng, dtype=np.float32)
        opt = Adam(layer.parameters(), 1e-2)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        for _ in range(10):
            out = layer.forward(x)
            layer.zero_grad()
            layer.backward(np.ones_like(out))
            opt.step()
        # Masked entries stay exactly 0.0, which is what lets forward
        # use weight.value directly without re-multiplying the mask.
        np.testing.assert_array_equal(
            layer.weight.value[mask == 0.0],
            np.zeros(int((mask == 0.0).sum()), dtype=np.float32),
        )
        assert layer.weight.value.dtype == np.float32

    def test_resmade_float32_distributions_sum_to_one(self, rng):
        model = ResMade([3, 4], hidden_units=8, hidden_layers=2, rng=rng,
                        dtype=np.float32)
        x = model.encode(np.array([[0, 1], [2, 3]]))
        assert x.dtype == np.float32
        logits = model.forward(x)
        assert logits.dtype == np.float32
        for col in range(2):
            dist = model.column_distribution(logits, col)
            np.testing.assert_allclose(dist.sum(axis=1), [1.0, 1.0], rtol=1e-5)

    def test_cross_entropy_float32_guard(self, rng):
        # log(0) guard must use the float32 tiny, not underflow to -inf.
        logits = rng.standard_normal((4, 3)).astype(np.float32) * 50.0
        targets = np.array([0, 1, 2, 0])
        loss, grad = softmax_cross_entropy(logits, targets)
        assert np.isfinite(loss)
        assert grad.dtype == np.float32
