"""Tests for the LogicalGuard rule-enforcement wrapper (Section 7.2)."""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, Predicate, Query
from repro.rules import check_all
from repro.rules.enforce import LogicalGuard, _contains


class NoisyOracle(CardinalityEstimator):
    """True cardinality plus multiplicative noise; unstable by design."""

    name = "noisy-oracle"

    def __init__(self, noise: float = 0.3, seed: int = 0):
        super().__init__()
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def _fit(self, table, workload):
        pass

    def _estimate(self, query):
        truth = self.table.cardinality(query)
        return truth * float(np.exp(self._rng.normal(scale=self.noise)))


class TestContainment:
    def test_same_query(self):
        q = Query((Predicate(0, 1, 5),))
        assert _contains(q, q)

    def test_wider_contains_narrower(self):
        outer = Query((Predicate(0, 0, 10),))
        inner = Query((Predicate(0, 2, 8),))
        assert _contains(outer, inner)
        assert not _contains(inner, outer)

    def test_fewer_predicates_contains_more(self):
        outer = Query((Predicate(0, 0, 10),))
        inner = Query((Predicate(0, 0, 10), Predicate(1, 3, 3)))
        assert _contains(outer, inner)
        assert not _contains(inner, outer)

    def test_disjoint_columns_not_contained(self):
        a = Query((Predicate(0, 0, 10),))
        b = Query((Predicate(1, 0, 10),))
        assert not _contains(a, b)


class TestLogicalGuard:
    @pytest.fixture
    def guarded(self, small_synthetic):
        return LogicalGuard(NoisyOracle()).fit(small_synthetic)

    def test_fidelity_b_enforced(self, guarded):
        assert guarded.estimate(Query((Predicate(0, 50.0, 10.0),))) == 0.0

    def test_fidelity_a_enforced(self, guarded, small_synthetic):
        preds = tuple(
            Predicate(i, c.domain_min, c.domain_max)
            for i, c in enumerate(small_synthetic.columns)
        )
        assert guarded.estimate(Query(preds)) == small_synthetic.num_rows

    def test_stability_enforced(self, guarded):
        q = Query((Predicate(0, 10.0, 60.0),))
        first = guarded.estimate(q)
        assert all(guarded.estimate(q) == first for _ in range(5))

    def test_bounds_enforced(self, small_synthetic):
        class Huge(CardinalityEstimator):
            name = "huge"

            def _fit(self, table, workload):
                pass

            def _estimate(self, query):
                return 1e15

        guarded = LogicalGuard(Huge()).fit(small_synthetic)
        q = Query((Predicate(0, 0.0, 5.0),))
        assert guarded.estimate(q) == small_synthetic.num_rows

    def test_memoised_monotone_clamp(self, guarded):
        wide = Query((Predicate(0, 0.0, 90.0),))
        narrow = Query((Predicate(0, 20.0, 70.0),))
        wide_est = guarded.estimate(wide)
        narrow_est = guarded.estimate(narrow)
        assert narrow_est <= wide_est

    def test_passes_full_rule_suite(self, small_synthetic, rng):
        guarded = LogicalGuard(NoisyOracle()).fit(small_synthetic)
        reports = check_all(guarded, small_synthetic, rng, num_checks=15)
        # The wrapper fixes stability and both fidelity rules; the
        # consistency rule cannot be enforced statelessly.
        assert reports["stability"].satisfied
        assert reports["fidelity-a"].satisfied
        assert reports["fidelity-b"].satisfied

    def test_memo_cleared_on_update(self, small_synthetic, rng):
        from repro.datasets import apply_update

        guarded = LogicalGuard(NoisyOracle()).fit(small_synthetic)
        q = Query((Predicate(0, 10.0, 60.0),))
        before = guarded.estimate(q)
        new_table, appended = apply_update(small_synthetic, rng)
        guarded.update(new_table, appended)
        after = guarded.estimate(q)
        # A fresh memo: the estimate may legitimately change.
        assert after != before or len(guarded._memo) == 1

    def test_memo_eviction(self, small_synthetic):
        guarded = LogicalGuard(NoisyOracle(), memo_size=3).fit(small_synthetic)
        for lo in range(10):
            guarded.estimate(Query((Predicate(0, float(lo), float(lo + 5)),)))
        assert len(guarded._memo) <= 3

    def test_requires_workload_propagates(self, small_synthetic):
        from repro.estimators.learned import LwXgbEstimator

        guarded = LogicalGuard(LwXgbEstimator())
        assert guarded.requires_workload
        with pytest.raises(ValueError):
            guarded.fit(small_synthetic)

    def test_invalid_memo_size(self):
        with pytest.raises(ValueError):
            LogicalGuard(NoisyOracle(), memo_size=-1)
