"""Tests for the crash-safe model lifecycle (repro.lifecycle)."""

import numpy as np
import pytest

from repro import obs
from repro.core import Table, generate_workload
from repro.core.workload import Workload
from repro.datasets import census
from repro.datasets.updates import apply_update
from repro.estimators.learned import LwNnEstimator
from repro.estimators.traditional import PostgresEstimator, SamplingEstimator
from repro.faults import (
    CrashAtEpochFault,
    FlakyRetrainFault,
    HangingRetrainFault,
    NaNFault,
    SimulatedCrash,
    truncate_file,
)
from repro.lifecycle import (
    NO_DRIFT,
    PROMOTED,
    RETRAIN_FAILED,
    ROLLED_BACK,
    AttemptTimeout,
    CheckpointStore,
    DriftDetector,
    ModelLifecycleManager,
    PromotionGate,
    RetrainJob,
    RetryPolicy,
)
from repro.serve import EstimatorService, HeuristicConstantEstimator


def small_lwnn(**overrides) -> LwNnEstimator:
    """An lw-nn small enough to train in milliseconds."""
    kwargs = dict(hidden_units=(8,), epochs=6, update_epochs=2, seed=0)
    kwargs.update(overrides)
    return LwNnEstimator(**kwargs)


@pytest.fixture(scope="module")
def lifecycle_table() -> Table:
    return census(num_rows=600)


@pytest.fixture(scope="module")
def lifecycle_workloads(lifecycle_table):
    rng = np.random.default_rng(5)
    train = generate_workload(lifecycle_table, 120, rng)
    probe = generate_workload(lifecycle_table, 30, rng)
    return train, probe


# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_and_latest_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        state = {"epochs_trained": 3, "blob": np.arange(4.0)}
        store.save(state, 3)
        ckpt = store.latest()
        assert ckpt is not None
        assert ckpt.epoch == 3
        np.testing.assert_array_equal(ckpt.state["blob"], np.arange(4.0))

    def test_prunes_beyond_keep(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for epoch in range(5):
            store.save({"epoch": epoch}, epoch)
        assert store.epochs() == [3, 4]

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1}, 1)
        path = store.save({"n": 2}, 2)
        truncate_file(path)
        ckpt = store.latest()
        assert ckpt.epoch == 1
        assert store.corrupt_skipped == 1
        assert obs.get_events().kinds()["lifecycle.checkpoint.corrupt"] == 1

    def test_all_corrupt_means_no_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        truncate_file(store.save({"n": 1}, 1), keep_fraction=0.3)
        assert store.latest() is None

    def test_clear_removes_everything(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({}, 1)
        store.save({}, 2)
        store.clear()
        assert len(store) == 0
        assert store.latest() is None

    def test_invalid_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)
        with pytest.raises(ValueError, match="epoch"):
            CheckpointStore(tmp_path).save({}, -1)


# ----------------------------------------------------------------------
class TestResumableTraining:
    def test_resume_matches_uninterrupted_step_for_step(
        self, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        full = small_lwnn().fit(lifecycle_table, train)

        half = small_lwnn()
        half.begin_training(lifecycle_table, train)
        half.train_epochs(train, 3)
        state = half.training_state()

        resumed = small_lwnn()
        resumed.restore_training(lifecycle_table, train, state)
        assert resumed.epochs_trained == 3
        resumed.train_epochs(train, resumed.target_epochs - 3)

        for p_full, p_res in zip(
            full._model.parameters(), resumed._model.parameters()
        ):
            np.testing.assert_array_equal(p_full.value, p_res.value)
        queries = list(train.queries)[:20]
        np.testing.assert_allclose(
            resumed.estimate_many(queries), full.estimate_many(queries)
        )

    def test_restore_rejects_wrong_estimator_state(
        self, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        est = small_lwnn()
        est.begin_training(lifecycle_table, train)
        est.train_epochs(train, 1)
        state = est.training_state()
        state["estimator"] = "someone-else"
        with pytest.raises(ValueError, match="belongs to"):
            small_lwnn().restore_training(lifecycle_table, train, state)


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential_then_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            backoff_base_seconds=1.0,
            backoff_cap_seconds=4.0,
            jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_seconds(a, rng) for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, jitter=0.2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert 0.8 <= policy.backoff_seconds(0, rng) <= 1.2

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_base_seconds=-1.0)


# ----------------------------------------------------------------------
class TestRetrainJob:
    def test_crash_then_resume_from_checkpoint(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        est = CrashAtEpochFault(small_lwnn(), crash_epoch=3)
        job = RetrainJob(
            est,
            lifecycle_table,
            train,
            store=CheckpointStore(tmp_path),
            policy=RetryPolicy(max_attempts=2, backoff_base_seconds=0.0),
            sleep=lambda _: None,
        )
        report = job.run()
        assert report.succeeded
        assert report.total_attempts == 2
        assert report.attempts[0].outcome == "error"
        assert "crash" in report.attempts[0].error
        assert report.attempts[1].resumed_from_epoch == 3
        assert report.resumed
        assert est.epochs_trained == est.target_epochs

    def test_crash_resume_equals_uninterrupted_training(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        full = small_lwnn().fit(lifecycle_table, train)

        wrapped = CrashAtEpochFault(small_lwnn(), crash_epoch=4)
        job = RetrainJob(
            wrapped,
            lifecycle_table,
            train,
            store=CheckpointStore(tmp_path),
            policy=RetryPolicy(max_attempts=2, backoff_base_seconds=0.0),
            sleep=lambda _: None,
        )
        assert job.run().succeeded
        queries = list(train.queries)[:20]
        np.testing.assert_allclose(
            wrapped.estimate_many(queries), full.estimate_many(queries)
        )

    def test_checkpoints_cleared_after_success(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        store = CheckpointStore(tmp_path)
        job = RetrainJob(small_lwnn(), lifecycle_table, train, store=store)
        assert job.run().succeeded
        assert len(store) == 0

    def test_torn_checkpoint_falls_back(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        store = CheckpointStore(tmp_path)
        pilot = small_lwnn()
        pilot.begin_training(lifecycle_table, train)
        pilot.train_epochs(train, 2)
        store.save(pilot.training_state(), 2)
        pilot.train_epochs(train, 2)
        truncate_file(store.save(pilot.training_state(), 4))

        est = small_lwnn()
        job = RetrainJob(est, lifecycle_table, train, store=store)
        report = job.run()
        assert report.succeeded
        # Resumed from the older intact checkpoint, not the torn one.
        assert report.attempts[0].resumed_from_epoch == 2
        assert store.corrupt_skipped >= 1

    def test_hanging_attempt_times_out_then_recovers(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        est = HangingRetrainFault(small_lwnn(), hang_seconds=0.10, hang_attempts=1)
        job = RetrainJob(
            est,
            lifecycle_table,
            train,
            store=CheckpointStore(tmp_path),
            policy=RetryPolicy(max_attempts=2, backoff_base_seconds=0.0),
            attempt_deadline_seconds=0.05,
            sleep=lambda _: None,
        )
        report = job.run()
        assert report.succeeded
        assert report.attempts[0].outcome == "timeout"
        assert est.epochs_trained == est.target_epochs

    def test_flaky_retrain_backs_off_then_succeeds(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        slept = []
        est = FlakyRetrainFault(small_lwnn(), fail_attempts=2)
        job = RetrainJob(
            est,
            lifecycle_table,
            train,
            store=CheckpointStore(tmp_path),
            policy=RetryPolicy(
                max_attempts=3, backoff_base_seconds=1.0, jitter=0.0
            ),
            sleep=slept.append,
        )
        report = job.run()
        assert report.succeeded
        assert [a.outcome for a in report.attempts] == [
            "error",
            "error",
            "succeeded",
        ]
        assert slept == [1.0, 2.0]

    def test_exhausted_retries_reports_failure(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, _ = lifecycle_workloads
        est = FlakyRetrainFault(small_lwnn(), fail_attempts=99)
        job = RetrainJob(
            est,
            lifecycle_table,
            train,
            store=CheckpointStore(tmp_path),
            policy=RetryPolicy(max_attempts=3, backoff_base_seconds=0.0),
            sleep=lambda _: None,
        )
        report = job.run()
        assert not report.succeeded
        assert report.total_attempts == 3
        assert obs.get_events().kinds()["lifecycle.retrain.exhausted"] == 1

    def test_non_resumable_estimator_uses_plain_fit(
        self, tmp_path, lifecycle_table
    ):
        job = RetrainJob(
            SamplingEstimator(),
            lifecycle_table,
            None,
            store=CheckpointStore(tmp_path),
        )
        report = job.run()
        assert report.succeeded
        assert report.attempts[0].resumed_from_epoch is None


# ----------------------------------------------------------------------
class _ConstantEstimator(PostgresEstimator):
    """A deliberately terrible but perfectly 'logical' candidate."""

    name = "constant"

    def _estimate(self, query):
        return 1.0

    def _estimate_batch(self, queries):
        return np.ones(len(queries))


class TestPromotionGate:
    @pytest.fixture()
    def fitted(self, lifecycle_table):
        incumbent = PostgresEstimator().fit(lifecycle_table)
        candidate = SamplingEstimator().fit(lifecycle_table)
        return incumbent, candidate

    def test_reasonable_candidate_passes(
        self, lifecycle_table, lifecycle_workloads, fitted
    ):
        _, probe = lifecycle_workloads
        incumbent, candidate = fitted
        gate = PromotionGate(list(probe.queries), regression_tolerance=50.0)
        report = gate.evaluate(candidate, incumbent, lifecycle_table)
        assert report.passed, report.reasons
        assert "PASS" in report.summary()

    def test_nan_candidate_rejected_on_sanity(
        self, lifecycle_table, lifecycle_workloads, fitted
    ):
        _, probe = lifecycle_workloads
        incumbent, candidate = fitted
        gate = PromotionGate(list(probe.queries))
        report = gate.evaluate(
            NaNFault(candidate, probability=1.0), incumbent, lifecycle_table
        )
        assert not report.passed
        assert any("sanity" in r for r in report.reasons)

    def test_regressed_candidate_rejected(
        self, lifecycle_table, lifecycle_workloads, fitted
    ):
        _, probe = lifecycle_workloads
        incumbent, _ = fitted
        regressed = _ConstantEstimator().fit(lifecycle_table)
        gate = PromotionGate(list(probe.queries), regression_tolerance=1.1)
        report = gate.evaluate(regressed, incumbent, lifecycle_table)
        assert not report.passed
        assert any("regression" in r for r in report.reasons)
        assert report.candidate_p95 > report.incumbent_p95

    def test_raising_candidate_rejected_outright(
        self, lifecycle_table, lifecycle_workloads, fitted
    ):
        _, probe = lifecycle_workloads
        incumbent, _ = fitted
        gate = PromotionGate(list(probe.queries))
        report = gate.evaluate(PostgresEstimator(), incumbent, lifecycle_table)
        assert not report.passed
        assert any("raised" in r for r in report.reasons)

    def test_invalid_configuration_rejected(self, lifecycle_workloads):
        _, probe = lifecycle_workloads
        queries = list(probe.queries)
        with pytest.raises(ValueError, match="regression_tolerance"):
            PromotionGate(queries, regression_tolerance=0.5)
        with pytest.raises(ValueError, match="at least one"):
            PromotionGate([])


# ----------------------------------------------------------------------
def build_manager(table, train, probe, tmp_path, candidate_factory, **kwargs):
    service = EstimatorService(
        [small_lwnn(), HeuristicConstantEstimator()], cache=64
    ).fit(table, train)
    manager_kwargs = dict(
        checkpoint_dir=tmp_path,
        gate=PromotionGate(list(probe.queries), regression_tolerance=50.0),
        policy=RetryPolicy(max_attempts=3, backoff_base_seconds=0.0),
        sleep=lambda _: None,
    )
    manager_kwargs.update(kwargs)
    manager = ModelLifecycleManager(
        service, candidate_factory, DriftDetector(probe), **manager_kwargs
    )
    return service, manager


def drifted_update(table, seed=11):
    rng = np.random.default_rng(seed)
    new_table, appended = apply_update(table, rng, fraction=0.5)
    new_train = generate_workload(new_table, 120, rng)
    return new_table, appended, new_train


class TestLifecycleManager:
    def test_no_drift_leaves_everything_alone(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table, train, probe, tmp_path, small_lwnn
        )
        incumbent = manager.incumbent
        report = manager.on_update(lifecycle_table, lifecycle_table.data[:0], train)
        assert report.state == NO_DRIFT
        assert report.retrain is None
        assert manager.incumbent is incumbent
        assert report.generation == 0

    def test_drift_retrain_promote(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table, train, probe, tmp_path, small_lwnn
        )
        old_incumbent = manager.incumbent
        baseline_before = manager.detector.baseline_p95

        # Warm the estimate cache so promotion must invalidate it.
        for query in probe.queries[:5]:
            service.serve(query)
        assert len(service.cache) > 0

        new_table, appended, new_train = drifted_update(lifecycle_table)
        report = manager.on_update(new_table, appended, new_train)

        assert report.state == PROMOTED and report.promoted
        assert "rows" in report.drift.reasons
        assert manager.incumbent is not old_incumbent
        assert report.generation == 1
        assert service.model_generation == 1
        assert service.cache.generation == 1
        assert all(q not in service.cache for q in probe.queries[:5])
        assert manager.detector.baseline_p95 != baseline_before
        # Promotion leaves no stale checkpoints behind.
        assert len(manager.store) == 0

        kinds = obs.get_events().kinds()
        assert kinds["lifecycle.transition"] >= 3
        assert kinds["serve.model_swap"] == 1
        registry = obs.get_registry()
        assert registry.get(obs.LIFECYCLE_PROMOTIONS).value(outcome=PROMOTED) == 1

    def test_regressed_candidate_rolls_back(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table,
            train,
            probe,
            tmp_path,
            lambda: NaNFault(small_lwnn(), probability=1.0),
        )
        incumbent = manager.incumbent
        new_table, appended, new_train = drifted_update(lifecycle_table)
        report = manager.on_update(new_table, appended, new_train)

        assert report.state == ROLLED_BACK
        assert not report.gate.passed
        assert manager.incumbent is incumbent
        assert report.generation == 0
        # The incumbent still answers every probe sanely.
        for query in probe.queries[:10]:
            assert np.isfinite(service.estimate(query))

    def test_exhausted_retrain_keeps_incumbent_serving(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table,
            train,
            probe,
            tmp_path,
            lambda: FlakyRetrainFault(small_lwnn(), fail_attempts=99),
        )
        incumbent = manager.incumbent
        new_table, appended, new_train = drifted_update(lifecycle_table)
        report = manager.on_update(new_table, appended, new_train)

        assert report.state == RETRAIN_FAILED
        assert report.retrain.total_attempts == 3
        assert manager.incumbent is incumbent
        for query in probe.queries[:10]:
            assert np.isfinite(service.estimate(query))

    def test_crash_mid_retrain_resumes_and_promotes(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table,
            train,
            probe,
            tmp_path,
            lambda: CrashAtEpochFault(small_lwnn(), crash_epoch=3),
        )
        new_table, appended, new_train = drifted_update(lifecycle_table)
        report = manager.on_update(new_table, appended, new_train)
        assert report.state == PROMOTED
        assert report.retrain.resumed
        assert report.retrain.total_attempts == 2

    def test_force_retrain_ignores_drift(
        self, tmp_path, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        service, manager = build_manager(
            lifecycle_table, train, probe, tmp_path, small_lwnn
        )
        report = manager.force_retrain(lifecycle_table, train)
        assert report.state in (PROMOTED, ROLLED_BACK)
        assert report.retrain is not None


# ----------------------------------------------------------------------
class TestDriftDetector:
    def test_no_baseline_no_drift_on_identical_table(
        self, lifecycle_table, lifecycle_workloads
    ):
        train, probe = lifecycle_workloads
        est = SamplingEstimator().fit(lifecycle_table)
        detector = DriftDetector(probe)
        detector.set_baseline(est, lifecycle_table)
        decision = detector.check(est, lifecycle_table)
        assert not decision.drifted
        assert decision.reasons == ()

    def test_row_growth_triggers_drift(self, lifecycle_table, lifecycle_workloads):
        _, probe = lifecycle_workloads
        est = SamplingEstimator().fit(lifecycle_table)
        detector = DriftDetector(probe, row_growth_threshold=0.10)
        detector.set_baseline(est, lifecycle_table)
        new_table, _, _ = drifted_update(lifecycle_table)
        decision = detector.check(est, new_table)
        assert decision.drifted
        assert "rows" in decision.reasons
        assert decision.row_growth >= 0.10

    def test_qerror_degradation_triggers_drift(
        self, lifecycle_table, lifecycle_workloads
    ):
        _, probe = lifecycle_workloads
        est = SamplingEstimator().fit(lifecycle_table)
        detector = DriftDetector(
            probe, degradation_factor=1.0, row_growth_threshold=10.0
        )
        detector.set_baseline(est, lifecycle_table)
        # Same model, heavily shifted data: q-error must degrade.
        new_table, _, _ = drifted_update(lifecycle_table)
        decision = detector.check(est, new_table)
        assert decision.qerror_p95 >= decision.baseline_p95 or not decision.drifted


# ----------------------------------------------------------------------
class TestDistillationGate:
    """The fastpath student ships only through the promotion gate.

    A student that fails the gate must leave the incumbent teacher
    serving, keep the estimate cache's generation (cached answers are
    still the serving model's answers), and emit the rejection event;
    a passing student hot-swaps in and invalidates the cache.
    """

    def build_service(self, table, train):
        service = EstimatorService(
            [small_lwnn(), HeuristicConstantEstimator()], cache=64
        ).fit(table, train)
        return service

    def test_failing_student_leaves_teacher_serving(
        self, lifecycle_table, lifecycle_workloads
    ):
        from repro.fastpath import DistilledStudent, distill_into_service

        train, probe = lifecycle_workloads
        service = self.build_service(lifecycle_table, train)
        teacher = service.primary_estimator
        # Warm the cache: surviving entries prove no generation bump.
        for query in probe.queries[:5]:
            service.serve(query)
        assert len(service.cache) > 0
        generation_before = service.model_generation

        # A student whose every answer is NaN cannot pass the sanity
        # rule, whatever the tolerance.
        broken = NaNFault(
            DistilledStudent(teacher, num_queries=32, num_trees=2, seed=1),
            probability=1.0,
        )
        gate = PromotionGate(list(probe.queries), regression_tolerance=50.0)
        _, report = distill_into_service(
            service, lifecycle_table, gate=gate, student=broken
        )

        assert not report.passed
        assert service.primary_estimator is teacher
        assert service.model_generation == generation_before
        assert service.cache.generation == generation_before
        assert all(q in service.cache for q in probe.queries[:5])
        kinds = obs.get_events().kinds()
        assert kinds.get("fastpath.student_rejected", 0) == 1
        assert "fastpath.student_promoted" not in kinds

    def test_passing_student_hot_swaps_and_invalidates_cache(
        self, lifecycle_table, lifecycle_workloads
    ):
        from repro.fastpath import distill_into_service

        train, probe = lifecycle_workloads
        service = self.build_service(lifecycle_table, train)
        teacher = service.primary_estimator
        for query in probe.queries[:5]:
            service.serve(query)
        generation_before = service.model_generation

        gate = PromotionGate(list(probe.queries), regression_tolerance=50.0)
        student, report = distill_into_service(
            service, lifecycle_table, gate=gate, num_queries=256, seed=2
        )

        assert report.passed, report.reasons
        assert service.primary_estimator is student
        assert service.model_generation == generation_before + 1
        assert service.cache.generation == generation_before + 1
        assert all(q not in service.cache for q in probe.queries[:5])
        kinds = obs.get_events().kinds()
        assert kinds.get("fastpath.student_promoted", 0) == 1
        assert student.report is not None
        assert student.report.teacher == teacher.name
