"""Tests for the fault-injection harness (repro.faults)."""

import math
import time

import numpy as np
import pytest

from repro.core import Predicate, Query
from repro.datasets import apply_update
from repro.estimators.traditional import PostgresEstimator, SamplingEstimator
from repro.faults import (
    CorruptionFault,
    ExceptionFault,
    LatencyFault,
    NaNFault,
    SimulatedCrash,
    SlowWorkerFault,
    StaleModelFault,
    WorkerCrashFault,
    WorkerHangFault,
    queue_flood,
)


@pytest.fixture
def query() -> Query:
    return Query((Predicate(0, 0.0, 3.0),))


def fault_pattern(wrapper, query, calls: int = 80) -> list[bool]:
    """Which of ``calls`` estimates faulted (True) vs answered (False)."""
    pattern = []
    for _ in range(calls):
        try:
            value = wrapper.estimate(query)
        except RuntimeError:
            pattern.append(True)
            continue
        pattern.append(math.isnan(value) or math.isinf(value))
    return pattern


class TestSchedule:
    @pytest.mark.parametrize("fault_cls", [ExceptionFault, NaNFault])
    def test_fixed_seed_is_deterministic(self, tiny_table, query, fault_cls):
        runs = []
        for _ in range(2):
            wrapper = fault_cls(
                SamplingEstimator().fit(tiny_table), probability=0.4, seed=11
            )
            runs.append(fault_pattern(wrapper, query))
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])

    def test_different_seeds_differ(self, tiny_table, query):
        patterns = [
            fault_pattern(
                ExceptionFault(
                    SamplingEstimator().fit(tiny_table), probability=0.5, seed=seed
                ),
                query,
            )
            for seed in (1, 2)
        ]
        assert patterns[0] != patterns[1]

    def test_after_delays_onset(self, tiny_table, query):
        wrapper = NaNFault(
            SamplingEstimator().fit(tiny_table), probability=1.0, seed=0, after=5
        )
        pattern = fault_pattern(wrapper, query, calls=10)
        assert pattern == [False] * 5 + [True] * 5
        assert wrapper.faults_fired == 5

    def test_probability_validation(self, tiny_table):
        with pytest.raises(ValueError):
            NaNFault(SamplingEstimator(), probability=1.5)
        with pytest.raises(ValueError):
            NaNFault(SamplingEstimator(), after=-1)

    def test_unfitted_wrapper_rejected(self, query):
        with pytest.raises(RuntimeError, match="must be fit"):
            NaNFault(SamplingEstimator()).estimate(query)

    def test_wrapping_a_fitted_inner_adopts_its_table(self, tiny_table, query):
        wrapper = NaNFault(SamplingEstimator().fit(tiny_table), probability=0.0)
        assert wrapper.table is tiny_table
        assert np.isfinite(wrapper.estimate(query))


class TestIndividualFaults:
    def test_nan_fault_returns_nan_unclamped(self, tiny_table, query):
        wrapper = NaNFault(SamplingEstimator().fit(tiny_table), probability=1.0)
        assert math.isnan(wrapper.estimate(query))

    def test_nan_fault_custom_value(self, tiny_table, query):
        wrapper = NaNFault(
            SamplingEstimator().fit(tiny_table),
            probability=1.0,
            value=float("inf"),
        )
        assert math.isinf(wrapper.estimate(query))

    def test_exception_fault_raises(self, tiny_table, query):
        wrapper = ExceptionFault(
            SamplingEstimator().fit(tiny_table), probability=1.0, message="boom"
        )
        with pytest.raises(RuntimeError, match="boom"):
            wrapper.estimate(query)

    def test_latency_fault_stalls_then_answers(self, tiny_table, query):
        inner = SamplingEstimator().fit(tiny_table)
        expected = inner.estimate(query)
        wrapper = LatencyFault(inner, delay_seconds=0.02, probability=1.0)
        start = time.perf_counter()
        value = wrapper.estimate(query)
        assert time.perf_counter() - start >= 0.02
        assert value == expected

    def test_corruption_fires_once_and_changes_estimates(self, small_synthetic):
        query = Query((Predicate(0, 10.0, 60.0),))
        clean = PostgresEstimator().fit(small_synthetic)
        baseline = clean.estimate(query)
        wrapper = CorruptionFault(
            PostgresEstimator().fit(small_synthetic), probability=1.0, seed=5
        )
        corrupted = wrapper.estimate(query)
        assert wrapper.corrupted
        assert wrapper.arrays_corrupted > 0
        assert corrupted != pytest.approx(baseline)
        # the corruption happened once; later answers come from the same
        # broken model deterministically
        assert wrapper.estimate(query) == pytest.approx(corrupted)

    def test_corruption_is_deterministic_under_seed(self, small_synthetic):
        query = Query((Predicate(0, 10.0, 60.0),))
        values = []
        for _ in range(2):
            wrapper = CorruptionFault(
                PostgresEstimator().fit(small_synthetic), probability=1.0, seed=9
            )
            values.append(wrapper.estimate(query))
        assert values[0] == pytest.approx(values[1])

    def test_corruption_leaves_the_table_alone(self, tiny_table):
        query = Query((Predicate(0, 0.0, 3.0),))
        before = tiny_table.data.copy()
        wrapper = CorruptionFault(
            PostgresEstimator().fit(tiny_table), probability=1.0, seed=5
        )
        wrapper.estimate(query)
        np.testing.assert_array_equal(tiny_table.data, before)

    def test_stale_model_drops_updates(self, small_census, rng, query):
        stale = StaleModelFault(SamplingEstimator().fit(small_census))
        fresh = SamplingEstimator().fit(small_census)
        before = stale.estimate(query)

        new_table, appended = apply_update(small_census, rng)
        stale.update(new_table, appended)
        fresh.update(new_table, appended)

        assert stale.dropped_updates == 1
        assert stale.inner.table.num_rows == small_census.num_rows
        assert stale.estimate(query) == pytest.approx(before)
        assert fresh.table.num_rows == new_table.num_rows


class TestWorkerFaults:
    """The worker-level wrappers driving the sharded-serving chaos matrix."""

    def test_worker_crash_calls_exit_with_code(self, tiny_table, query):
        exits: list[int] = []
        wrapper = WorkerCrashFault(
            SamplingEstimator().fit(tiny_table),
            probability=1.0,
            exit_code=7,
            _exit=exits.append,
        )
        wrapper.estimate(query)
        assert exits == [7]
        assert wrapper.faults_fired == 1

    def test_worker_crash_simulated_crash_double(self, tiny_table, query):
        def die(code: int) -> None:
            raise SimulatedCrash(f"exit {code}")

        wrapper = WorkerCrashFault(
            SamplingEstimator().fit(tiny_table), probability=1.0, _exit=die
        )
        with pytest.raises(SimulatedCrash, match="exit 3"):
            wrapper.estimate(query)

    def test_worker_crash_after_spares_early_calls(self, tiny_table, query):
        exits: list[int] = []
        inner = SamplingEstimator().fit(tiny_table)
        expected = inner.estimate(query)
        wrapper = WorkerCrashFault(
            inner, probability=1.0, after=2, _exit=exits.append
        )
        assert wrapper.estimate(query) == expected
        assert wrapper.estimate(query) == expected
        assert exits == []
        wrapper.estimate(query)
        assert exits == [3]

    def test_worker_hang_sleeps_past_deadline(self, tiny_table, query):
        naps: list[float] = []
        inner = SamplingEstimator().fit(tiny_table)
        wrapper = WorkerHangFault(
            inner, hang_seconds=30.0, probability=1.0, sleep=naps.append
        )
        assert wrapper.estimate(query) == inner.estimate(query)
        assert naps == [30.0]

    def test_slow_worker_delays_once_per_batch(self, tiny_table, query):
        naps: list[float] = []
        inner = SamplingEstimator().fit(tiny_table)
        wrapper = SlowWorkerFault(
            inner, delay_seconds=0.5, probability=1.0, sleep=naps.append
        )
        batch = [query] * 16
        values = wrapper.estimate_many(batch)
        # One delay for the whole batch — a CPU-starved worker, not a
        # per-query latency tax.
        assert naps == [0.5]
        np.testing.assert_array_equal(values, inner.estimate_many(batch))

    def test_slow_worker_schedule_is_seeded(self, tiny_table, query):
        patterns = []
        for _ in range(2):
            naps: list[float] = []
            wrapper = SlowWorkerFault(
                SamplingEstimator().fit(tiny_table),
                delay_seconds=0.1,
                probability=0.5,
                seed=9,
                sleep=naps.append,
            )
            fired = []
            for _ in range(40):
                before = len(naps)
                wrapper.estimate_many([query])
                fired.append(len(naps) > before)
            patterns.append(fired)
        assert patterns[0] == patterns[1]
        assert any(patterns[0]) and not all(patterns[0])

    def test_queue_flood_preserves_multiset(self, small_census, rng):
        from repro.core import generate_workload

        queries = generate_workload(small_census, 20, rng).queries
        flood = queue_flood(queries, multiplier=5, seed=3)
        assert len(flood) == 100
        from collections import Counter

        assert Counter(flood) == Counter({q: 5 for q in queries})
        # Deterministic under seed, shuffled relative to plain tiling.
        assert flood == queue_flood(queries, multiplier=5, seed=3)
        assert flood != [q for q in queries for _ in range(5)]

    def test_queue_flood_rejects_bad_multiplier(self, tiny_table):
        with pytest.raises(ValueError, match="multiplier"):
            queue_flood([], multiplier=0)
