"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import Predicate, Query, Table, qerror, qerrors
from repro.core.metrics import QErrorSummary, top_fraction
from repro.estimators.discretize import ColumnDiscretizer
from repro.estimators.traditional.histograms import EquiDepthHistogram
from repro.gbdt import FeatureBinner

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

positive = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
values_1d = hnp.arrays(
    np.float64,
    st.integers(min_value=2, max_value=300),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                       allow_infinity=False),
)


class TestQErrorProperties:
    @COMMON
    @given(positive, positive)
    def test_symmetry(self, a, b):
        assert qerror(a, b) == pytest.approx(qerror(b, a))

    @COMMON
    @given(positive, positive)
    def test_at_least_one(self, a, b):
        assert qerror(a, b) >= 1.0

    @COMMON
    @given(positive)
    def test_identity(self, a):
        assert qerror(a, a) == 1.0

    @COMMON
    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e3))
    def test_scaling(self, actual, factor):
        """Overestimating by a factor f gives q-error exactly f."""
        assert qerror(actual * factor, actual) == pytest.approx(factor)

    @COMMON
    @given(hnp.arrays(np.float64, st.integers(2, 50),
                      elements=st.floats(0, 1e9, allow_nan=False)))
    def test_summary_ordering(self, errors):
        errors = np.maximum(errors, 1.0)
        s = QErrorSummary.from_errors(errors)
        assert s.p50 <= s.p95 <= s.p99 <= s.max

    @COMMON
    @given(hnp.arrays(np.float64, st.integers(5, 100),
                      elements=st.floats(1, 1e6, allow_nan=False)),
           st.floats(min_value=0.01, max_value=1.0))
    def test_top_fraction_contains_max(self, errors, fraction):
        top = top_fraction(errors, fraction)
        assert top.max() == errors.max()
        assert len(top) <= len(errors)


class TestTableQueryProperties:
    @COMMON
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 80), st.integers(1, 4)),
                   elements=st.floats(-100, 100, allow_nan=False)),
        st.data(),
    )
    def test_cardinality_matches_bruteforce(self, data, draw):
        table = Table("h", data)
        col = draw.draw(st.integers(0, table.num_columns - 1))
        lo = draw.draw(st.floats(-120, 120, allow_nan=False))
        hi = draw.draw(st.floats(-120, 120, allow_nan=False))
        q = Query((Predicate(col, lo, hi),))
        expected = int(np.sum((data[:, col] >= lo) & (data[:, col] <= hi)))
        assert table.cardinality(q) == expected

    @COMMON
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 60), st.integers(2, 4)),
                   elements=st.floats(-50, 50, allow_nan=False)),
        st.data(),
    )
    def test_conjunction_monotone(self, data, draw):
        """Adding a predicate can only shrink the result."""
        table = Table("h", data)
        col_a = 0
        col_b = draw.draw(st.integers(1, table.num_columns - 1))
        p_a = Predicate(col_a, -10.0, 10.0)
        p_b = Predicate(col_b, draw.draw(st.floats(-60, 60)), None)
        single = table.cardinality(Query((p_a,)))
        double = table.cardinality(Query((p_a, p_b)))
        assert double <= single

    @COMMON
    @given(values_1d)
    def test_full_domain_query_selects_everything(self, values):
        table = Table("h", values[:, None])
        col = table.columns[0]
        q = Query((Predicate(0, col.domain_min, col.domain_max),))
        assert table.cardinality(q) == table.num_rows


class TestHistogramProperties:
    @COMMON
    @given(values_1d, st.integers(2, 40))
    def test_range_fraction_bounds(self, values, buckets):
        hist = EquiDepthHistogram(values, buckets)
        lo, hi = np.percentile(values, [20, 70])
        frac = hist.range_fraction(lo, hi)
        assert 0.0 <= frac <= 1.0

    @COMMON
    @given(values_1d, st.integers(2, 40))
    def test_full_range_is_total(self, values, buckets):
        hist = EquiDepthHistogram(values, buckets)
        assert hist.range_fraction(None, None) == pytest.approx(1.0)

    @COMMON
    @given(values_1d, st.integers(2, 40), st.data())
    def test_monotone_in_range_width(self, values, buckets, draw):
        hist = EquiDepthHistogram(values, buckets)
        lo = draw.draw(st.floats(-1e6, 1e6, allow_nan=False))
        width_a = draw.draw(st.floats(0, 1e5, allow_nan=False))
        width_b = draw.draw(st.floats(0, 1e5, allow_nan=False))
        small, large = sorted([width_a, width_b])
        assert hist.range_fraction(lo, lo + small) <= hist.range_fraction(
            lo, lo + large
        ) + 1e-9


class TestDiscretizerProperties:
    @COMMON
    @given(values_1d, st.integers(2, 32))
    def test_transform_in_range(self, values, max_bins):
        disc = ColumnDiscretizer(values, max_bins)
        bins = disc.transform(values)
        assert bins.min() >= 0
        assert bins.max() < disc.num_bins

    @COMMON
    @given(values_1d, st.integers(2, 32), st.data())
    def test_weights_unit_interval(self, values, max_bins, draw):
        disc = ColumnDiscretizer(values, max_bins)
        lo = draw.draw(st.floats(-1e6, 1e6, allow_nan=False))
        hi = draw.draw(st.floats(-1e6, 1e6, allow_nan=False))
        w = disc.predicate_weights(Predicate(0, lo, hi))
        assert (w >= 0.0).all() and (w <= 1.0 + 1e-12).all()

    @COMMON
    @given(values_1d, st.integers(2, 32))
    def test_full_domain_weights_cover_data(self, values, max_bins):
        """counts @ weights over the full domain equals the row count."""
        disc = ColumnDiscretizer(values, max_bins)
        counts = np.bincount(disc.transform(values), minlength=disc.num_bins)
        w = disc.predicate_weights(
            Predicate(0, float(values.min()), float(values.max()))
        )
        assert counts @ w == pytest.approx(len(values))


class TestBinnerProperties:
    @COMMON
    @given(values_1d)
    def test_binning_preserves_order(self, values):
        binner = FeatureBinner(max_bins=16).fit(values[:, None])
        ordered = np.sort(values)
        bins = binner.transform(ordered[:, None])[:, 0]
        assert (np.diff(bins) >= 0).all()

    @COMMON
    @given(values_1d)
    def test_equal_values_equal_bins(self, values):
        doubled = np.concatenate([values, values])
        binner = FeatureBinner(max_bins=16).fit(doubled[:, None])
        bins = binner.transform(doubled[:, None])[:, 0]
        assert (bins[: len(values)] == bins[len(values):]).all()
