"""Gradient checks and invariants for the Transformer primitives."""

import numpy as np
import pytest

from repro.nn import CausalSelfAttention, Embedding, LayerNorm, TransformerAR
from repro.nn.optim import Adam


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(5, 3, rng)
        out = emb.forward(np.array([1, 4]))
        np.testing.assert_array_equal(out[0], emb.table.value[1])
        np.testing.assert_array_equal(out[1], emb.table.value[4])

    def test_out_of_range(self, rng):
        emb = Embedding(5, 3, rng)
        with pytest.raises(ValueError):
            emb.forward(np.array([5]))

    def test_scatter_add_gradient(self, rng):
        emb = Embedding(4, 2, rng)
        emb.forward(np.array([1, 1, 3]))
        emb.backward(np.ones((3, 2)))
        np.testing.assert_array_equal(emb.table.grad[1], [2.0, 2.0])
        np.testing.assert_array_equal(emb.table.grad[3], [1.0, 1.0])
        np.testing.assert_array_equal(emb.table.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_normalises(self, rng):
        norm = LayerNorm(8)
        x = rng.normal(loc=5.0, scale=3.0, size=(10, 8))
        out = norm.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_gradient_check(self, rng):
        norm = LayerNorm(4)
        norm.gain.value[:] = rng.normal(size=4)
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))

        def loss():
            return float(np.sum((norm.forward(x) - target) ** 2))

        norm.zero_grad()
        grad_in = norm.backward(2 * (norm.forward(x) - target))
        np.testing.assert_allclose(grad_in, numeric_gradient(loss, x), atol=1e-5)
        np.testing.assert_allclose(
            norm.gain.grad, numeric_gradient(loss, norm.gain.value), atol=1e-5
        )


class TestCausalAttention:
    def test_causality(self, rng):
        """Output at position t must not depend on positions > t."""
        attn = CausalSelfAttention(dim=8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        base = attn.forward(x.copy())
        perturbed = x.copy()
        perturbed[0, 3, :] += 10.0  # change the last position
        out = attn.forward(perturbed)
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-10)
        assert not np.allclose(out[0, 3], base[0, 3])

    def test_gradient_check_input(self, rng):
        attn = CausalSelfAttention(dim=4, num_heads=1, rng=rng)
        x = rng.normal(size=(2, 3, 4))
        target = rng.normal(size=(2, 3, 4))

        def loss():
            return float(np.sum((attn.forward(x) - target) ** 2))

        grad_in = attn.backward(2 * (attn.forward(x) - target))
        np.testing.assert_allclose(grad_in, numeric_gradient(loss, x), atol=1e-4)

    def test_gradient_check_weights(self, rng):
        attn = CausalSelfAttention(dim=4, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 3, 4))
        target = rng.normal(size=(1, 3, 4))

        def loss():
            return float(np.sum((attn.forward(x) - target) ** 2))

        attn.zero_grad()
        attn.backward(2 * (attn.forward(x) - target))
        for param in attn.parameters():
            numeric = numeric_gradient(loss, param.value)
            np.testing.assert_allclose(param.grad, numeric, atol=1e-4)

    def test_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            CausalSelfAttention(dim=6, num_heads=4, rng=rng)


class TestTransformerAR:
    def test_autoregressive_property(self, rng):
        model = TransformerAR([3, 4, 2], dim=8, num_heads=2, num_blocks=1, rng=rng)
        base = np.array([[0, 1, 0]])
        for col in range(3):
            for later in range(col, 3):
                for value in range(model.cardinalities[later]):
                    row = base.copy()
                    row[0, later] = value
                    d0 = model.conditional_from_bins(base, col)
                    d1 = model.conditional_from_bins(row, col)
                    np.testing.assert_allclose(d0, d1, atol=1e-10)

    def test_distributions_sum_to_one(self, rng):
        model = TransformerAR([3, 5], dim=8, num_heads=2, num_blocks=1, rng=rng)
        dist = model.conditional_from_bins(np.array([[1, 0], [2, 4]]), 1)
        np.testing.assert_allclose(dist.sum(axis=1), [1.0, 1.0])

    def test_nll_decreases_with_training(self, rng):
        data = rng.integers(0, 4, size=(300, 2))
        model = TransformerAR([4, 4], dim=8, num_heads=2, num_blocks=1, rng=rng)
        opt = Adam(model.parameters(), 3e-3)
        losses = []
        for _ in range(25):
            loss, grad = model.nll_step(data)
            model.zero_grad()
            model.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0]

    def test_full_gradient_check(self, rng):
        """End-to-end: NLL gradients of every parameter match numerics."""
        data = rng.integers(0, 3, size=(4, 2))
        model = TransformerAR([3, 3], dim=4, num_heads=1, num_blocks=1, rng=rng)

        def loss():
            value, _ = model.nll_step(data)
            return value

        model.zero_grad()
        _, grad = model.nll_step(data)
        model.backward(grad)
        # Snapshot first: numeric evaluation re-runs nll_step, which
        # accumulates into the head parameters' gradients.
        analytic = [param.grad.copy() for param in model.parameters()]
        for param, expected in zip(model.parameters(), analytic):
            numeric = numeric_gradient(loss, param.value, eps=1e-5)
            np.testing.assert_allclose(expected, numeric, atol=2e-4)

    def test_learns_dependent_columns(self, rng):
        """On y = x data, P(y | x) should peak at y = x."""
        x = rng.integers(0, 3, size=800)
        data = np.column_stack([x, x])
        model = TransformerAR([3, 3], dim=16, num_heads=2, num_blocks=2, rng=rng)
        opt = Adam(model.parameters(), 3e-3)
        for _ in range(60):
            loss, grad = model.nll_step(data)
            model.zero_grad()
            model.backward(grad)
            opt.step()
        probe = np.array([[0, 0], [1, 0], [2, 0]])
        dist = model.conditional_from_bins(probe, 1)
        assert np.argmax(dist[0]) == 0
        assert np.argmax(dist[1]) == 1
        assert np.argmax(dist[2]) == 2


class TestNaruTransformerBlock:
    def test_naru_runs_with_transformer(self, small_synthetic):
        from repro.core import Predicate, Query
        from repro.estimators.learned import NaruEstimator

        est = NaruEstimator(
            hidden_units=16, hidden_layers=1, epochs=2, num_samples=32,
            block="transformer",
        ).fit(small_synthetic)
        q = Query((Predicate(0, 0.0, 50.0),))
        assert np.isfinite(est.estimate(q))

    def test_unknown_block_rejected(self):
        from repro.estimators.learned import NaruEstimator

        with pytest.raises(ValueError, match="block"):
            NaruEstimator(block="rnn")
