"""Tests for the interpretability helpers."""

import numpy as np
import pytest

from repro.explain import (
    TrainingInfluence,
    lw_feature_importance,
    permutation_importance,
)


class TestPermutationImportance:
    def test_informative_feature_ranks_first(self, rng):
        """Predictions depend only on feature 0; permuting it must hurt,
        permuting the noise feature must not."""
        features = rng.uniform(1, 100, size=(300, 2))
        actuals = features[:, 0] * 10

        def predict(x):
            return x[:, 0] * 10

        ranking = permutation_importance(predict, features, actuals, rng)
        assert ranking[0].feature == 0
        assert ranking[0].importance > 2.0
        assert ranking[-1].feature == 1
        assert ranking[-1].importance == pytest.approx(1.0, abs=0.05)

    def test_names_attached(self, rng):
        features = rng.uniform(1, 10, size=(50, 2))
        actuals = np.ones(50)
        ranking = permutation_importance(
            lambda x: np.ones(len(x)), features, actuals, rng,
            feature_names=["alpha", "beta"],
        )
        assert {fi.name for fi in ranking} == {"alpha", "beta"}

    def test_constant_predictor_all_ones(self, rng):
        features = rng.uniform(1, 10, size=(50, 3))
        actuals = rng.uniform(1, 10, size=50)
        ranking = permutation_importance(
            lambda x: np.full(len(x), 5.0), features, actuals, rng
        )
        for fi in ranking:
            assert fi.importance == pytest.approx(1.0)


class TestLwFeatureImportance:
    def test_ce_features_matter(self, small_synthetic, synthetic_workloads, rng):
        from repro.estimators.learned import LwXgbEstimator

        train, test = synthetic_workloads
        est = LwXgbEstimator(num_trees=32).fit(small_synthetic, train)
        ranking = lw_feature_importance(est, test, rng)
        names = [fi.name for fi in ranking]
        assert "log_avi" in names
        # Something must carry signal on this model.
        assert ranking[0].importance > 1.05

    def test_works_for_nn_models(self, small_synthetic, synthetic_workloads, rng):
        from repro.estimators.learned import LwNnEstimator

        train, test = synthetic_workloads
        est = LwNnEstimator(epochs=8).fit(small_synthetic, train)
        ranking = lw_feature_importance(est, test, rng)
        assert len(ranking) == est._featurizer.dimension

    def test_rejects_non_lw_estimators(self, small_synthetic, rng, synthetic_workloads):
        from repro.estimators.learned import DeepDbEstimator

        _, test = synthetic_workloads
        est = DeepDbEstimator().fit(small_synthetic)
        with pytest.raises(TypeError):
            lw_feature_importance(est, test, rng)


class TestTrainingInfluence:
    @pytest.fixture
    def influence(self, small_synthetic, synthetic_workloads):
        from repro.estimators.learned import LwFeaturizer

        train, _ = synthetic_workloads
        featurizer = LwFeaturizer(small_synthetic, use_ce_features=False)
        return TrainingInfluence(featurizer.features, train)

    def test_training_query_is_own_neighbour(self, influence):
        probe = influence.workload.queries[7]
        hits = influence.neighbours(probe, k=1)
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)
        assert hits[0].index == 7 or hits[0].distance < 1e-9

    def test_neighbours_sorted_by_distance(self, influence):
        probe = influence.workload.queries[0]
        hits = influence.neighbours(probe, k=5)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)
        assert len(hits) == 5

    def test_labels_carried(self, influence):
        probe = influence.workload.queries[3]
        hits = influence.neighbours(probe, k=1)
        assert hits[0].cardinality == influence.workload.cardinalities[hits[0].index]

    def test_k_validated(self, influence):
        with pytest.raises(ValueError):
            influence.neighbours(influence.workload.queries[0], k=0)
