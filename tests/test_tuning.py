"""Tests for the hyper-parameter search strategies (Section 7.1)."""

import numpy as np
import pytest

from repro.estimators.learned import LwXgbEstimator
from repro.tuning import (
    SearchSpace,
    grid_search,
    random_search,
    successive_halving,
    validation_score,
)


def _lw_builder(config):
    return LwXgbEstimator(
        num_trees=int(config.get("num_trees", 16)),
        max_depth=int(config.get("max_depth", 4)),
    )


@pytest.fixture(scope="module")
def tuning_setting(small_synthetic, synthetic_workloads):
    train, test = synthetic_workloads
    valid, holdout = test.split(60)
    return small_synthetic, train, valid


class TestSearchSpace:
    def test_grid_size(self):
        space = SearchSpace({"a": [1, 2], "b": [10, 20, 30]})
        assert space.size == 6
        assert len(space.grid()) == 6

    def test_grid_covers_combinations(self):
        space = SearchSpace({"a": [1, 2], "b": ["x"]})
        assert {tuple(sorted(c.items())) for c in space.grid()} == {
            (("a", 1), ("b", "x")),
            (("a", 2), ("b", "x")),
        }

    def test_sample_in_space(self, rng):
        space = SearchSpace({"a": [1, 2, 3]})
        for _ in range(10):
            assert space.sample(rng)["a"] in (1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})
        with pytest.raises(ValueError):
            SearchSpace({"a": []})


class TestValidationScore:
    def test_perfect_oracle_scores_one(self, small_synthetic, synthetic_workloads):
        from repro.core import CardinalityEstimator

        class Oracle(CardinalityEstimator):
            name = "oracle"

            def _fit(self, table, workload):
                pass

            def _estimate(self, query):
                return float(self.table.cardinality(query))

        _, test = synthetic_workloads
        est = Oracle().fit(small_synthetic)
        assert validation_score(est, test) == pytest.approx(1.0)


class TestGridSearch:
    def test_finds_best_of_grid(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [2, 32], "max_depth": [2, 5]})
        result = grid_search(_lw_builder, space, table, train, valid)
        assert len(result.trials) == 4
        assert result.best_score == min(t.score for t in result.trials)
        # More capacity should win over the tiny configuration.
        assert result.best_config["num_trees"] == 32

    def test_max_trials_truncates(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [2, 8, 32]})
        result = grid_search(_lw_builder, space, table, train, valid, max_trials=2)
        assert len(result.trials) == 2

    def test_table5_metric(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [1, 64]})
        result = grid_search(_lw_builder, space, table, train, valid)
        assert result.worst_best_ratio >= 1.0
        assert result.total_fit_seconds > 0.0


class TestRandomSearch:
    def test_runs_requested_trials(self, tuning_setting, rng):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [2, 8, 16, 32], "max_depth": [2, 4, 6]})
        result = random_search(
            _lw_builder, space, table, train, valid, num_trials=3, rng=rng
        )
        assert len(result.trials) == 3
        assert result.best_estimator is not None

    def test_invalid_trials(self, tuning_setting, rng):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [2]})
        with pytest.raises(ValueError):
            random_search(_lw_builder, space, table, train, valid, 0, rng)


class TestSuccessiveHalving:
    def test_halves_down_to_one(self, tuning_setting, rng):
        table, train, valid = tuning_setting

        def builder(config):
            from repro.estimators.learned import LwNnEstimator

            return LwNnEstimator(
                hidden_units=config["hidden_units"],
                epochs=int(config["epochs"]),
            )

        space = SearchSpace({"hidden_units": [(8,), (16,), (32, 32), (64,)]})
        result = successive_halving(
            builder, space, table, train, valid, rng,
            num_configs=4, eta=2, min_epochs=1, max_epochs=4,
        )
        # Rung sizes 4 + 2 + 1 = 7 trials.
        assert len(result.trials) == 7
        assert result.best_config["epochs"] >= 1

    def test_budget_grows_by_eta(self, tuning_setting, rng):
        table, train, valid = tuning_setting

        def builder(config):
            return LwXgbEstimator(num_trees=int(config["epochs"]))

        space = SearchSpace({"max_depth": [2, 3, 4, 5]})
        result = successive_halving(
            builder, space, table, train, valid, rng,
            num_configs=4, eta=2, min_epochs=2, max_epochs=8,
        )
        budgets = sorted({t.config["epochs"] for t in result.trials})
        assert budgets == [2, 4, 8]

    def test_validation(self, tuning_setting, rng):
        table, train, valid = tuning_setting
        space = SearchSpace({"a": [1]})
        with pytest.raises(ValueError):
            successive_halving(
                _lw_builder, space, table, train, valid, rng, num_configs=1
            )
        with pytest.raises(ValueError):
            successive_halving(
                _lw_builder, space, table, train, valid, rng, eta=1
            )


class TestParallelSearch:
    """parallelism=N must change wall-clock only, never the answer."""

    def test_grid_search_parallel_matches_serial(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [4, 8], "max_depth": [2, 3]})
        serial = grid_search(_lw_builder, space, table, train, valid)
        parallel = grid_search(
            _lw_builder, space, table, train, valid, parallelism=4
        )
        assert [t.score for t in serial.trials] == [t.score for t in parallel.trials]
        assert serial.best_config == parallel.best_config
        assert serial.best_score == parallel.best_score

    def test_random_search_parallel_matches_serial(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [4, 8, 16], "max_depth": [2, 3]})
        serial = random_search(
            _lw_builder, space, table, train, valid,
            num_trials=4, rng=np.random.default_rng(0),
        )
        parallel = random_search(
            _lw_builder, space, table, train, valid,
            num_trials=4, rng=np.random.default_rng(0), parallelism=4,
        )
        assert [t.config for t in serial.trials] == [t.config for t in parallel.trials]
        assert [t.score for t in serial.trials] == [t.score for t in parallel.trials]
        assert serial.best_config == parallel.best_config

    def test_successive_halving_parallel_matches_serial(self, tuning_setting):
        table, train, valid = tuning_setting

        def builder(config):
            return LwXgbEstimator(
                num_trees=int(config.get("epochs", 4)),
                max_depth=int(config["max_depth"]),
            )

        space = SearchSpace({"max_depth": [2, 3, 4, 5]})
        kwargs = dict(num_configs=4, eta=2, min_epochs=2, max_epochs=8)
        serial = successive_halving(
            builder, space, table, train, valid, np.random.default_rng(1), **kwargs
        )
        parallel = successive_halving(
            builder, space, table, train, valid, np.random.default_rng(1),
            parallelism=4, **kwargs,
        )
        assert [t.score for t in serial.trials] == [t.score for t in parallel.trials]
        assert serial.best_config == parallel.best_config

    def test_parallelism_validated(self, tuning_setting):
        table, train, valid = tuning_setting
        space = SearchSpace({"num_trees": [4]})
        with pytest.raises(ValueError):
            grid_search(_lw_builder, space, table, train, valid, parallelism=0)
