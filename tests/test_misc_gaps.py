"""Gap-filling tests: timing records, config corners, composed wrappers."""

import numpy as np
import pytest

from repro.core import (
    Predicate,
    Query,
    WorkloadConfig,
    WorkloadGenerator,
    generate_workload,
)
from repro.core.estimator import TimingRecord
from repro.estimators.discretize import ColumnDiscretizer


class TestTimingRecord:
    def test_mean_inference_with_no_queries(self):
        assert TimingRecord().mean_inference_ms == 0.0

    def test_mean_inference_math(self):
        t = TimingRecord(total_inference_seconds=0.5, inference_count=100)
        assert t.mean_inference_ms == pytest.approx(5.0)

    def test_estimator_records_accumulate(self, small_synthetic):
        from repro.estimators.traditional import SamplingEstimator

        est = SamplingEstimator().fit(small_synthetic)
        est.estimate(Query((Predicate(0, 0.0, 10.0),)))
        est.estimate(Query((Predicate(0, 0.0, 20.0),)))
        assert est.timing.inference_count == 2
        assert est.timing.total_inference_seconds > 0.0


class TestWorkloadConfigCorners:
    def test_max_predicates_cap(self, small_census, rng):
        gen = WorkloadGenerator(
            small_census, WorkloadConfig(max_predicates=2)
        )
        for _ in range(30):
            assert gen.generate_query(rng).num_predicates <= 2

    def test_fixed_predicate_count(self, small_census, rng):
        gen = WorkloadGenerator(
            small_census, WorkloadConfig(min_predicates=3, max_predicates=3)
        )
        for _ in range(20):
            assert gen.generate_query(rng).num_predicates == 3

    def test_all_uniform_widths(self, small_census, rng):
        gen = WorkloadGenerator(
            small_census, WorkloadConfig(exponential_width_probability=0.0)
        )
        wl = gen.generate(20, rng)
        assert len(wl) == 20


class TestDiscretizerBinnedEquality:
    def test_equality_on_binned_column_is_partial(self, rng):
        """An equality on a quantile-binned wide column covers at most
        one bin, with weight shrinking as the bin widens."""
        values = rng.uniform(0, 1000, size=10_000)
        disc = ColumnDiscretizer(values, max_bins=16)
        assert not disc.exact
        w = disc.predicate_weights(Predicate(0, 500.0, 500.0))
        assert np.count_nonzero(w) == 1
        assert 0.0 < w.max() <= 1.0


class TestComposedWrappers:
    def test_guard_around_ensemble(self, small_synthetic):
        """LogicalGuard composes over a hierarchical ensemble."""
        from repro.estimators.learned import HierarchicalEstimator
        from repro.estimators.traditional import (
            PostgresEstimator,
            SamplingEstimator,
        )
        from repro.rules.enforce import LogicalGuard

        inner = HierarchicalEstimator(PostgresEstimator(), SamplingEstimator())
        guarded = LogicalGuard(inner).fit(small_synthetic)
        assert guarded.estimate(Query((Predicate(0, 9.0, 1.0),))) == 0.0
        q = Query((Predicate(0, 0.0, 50.0),))
        assert guarded.estimate(q) == guarded.estimate(q)

    def test_guarded_estimator_persists(self, small_synthetic, tmp_path):
        from repro.estimators.traditional import PostgresEstimator
        from repro.persistence import load_estimator, save_estimator
        from repro.rules.enforce import LogicalGuard

        guarded = LogicalGuard(PostgresEstimator()).fit(small_synthetic)
        q = Query((Predicate(0, 0.0, 40.0),))
        expected = guarded.estimate(q)
        path = tmp_path / "guarded.repro"
        save_estimator(guarded, path)
        assert load_estimator(path).estimate(q) == pytest.approx(expected)


class TestWorkloadDeterminismAcrossProcesses:
    def test_same_seed_same_labels(self, small_census):
        a = generate_workload(small_census, 25, np.random.default_rng(123))
        b = generate_workload(small_census, 25, np.random.default_rng(123))
        np.testing.assert_array_equal(a.cardinalities, b.cardinalities)

    def test_different_seed_different_queries(self, small_census):
        a = generate_workload(small_census, 25, np.random.default_rng(1))
        b = generate_workload(small_census, 25, np.random.default_rng(2))
        assert a.queries != b.queries
