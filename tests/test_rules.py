"""Tests for the logical-rule checker (Section 6.3)."""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, Predicate, Query
from repro.rules import (
    RuleReport,
    check_all,
    check_consistency,
    check_fidelity_a,
    check_fidelity_b,
    check_monotonicity,
    check_stability,
)


class OracleEstimator(CardinalityEstimator):
    """Answers every query exactly — must satisfy every rule."""

    name = "oracle"

    def _fit(self, table, workload):
        pass

    def _estimate(self, query):
        return float(self.table.cardinality(query))


class ConstantEstimator(CardinalityEstimator):
    """Always answers the same number — breaks both fidelity rules."""

    name = "constant"

    def __init__(self, value: float = 500.0):
        super().__init__()
        self.value = value

    def _fit(self, table, workload):
        pass

    def _estimate(self, query):
        return self.value


class NoisyEstimator(CardinalityEstimator):
    """Random answers — breaks stability (and almost everything else)."""

    name = "noisy"

    def __init__(self):
        super().__init__()
        self._rng = np.random.default_rng(0)

    def _fit(self, table, workload):
        pass

    def _estimate(self, query):
        return float(self._rng.uniform(0, 1000))


class AntiMonotoneEstimator(CardinalityEstimator):
    """Estimates grow as ranges shrink — breaks monotonicity."""

    name = "anti"

    def _fit(self, table, workload):
        pass

    def _estimate(self, query):
        width = sum(
            (p.hi - p.lo) for p in query.predicates
            if p.lo is not None and p.hi is not None
        )
        return 1e6 / (1.0 + width)


class TestOracleSatisfiesEverything:
    def test_all_rules(self, small_synthetic, rng):
        est = OracleEstimator().fit(small_synthetic)
        reports = check_all(est, small_synthetic, rng, num_checks=25)
        assert all(r.satisfied for r in reports.values())


class TestViolationsDetected:
    def test_constant_breaks_fidelity(self, small_synthetic, rng):
        est = ConstantEstimator().fit(small_synthetic)
        assert not check_fidelity_a(est, small_synthetic).satisfied
        assert not check_fidelity_b(est, small_synthetic, rng).satisfied

    def test_constant_satisfies_monotonicity(self, small_synthetic, rng):
        est = ConstantEstimator().fit(small_synthetic)
        assert check_monotonicity(est, small_synthetic, rng, 20).satisfied

    def test_noisy_breaks_stability(self, small_synthetic, rng):
        est = NoisyEstimator().fit(small_synthetic)
        assert not check_stability(est, small_synthetic, rng).satisfied

    def test_anti_monotone_detected(self, small_synthetic, rng):
        est = AntiMonotoneEstimator().fit(small_synthetic)
        assert not check_monotonicity(est, small_synthetic, rng, 20).satisfied

    def test_constant_breaks_consistency(self, small_synthetic, rng):
        # est(q) = 500 but est(q1) + est(q2) = 1000.
        est = ConstantEstimator().fit(small_synthetic)
        assert not check_consistency(est, small_synthetic, rng, 20).satisfied


class TestRuleReport:
    def test_rates(self):
        report = RuleReport("monotonicity", checks=10, violations=3)
        assert report.violation_rate == pytest.approx(0.3)
        assert not report.satisfied
        assert "x" in str(report)

    def test_zero_checks(self):
        report = RuleReport("stability", checks=0, violations=0)
        assert report.violation_rate == 0.0
        assert report.satisfied


class TestPaperTable6Shape:
    """The headline result: DeepDB satisfies all rules; Naru is unstable."""

    def test_deepdb_column(self, small_synthetic, rng):
        from repro.estimators.learned import DeepDbEstimator

        est = DeepDbEstimator().fit(small_synthetic)
        reports = check_all(est, small_synthetic, rng, num_checks=20)
        assert all(r.satisfied for r in reports.values())

    def test_naru_stability_violated(self, small_synthetic, rng):
        from repro.estimators.learned import NaruEstimator

        est = NaruEstimator(epochs=2, num_samples=32).fit(small_synthetic)
        reports = check_all(est, small_synthetic, rng, num_checks=15)
        assert not reports["stability"].satisfied
        # Naru's fidelity rules hold natively (paper Table 6).
        assert reports["fidelity-a"].satisfied
        assert reports["fidelity-b"].satisfied
