"""Shared fixtures: small deterministic tables and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import Table, generate_workload
from repro.datasets import census, generate_synthetic


@pytest.fixture(autouse=True)
def _reset_observability():
    """Isolate tests from each other's process-wide telemetry."""
    obs.reset_for_tests()
    yield
    obs.reset_for_tests()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_table() -> Table:
    """A 12-row, 3-column table with known contents."""
    data = np.array(
        [
            [0, 10, 1],
            [0, 20, 1],
            [1, 20, 1],
            [1, 30, 2],
            [2, 30, 2],
            [2, 40, 2],
            [3, 40, 3],
            [3, 50, 3],
            [4, 50, 3],
            [4, 60, 1],
            [5, 60, 2],
            [5, 70, 3],
        ],
        dtype=np.float64,
    )
    return Table("tiny", data, ["a", "b", "c"], [False, False, True])


@pytest.fixture(scope="session")
def small_census() -> Table:
    return census(num_rows=2500)


@pytest.fixture(scope="session")
def small_synthetic() -> Table:
    rng = np.random.default_rng(7)
    return generate_synthetic(4000, skew=1.0, correlation=0.8, domain_size=100, rng=rng)


@pytest.fixture(scope="session")
def census_workloads(small_census):
    """(train, test) workloads over the small census table."""
    rng = np.random.default_rng(99)
    train = generate_workload(small_census, 300, rng)
    test = generate_workload(small_census, 120, rng)
    return train, test


@pytest.fixture(scope="session")
def synthetic_workloads(small_synthetic):
    rng = np.random.default_rng(98)
    train = generate_workload(small_synthetic, 300, rng)
    test = generate_workload(small_synthetic, 120, rng)
    return train, test
