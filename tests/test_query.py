"""Tests for predicates and conjunctive queries."""

import pytest

from repro.core import Predicate, Query, closed_range, equality, query_of


class TestPredicate:
    def test_requires_one_bound(self):
        with pytest.raises(ValueError):
            Predicate(0, None, None)

    def test_equality_detection(self):
        assert Predicate(0, 5, 5).is_equality
        assert not Predicate(0, 5, 6).is_equality
        assert not Predicate(0, None, 5).is_equality

    def test_open_detection(self):
        assert Predicate(0, None, 5).is_open
        assert Predicate(0, 5, None).is_open
        assert not Predicate(0, 1, 5).is_open

    def test_empty_detection(self):
        assert Predicate(0, 10, 1).is_empty
        assert not Predicate(0, 1, 10).is_empty
        assert not Predicate(0, None, 10).is_empty

    def test_contains(self):
        outer = Predicate(0, 0, 10)
        assert outer.contains(Predicate(0, 2, 8))
        assert outer.contains(Predicate(0, 0, 10))
        assert not outer.contains(Predicate(0, -1, 5))
        assert not outer.contains(Predicate(1, 2, 8))
        assert not outer.contains(Predicate(0, 2, None))

    def test_render_forms(self):
        assert Predicate(0, 5, 5).render("a") == "a = 5"
        assert Predicate(0, None, 5).render("a") == "a <= 5"
        assert Predicate(0, 5, None).render("a") == "a >= 5"
        assert Predicate(0, 1, 5).render("a") == "1 <= a <= 5"


class TestQuery:
    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError, match="at most one predicate"):
            Query((Predicate(0, 1, 2), Predicate(0, 3, 4)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Query(())

    def test_columns_and_lookup(self):
        q = query_of(closed_range(2, 1, 5), equality(0, 3))
        assert q.num_predicates == 2
        assert set(q.columns) == {0, 2}
        assert q.predicate_on(2) == Predicate(2, 1, 5)
        assert q.predicate_on(1) is None

    def test_replace(self):
        q = query_of(closed_range(0, 1, 5), equality(1, 3))
        q2 = q.replace(0, closed_range(0, 2, 4))
        assert q2.predicate_on(0) == Predicate(0, 2, 4)
        assert q2.predicate_on(1) == Predicate(1, 3, 3)
        # original untouched
        assert q.predicate_on(0) == Predicate(0, 1, 5)

    def test_to_sql(self, tiny_table):
        q = query_of(closed_range(0, 1, 3), equality(2, 1))
        sql = q.to_sql(tiny_table)
        assert sql == "SELECT COUNT(*) FROM tiny WHERE 1 <= a <= 3 AND c = 1"
