"""Tests for the unified workload generator (paper Section 3)."""

import numpy as np
import pytest

from repro.core import WorkloadConfig, WorkloadGenerator, generate_workload


class TestConfig:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            WorkloadConfig(ood_probability=1.5)

    def test_rejects_zero_predicates(self):
        with pytest.raises(ValueError):
            WorkloadConfig(min_predicates=0)

    def test_min_above_columns_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_table, WorkloadConfig(min_predicates=10))


class TestGeneratedQueries:
    def test_predicate_count_range(self, small_census, rng):
        gen = WorkloadGenerator(small_census)
        for _ in range(50):
            q = gen.generate_query(rng)
            assert 1 <= q.num_predicates <= small_census.num_columns

    def test_distinct_columns(self, small_census, rng):
        gen = WorkloadGenerator(small_census)
        q = gen.generate_query(rng)
        assert len(set(q.columns)) == q.num_predicates

    def test_categorical_columns_get_equality(self, small_census, rng):
        gen = WorkloadGenerator(small_census)
        for _ in range(100):
            q = gen.generate_query(rng)
            for p in q.predicates:
                if small_census.columns[p.column].is_categorical:
                    assert p.is_equality

    def test_data_centered_queries_nonempty(self, small_census, rng):
        """With OOD disabled, the center tuple always satisfies the query."""
        gen = WorkloadGenerator(small_census, WorkloadConfig(ood_probability=0.0))
        wl = gen.generate(60, rng)
        assert (wl.cardinalities >= 1).all()

    def test_ood_only_queries_can_be_empty(self, small_synthetic, rng):
        gen = WorkloadGenerator(
            small_synthetic, WorkloadConfig(ood_probability=1.0)
        )
        wl = gen.generate(200, rng)
        # OOD centers on correlated data produce some empty queries.
        assert (wl.cardinalities == 0).any()

    def test_bounds_stay_inside_or_open(self, small_census, rng):
        gen = WorkloadGenerator(small_census)
        for _ in range(100):
            q = gen.generate_query(rng)
            for p in q.predicates:
                col = small_census.columns[p.column]
                if p.lo is not None:
                    assert p.lo >= col.domain_min - col.domain_size
                if p.hi is not None:
                    assert p.hi <= col.domain_max + col.domain_size


class TestWorkloadContainer:
    def test_labels_match_table(self, small_census, rng):
        wl = generate_workload(small_census, 30, rng)
        recomputed = small_census.cardinalities(list(wl.queries))
        np.testing.assert_array_equal(wl.cardinalities, recomputed)

    def test_selectivities(self, small_census, rng):
        wl = generate_workload(small_census, 10, rng)
        np.testing.assert_allclose(
            wl.selectivities(small_census) * small_census.num_rows,
            wl.cardinalities,
        )

    def test_split(self, small_census, rng):
        wl = generate_workload(small_census, 20, rng)
        head, tail = wl.split(5)
        assert len(head) == 5 and len(tail) == 15
        assert head.queries == wl.queries[:5]

    def test_split_bounds(self, small_census, rng):
        wl = generate_workload(small_census, 5, rng)
        with pytest.raises(ValueError):
            wl.split(0)
        with pytest.raises(ValueError):
            wl.split(5)

    def test_determinism(self, small_census):
        a = generate_workload(small_census, 20, np.random.default_rng(5))
        b = generate_workload(small_census, 20, np.random.default_rng(5))
        assert a.queries == b.queries
