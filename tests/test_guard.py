"""Tests for the estimate guardrails (repro.guard).

Covers the three layers — provable bounds, OOD detection, quarantine —
plus their integration into the serving stack (EstimatorService,
ShardRouter, lifecycle manager) and the adversarial fault wrappers that
exercise them.
"""

import copy

import numpy as np
import pytest

from repro import obs
from repro.core import CardinalityEstimator, Predicate, Query, Table
from repro.core.workload import Workload, generate_workload
from repro.faults import CorrelatedShiftFault, DomainShiftFault, UpdateSkewFault
from repro.guard import (
    HEALTHY,
    QUARANTINED,
    BoundSketch,
    ColumnBound,
    DomainSnapshot,
    EstimateGuard,
    OodDetector,
    QuarantineMonitor,
)
from repro.lifecycle import DriftDetector, ModelLifecycleManager, PromotionGate
from repro.obs import GUARD_CLAMPED, GUARD_OOD, GUARD_QUARANTINE
from repro.serve import EstimatorService, HeuristicConstantEstimator
from repro.shard import ShardRequest, ShardRouter


class StubEstimator(CardinalityEstimator):
    """Answers a constant; fit is free."""

    def __init__(self, value: float = 5.0, name: str = "stub") -> None:
        super().__init__()
        self.value = value
        self.name = name

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return self.value


class OracleEstimator(CardinalityEstimator):
    """Answers the true cardinality — passes any promotion gate."""

    name = "oracle"

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return float(self.table.cardinality(query))


def in_range_query() -> Query:
    return Query((Predicate(0, 1.0, 3.0),))


def far_query() -> Query:
    """Entirely outside tiny_table's column-0 range [0, 5]."""
    return Query((Predicate(0, 50.0, 60.0),))


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
class TestColumnBound:
    def test_exact_mode_counts_are_exact(self):
        values = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 7.0])
        bound = ColumnBound(values)
        assert bound.exact
        assert bound.count(1.0, 3.0) == 6
        assert bound.count(None, None) == 7
        assert bound.count(4.0, 6.0) == 0
        assert bound.count(3.0, 3.0) == 3

    def test_contradictory_range_counts_zero(self):
        bound = ColumnBound(np.arange(10.0))
        assert bound.count(5.0, 2.0) == 0

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            ColumnBound(np.array([]))

    def test_bucket_mode_never_undercounts(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000)
        bound = ColumnBound(values, max_exact=16, num_buckets=32)
        assert not bound.exact
        for lo, hi in [(-1.0, 1.0), (0.0, 0.1), (-3.0, -2.5), (2.0, 9.0)]:
            true = int(((values >= lo) & (values <= hi)).sum())
            assert bound.count(lo, hi) >= true

    def test_bucket_mode_disjoint_range_is_zero(self):
        bound = ColumnBound(np.arange(10000.0), max_exact=16)
        assert bound.count(-50.0, -10.0) == 0
        assert bound.count(20000.0, 30000.0) == 0

    def test_add_keeps_exact_mode_exact(self):
        bound = ColumnBound(np.array([1.0, 2.0, 2.0]))
        bound.add(np.array([2.0, 5.0]))
        assert bound.total == 5
        assert bound.count(2.0, 2.0) == 3
        assert bound.count(5.0, 5.0) == 1

    def test_add_keeps_bucket_mode_sound(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 10.0, size=3000)
        bound = ColumnBound(values, max_exact=16)
        appended = rng.uniform(-5.0, 15.0, size=500)  # beyond old extremes
        bound.add(appended)
        both = np.concatenate([values, appended])
        for lo, hi in [(-5.0, 0.0), (3.0, 7.0), (9.0, 15.0), (None, None)]:
            lo_v = -np.inf if lo is None else lo
            hi_v = np.inf if hi is None else hi
            true = int(((both >= lo_v) & (both <= hi_v)).sum())
            assert bound.count(lo, hi) >= true

    def test_nbytes_is_a_sketch(self):
        bound = ColumnBound(np.arange(100000.0), max_exact=16, num_buckets=64)
        assert bound.nbytes() < 4096


class TestBoundSketch:
    def test_upper_bound_holds_on_known_table(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        for query in [
            in_range_query(),
            Query((Predicate(0, 1.0, 3.0), Predicate(1, 20.0, 40.0))),
            Query((Predicate(2, 2.0, 2.0),)),
        ]:
            assert sketch.upper_bound(query) >= tiny_table.cardinality(query)

    def test_full_domain_predicate_bounds_to_num_rows(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        whole = Query((Predicate(0, -100.0, 100.0),))
        assert sketch.upper_bound(whole) == tiny_table.num_rows

    def test_empty_predicate_bounds_to_zero(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        assert sketch.upper_bound(Query((Predicate(0, 3.0, 1.0),))) == 0.0

    def test_lower_bound_is_zero(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        assert sketch.lower_bound(in_range_query()) == 0.0
        assert sketch.bounds(in_range_query())[0] == 0.0

    def test_min_over_predicates_beats_single_column(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        # col 0 in [0, 1] matches 4 rows; col 1 in [10, 10] matches 1.
        query = Query((Predicate(0, 0.0, 1.0), Predicate(1, 10.0, 10.0)))
        assert sketch.upper_bound(query) == 1.0

    def test_update_with_appended_rows_stays_sound(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        rows = np.array([[9.0, 90.0, 1.0], [9.0, 95.0, 2.0]])
        bigger = tiny_table.append_rows(rows)
        sketch.update(bigger, rows)
        assert sketch.num_rows == bigger.num_rows
        wide = Query((Predicate(0, 0.0, 10.0),))
        assert sketch.upper_bound(wide) >= bigger.cardinality(wide)
        tall = Query((Predicate(0, 9.0, 9.0),))
        assert sketch.upper_bound(tall) >= 2

    def test_update_without_delta_rebuilds(self, tiny_table):
        sketch = BoundSketch(tiny_table)
        rows = np.array([[9.0, 90.0, 1.0]])
        bigger = tiny_table.append_rows(rows)
        sketch.update(bigger, None)
        assert sketch.num_rows == bigger.num_rows
        q = Query((Predicate(0, 9.0, 9.0),))
        assert sketch.upper_bound(q) >= 1


# ----------------------------------------------------------------------
# OOD detection
# ----------------------------------------------------------------------
class TestOodDetection:
    def detector(self, table, workload=None, threshold=0.25):
        return OodDetector(DomainSnapshot.capture(table, workload), threshold)

    def test_in_distribution_query_scores_zero(self, tiny_table):
        verdict = self.detector(tiny_table).score(in_range_query())
        assert verdict.score == 0.0
        assert not verdict.is_ood
        assert verdict.reasons == ()

    def test_range_overshoot_is_flagged(self, tiny_table):
        verdict = self.detector(tiny_table).score(far_query())
        assert verdict.is_ood
        assert any("range overshoot" in r for r in verdict.reasons)

    def test_arity_overshoot_is_flagged(self, tiny_table):
        workload = Workload(
            queries=[in_range_query()],
            cardinalities=np.array([2.0]),
        )
        detector = self.detector(tiny_table, workload)
        wide = Query(
            (
                Predicate(0, 1.0, 3.0),
                Predicate(1, 20.0, 40.0),
                Predicate(2, 1.0, 2.0),
            )
        )
        verdict = detector.score(wide)
        assert any("arity" in r for r in verdict.reasons)
        assert verdict.score >= 0.25 * 2

    def test_width_overshoot_is_flagged(self, tiny_table):
        narrow = Workload(
            queries=[Query((Predicate(1, 30.0, 35.0),))],
            cardinalities=np.array([1.0]),
        )
        detector = self.detector(tiny_table, narrow)
        wide = Query((Predicate(1, 10.0, 70.0),))
        assert any("width" in r for r in detector.score(wide).reasons)

    def test_negative_threshold_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            self.detector(tiny_table, threshold=-0.1)

    def test_custom_threshold_changes_is_ood(self, tiny_table):
        workload = Workload(
            queries=[in_range_query()], cardinalities=np.array([2.0])
        )
        strict = self.detector(tiny_table, workload, threshold=0.0)
        lax = self.detector(tiny_table, workload, threshold=1e9)
        probe = Query((Predicate(0, -1.0, 3.0),))  # slight overhang
        assert strict.is_ood(probe)
        assert not lax.is_ood(probe)


# ----------------------------------------------------------------------
# The guard facade
# ----------------------------------------------------------------------
class TestEstimateGuard:
    def test_unfitted_guard_is_a_noop(self):
        guard = EstimateGuard()
        query = in_range_query()
        assert guard.clamp(query, 1e12) == (1e12, None)
        assert not guard.is_ood(query)
        assert guard.bounds(query) is None
        assert guard.ood_verdict(query) is None

    def test_clamp_above_upper(self, tiny_table):
        guard = EstimateGuard()
        guard.fit(tiny_table)
        query = Query((Predicate(0, 1.0, 1.0),))  # 2 matching rows
        value, reason = guard.clamp(query, 10.0)
        assert (value, reason) == (2.0, "above-upper")
        assert guard.clamped == 1

    def test_clamp_below_lower(self, tiny_table):
        guard = EstimateGuard()
        guard.fit(tiny_table)
        value, reason = guard.clamp(in_range_query(), -4.0)
        assert (value, reason) == (0.0, "below-lower")

    def test_in_bounds_value_passes_through(self, tiny_table):
        guard = EstimateGuard()
        guard.fit(tiny_table)
        assert guard.clamp(in_range_query(), 3.0) == (3.0, None)
        assert guard.clamped == 0

    def test_disabled_pieces_stay_off(self, tiny_table):
        guard = EstimateGuard(bounds_enabled=False, ood_enabled=False)
        guard.fit(tiny_table)
        assert guard.sketch is None
        assert guard.detector is None
        assert guard.clamp(in_range_query(), 1e12)[1] is None
        assert not guard.is_ood(far_query())

    def test_update_folds_into_sketch(self, tiny_table):
        guard = EstimateGuard()
        guard.fit(tiny_table)
        rows = np.array([[9.0, 90.0, 1.0]])
        bigger = tiny_table.append_rows(rows)
        guard.update(bigger, rows)
        q = Query((Predicate(0, 9.0, 9.0),))
        assert guard.sketch.upper_bound(q) >= 1
        # The domain snapshot follows the new table's ranges.
        assert not guard.is_ood(q)

    def test_observe_qerror_relays_to_monitor(self):
        class SpyMonitor:
            def __init__(self):
                self.samples = []

            def observe(self, tenant, q):
                self.samples.append((tenant, q))

        guard = EstimateGuard()
        guard.observe_qerror("t0", 5.0)  # no monitor: silently fine
        guard.monitor = SpyMonitor()
        guard.observe_qerror("t1", 7.0)
        assert guard.monitor.samples == [("t1", 7.0)]


# ----------------------------------------------------------------------
# Guarded EstimatorService
# ----------------------------------------------------------------------
class TestGuardedService:
    def service(self, tiers, table, **kwargs):
        guard = EstimateGuard()
        svc = EstimatorService(tiers, deadline_ms=None, guard=guard, **kwargs)
        svc.fit(table)
        return svc, guard

    def test_ood_query_skips_learned_primary(self, tiny_table):
        svc, guard = self.service(
            [StubEstimator(4.0, name="learned"), StubEstimator(9.0, name="fb")],
            tiny_table,
        )
        served = svc.serve(far_query())
        assert ("guard", "ood-reroute") in served.attempts
        assert ("learned", "skipped-ood") in served.attempts
        assert served.tier == "fb"
        assert guard.ood_rerouted == 1
        registry = obs.get_registry()
        assert registry.counter(GUARD_OOD).value(action="reroute") == 1.0

    def test_ood_skip_needs_a_fallback(self, tiny_table):
        # A single-tier chain must still answer: no reroute possible.
        svc, _ = self.service([StubEstimator(4.0, name="only")], tiny_table)
        served = svc.serve(far_query())
        assert ("guard", "ood-reroute") not in served.attempts
        assert served.tier == "only"

    def test_in_bounds_answer_unchanged(self, tiny_table):
        svc, _ = self.service([StubEstimator(2.0, name="ok")], tiny_table)
        served = svc.serve(in_range_query())
        assert served.estimate == 2.0
        assert served.attempts[-1][1] == "served"

    def test_bound_violation_clamps_and_counts(self, tiny_table):
        query = Query((Predicate(0, 1.0, 1.0),))  # provable upper bound 2
        svc, guard = self.service(
            [StubEstimator(10.0, name="wild")], tiny_table
        )
        served = svc.serve(query)
        assert served.estimate == 2.0
        assert served.attempts[-1] == ("wild", "guard-clamped")
        assert svc.health().tiers[0].guard_clamped == 1
        assert guard.clamped == 1
        registry = obs.get_registry()
        assert registry.counter(GUARD_CLAMPED).value(reason="above-upper") == 1.0
        assert obs.get_events().events("guard.clamp")

    def test_batch_path_clamps_too(self, tiny_table):
        query = Query((Predicate(0, 1.0, 1.0),))
        svc, _ = self.service([StubEstimator(10.0, name="wild")], tiny_table)
        served = svc.serve_batch([query, in_range_query()])
        assert served[0].estimate == 2.0
        assert served[0].attempts[-1][1] == "guard-clamped"

    def test_batch_path_reroutes_ood(self, tiny_table):
        svc, _ = self.service(
            [StubEstimator(4.0, name="learned"), StubEstimator(9.0, name="fb")],
            tiny_table,
        )
        served = svc.serve_batch([far_query(), in_range_query()])
        assert ("guard", "ood-reroute") in served[0].attempts
        assert served[0].tier == "fb"
        assert served[1].tier == "learned"

    def test_record_actual_labels_ood_exemplars(self, tiny_table):
        svc, _ = self.service(
            [StubEstimator(4.0, name="learned"), StubEstimator(9.0, name="fb")],
            tiny_table,
        )
        served = svc.serve(far_query())
        svc.record_actual(far_query(), served, 4000.0, tenant="t0")
        board = obs.get_exemplars().worst_qerror("t0")
        assert board, "a 4000x q-error must make the board"
        assert board[0].estimator.startswith("ood->")

    def test_record_actual_feeds_quarantine(self, tiny_table):
        svc, guard = self.service(
            [StubEstimator(1.0, name="learned"), StubEstimator(9.0, name="fb")],
            tiny_table,
        )
        guard.monitor = QuarantineMonitor(
            svc,
            [in_range_query()],
            qerror_threshold=4.0,
            window=4,
            min_samples=2,
            breach_fraction=1.0,
        )
        served = svc.serve(in_range_query())
        for _ in range(2):
            svc.record_actual(in_range_query(), served, 1000.0)
        assert guard.monitor.state == QUARANTINED

    def test_guardless_service_unchanged(self, tiny_table):
        svc = EstimatorService(
            [StubEstimator(4.0, name="plain")], deadline_ms=None
        )
        svc.fit(tiny_table)
        served = svc.serve(far_query())
        assert served.estimate == 4.0
        assert all(stage != "guard" for stage, _ in served.attempts)


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
class TestQuarantineMonitor:
    def make(self, table, primary=None, **kwargs):
        svc = EstimatorService(
            [primary or StubEstimator(1.0, name="suspect")],
            deadline_ms=None,
        )
        svc.fit(table)
        kwargs.setdefault("qerror_threshold", 4.0)
        kwargs.setdefault("window", 8)
        kwargs.setdefault("min_samples", 4)
        kwargs.setdefault("breach_fraction", 0.5)
        monitor = QuarantineMonitor(svc, [in_range_query()], **kwargs)
        return svc, monitor

    def test_parameter_validation(self, tiny_table):
        svc = EstimatorService([StubEstimator()], deadline_ms=None)
        svc.fit(tiny_table)
        probe = [in_range_query()]
        with pytest.raises(ValueError):
            QuarantineMonitor(svc, probe, qerror_threshold=0.5)
        with pytest.raises(ValueError):
            QuarantineMonitor(svc, probe, breach_fraction=0.0)
        with pytest.raises(ValueError):
            QuarantineMonitor(svc, probe, window=2, min_samples=4)
        with pytest.raises(ValueError):
            QuarantineMonitor(svc, probe, probe_interval=0)

    def test_sustained_violation_demotes(self, tiny_table):
        svc, monitor = self.make(tiny_table)
        generation = svc.model_generation
        for _ in range(4):
            monitor.observe("default", 100.0)
        assert monitor.state == QUARANTINED
        assert monitor.demotions == 1
        assert svc.primary_estimator.name != "suspect"
        assert svc.model_generation == generation + 1
        assert monitor.status().offending_tenant == "default"
        registry = obs.get_registry()
        assert registry.counter(GUARD_QUARANTINE).value(action="demote") == 1.0

    def test_single_outlier_does_not_demote(self, tiny_table):
        svc, monitor = self.make(tiny_table)
        monitor.observe("default", 1e6)
        for _ in range(7):
            monitor.observe("default", 1.0)
        assert monitor.state == HEALTHY

    def test_windows_are_per_tenant(self, tiny_table):
        svc, monitor = self.make(tiny_table, breach_fraction=1.0)
        for _ in range(3):
            monitor.observe("alpha", 100.0)
            monitor.observe("beta", 1.0)
        assert monitor.state == HEALTHY  # neither window is full and bad
        monitor.observe("alpha", 100.0)
        assert monitor.state == QUARANTINED
        assert monitor.status().offending_tenant == "alpha"

    def test_probe_readmits_a_healthy_model(self, tiny_table):
        svc, monitor = self.make(
            tiny_table, primary=OracleEstimator(), probe_interval=3
        )
        monitor.quarantine("default")
        demoted_generation = svc.model_generation
        # The oracle answers probes perfectly; after probe_interval
        # feedback samples the gate re-admits it.
        for _ in range(3):
            monitor.observe("default", 1.0)
        assert monitor.state == HEALTHY
        assert monitor.readmissions == 1
        assert svc.primary_estimator.name == "oracle"
        assert svc.model_generation == demoted_generation + 1
        registry = obs.get_registry()
        assert registry.counter(GUARD_QUARANTINE).value(action="readmit") == 1.0

    def test_failed_probe_keeps_quarantine(self, tiny_table):
        # A constant-1 suspect loses the gate against the heuristic.
        svc, monitor = self.make(tiny_table, probe_interval=2)
        monitor.quarantine("default")
        for _ in range(2):
            monitor.observe("default", 1.0)
        assert monitor.state == QUARANTINED
        assert monitor.probes_failed >= 1

    def test_double_quarantine_is_idempotent(self, tiny_table):
        svc, monitor = self.make(tiny_table)
        monitor.quarantine("a")
        monitor.quarantine("b")
        assert monitor.demotions == 1
        assert monitor.status().offending_tenant == "a"

    def test_on_promotion_clears_quarantine(self, tiny_table):
        svc, monitor = self.make(tiny_table)
        monitor.quarantine("default")
        monitor.on_promotion()
        assert monitor.state == HEALTHY
        assert monitor.status().offending_tenant is None

    def test_readmission_noop_when_healthy(self, tiny_table):
        svc, monitor = self.make(tiny_table)
        assert monitor.attempt_readmission() is None


class TestLifecycleQuarantineHook:
    def test_promotion_supersedes_quarantine(
        self, small_census, census_workloads, tmp_path
    ):
        train, _ = census_workloads
        probe = Workload(
            queries=train.queries[:40], cardinalities=train.cardinalities[:40]
        )
        svc = EstimatorService(
            [OracleEstimator(), HeuristicConstantEstimator()], deadline_ms=None
        )
        svc.fit(small_census, train)
        monitor = QuarantineMonitor(svc, list(probe.queries))
        manager = ModelLifecycleManager(
            svc,
            OracleEstimator,
            DriftDetector(probe),
            checkpoint_dir=tmp_path,
            gate=PromotionGate(list(probe.queries), rule_checks=0),
            quarantine=monitor,
        )
        monitor.quarantine("default")
        assert monitor.state == QUARANTINED
        # The safe tier is now the incumbent; a freshly gated candidate
        # that beats it supersedes the standing quarantine.
        report = manager.force_retrain(small_census, train)
        assert report.promoted
        assert monitor.state == HEALTHY


# ----------------------------------------------------------------------
# Guarded sharded serving
# ----------------------------------------------------------------------
class TestGuardedShard:
    def router(self, table, worker, guard, **kwargs):
        primary = StubEstimator(4.0, name="clean")
        primary.fit(table)
        fallback = HeuristicConstantEstimator()
        fallback.fit(table)
        return ShardRouter(
            primary,
            [fallback],
            num_shards=1,
            mode="inline",
            worker_estimator=worker,
            guard=guard,
            **kwargs,
        )

    def test_worker_bound_violation_is_clamped(self, tiny_table):
        guard = EstimateGuard(ood_enabled=False)
        guard.fit(tiny_table)
        worker = StubEstimator(10.0, name="wild-worker")
        worker.fit(tiny_table)
        query = Query((Predicate(0, 1.0, 1.0),))  # provable upper bound 2
        with self.router(tiny_table, worker, guard) as router:
            served = router.serve_batch([ShardRequest(query=query)])
        assert served[0].estimate == 2.0
        assert served[0].attempts[-1][1] == "guard-clamped"
        registry = obs.get_registry()
        assert registry.counter(GUARD_CLAMPED).value(reason="above-upper") == 1.0

    def test_ood_queries_split_to_fallback_chain(self, tiny_table):
        guard = EstimateGuard()
        guard.fit(tiny_table)
        worker = StubEstimator(4.0, name="worker")
        worker.fit(tiny_table)
        with self.router(tiny_table, worker, guard) as router:
            served = router.serve_batch(
                [
                    ShardRequest(query=far_query()),
                    ShardRequest(query=in_range_query()),
                ]
            )
        # The OOD query never reached the worker: the in-process chain
        # (whose guard skips the learned primary) answered it.
        assert ("guard", "ood-reroute") in served[0].attempts
        assert ("guard", "ood-reroute") not in served[1].attempts
        assert router.totals().fallback_served == 1

    def test_guardless_router_unchanged(self, tiny_table):
        worker = StubEstimator(4.0, name="worker")
        worker.fit(tiny_table)
        with self.router(tiny_table, worker, None) as router:
            served = router.serve_batch(
                [ShardRequest(query=q) for q in [in_range_query(), far_query()]]
            )
        assert [s.estimate for s in served] == [4.0, 4.0]


# ----------------------------------------------------------------------
# Adversarial faults
# ----------------------------------------------------------------------
class TestAdversarialFaults:
    def fitted_stub(self, table, value=4.0):
        stub = StubEstimator(value)
        stub.fit(table)
        return stub

    def test_correlated_shift_inflates_per_predicate(self, tiny_table):
        fault = CorrelatedShiftFault(self.fitted_stub(tiny_table), magnitude=8.0)
        fault.fit(tiny_table)
        one = Query((Predicate(0, 1.0, 3.0),))
        two = Query((Predicate(0, 1.0, 3.0), Predicate(1, 20.0, 40.0)))
        assert fault.estimate(one) == 4.0 * 8.0
        assert fault.estimate(two) == 4.0 * 64.0

    def test_correlated_shift_underestimate_direction(self, tiny_table):
        fault = CorrelatedShiftFault(
            self.fitted_stub(tiny_table, 64.0), magnitude=0.5
        )
        fault.fit(tiny_table)
        assert fault.estimate(in_range_query()) == 32.0

    def test_correlated_shift_rejects_identity_magnitude(self, tiny_table):
        for magnitude in (1.0, 0.0, -2.0):
            with pytest.raises(ValueError):
                CorrelatedShiftFault(
                    self.fitted_stub(tiny_table), magnitude=magnitude
                )

    def test_until_closes_the_incident_window(self, tiny_table):
        fault = CorrelatedShiftFault(
            self.fitted_stub(tiny_table), magnitude=8.0, after=1, until=3
        )
        fault.fit(tiny_table)
        answers = [fault.estimate(in_range_query()) for _ in range(5)]
        assert answers == [4.0, 32.0, 32.0, 4.0, 4.0]
        assert fault.faults_fired == 2

    def test_until_before_after_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            CorrelatedShiftFault(
                self.fitted_stub(tiny_table), magnitude=8.0, after=5, until=3
            )

    def test_domain_shift_translates_the_query(self, small_census):
        oracle = OracleEstimator()
        oracle.fit(small_census)
        fault = DomainShiftFault(oracle, shift_fraction=0.5)
        fault.fit(small_census)
        column = small_census.data[:, 0]
        span = float(column.max() - column.min())
        lo, hi = float(column.min()), float(column.min()) + 0.1 * span
        query = Query((Predicate(0, lo, hi),))
        shifted = Query((Predicate(0, lo + 0.5 * span, hi + 0.5 * span),))
        assert fault.estimate(query) == float(small_census.cardinality(shifted))

    def test_domain_shift_rejects_zero_shift(self, tiny_table):
        with pytest.raises(ValueError):
            DomainShiftFault(self.fitted_stub(tiny_table), shift_fraction=0.0)

    def test_update_skew_feeds_model_a_biased_slice(self, tiny_table):
        class RecordingEstimator(StubEstimator):
            def _update(self, table, appended, workload) -> None:
                self.seen_table = table
                self.seen_appended = appended
                self.seen_workload = workload

        inner = RecordingEstimator()
        inner.fit(tiny_table)
        fault = UpdateSkewFault(inner, column=0)
        fault.fit(tiny_table)
        rows = np.array(
            [[1.0, 10.0, 1.0], [2.0, 20.0, 2.0], [30.0, 30.0, 3.0], [40.0, 40.0, 1.0]]
        )
        bigger = tiny_table.append_rows(rows)
        workload = Workload(
            queries=[in_range_query()],
            cardinalities=bigger.cardinalities([in_range_query()]),
        )
        fault.update(bigger, rows, workload)
        assert fault.updates_skewed == 1
        # Only the at-or-below-median half of the append reached the model.
        assert len(inner.seen_appended) == 2
        assert inner.seen_table.num_rows == tiny_table.num_rows + 2
        assert float(inner.seen_table.data[:, 0].max()) < 30.0
        # The training labels were recomputed against the skewed table.
        expected = inner.seen_table.cardinalities([in_range_query()])
        assert inner.seen_workload.cardinalities == pytest.approx(expected)

    def test_update_skew_passes_through_empty_updates(self, tiny_table):
        inner = self.fitted_stub(tiny_table)
        fault = UpdateSkewFault(inner)
        fault.fit(tiny_table)
        fault.update(tiny_table, None, None)
        assert fault.updates_skewed == 0


# ----------------------------------------------------------------------
# Guardrails end-to-end: adversarial fault meets guarded service
# ----------------------------------------------------------------------
class TestGuardrailsEndToEnd:
    def test_bounds_contain_a_correlated_shift(self, small_census, census_workloads):
        train, test = census_workloads
        oracle = OracleEstimator()
        oracle.fit(small_census)
        wild = CorrelatedShiftFault(copy.deepcopy(oracle), magnitude=50.0)
        guard = EstimateGuard(ood_enabled=False)
        svc = EstimatorService([wild], deadline_ms=None, guard=guard)
        svc.fit(small_census, train)
        worst = 1.0
        for query, actual in zip(test.queries[:50], test.cardinalities[:50]):
            served = svc.serve(query)
            if actual > 0:
                worst = max(worst, served.estimate / actual)
        # Every inflated answer was pulled down to its provable ceiling.
        assert guard.clamped > 0
        # The unguarded fault inflates the (perfect) inner estimate by
        # 50**num_predicates, so its worst q-error is exactly that.
        unguarded_worst = max(
            50.0 ** q.num_predicates
            for q, a in zip(test.queries[:50], test.cardinalities[:50])
            if a > 0
        )
        assert worst < unguarded_worst / 10.0
