"""Tests for the STHoles query-driven histogram."""

import numpy as np
import pytest

from repro.core import Predicate, Query, qerrors
from repro.estimators.traditional import QuickSelEstimator, StHolesEstimator


class TestStHoles:
    @pytest.fixture(scope="class")
    def fitted(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        return StHolesEstimator(max_buckets=300).fit(small_synthetic, train)

    def test_requires_workload(self, small_synthetic):
        with pytest.raises(ValueError):
            StHolesEstimator().fit(small_synthetic)

    def test_bucket_budget_respected(self, fitted):
        assert fitted.num_buckets <= 300

    def test_root_frequency_conserved(self, fitted, small_synthetic):
        """Total frequency across buckets equals the table size."""
        total = sum(b.frequency for b in fitted._root.walk())
        assert total == pytest.approx(small_synthetic.num_rows, rel=1e-6)

    def test_children_disjoint(self, fitted):
        for bucket in fitted._root.walk():
            kids = bucket.children
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    assert kids[i].intersect(kids[j].lows, kids[j].highs) is None

    def test_full_domain_estimate(self, fitted, small_synthetic):
        preds = tuple(
            Predicate(i, c.domain_min, c.domain_max)
            for i, c in enumerate(small_synthetic.columns)
        )
        est = fitted.estimate(Query(preds))
        assert est == pytest.approx(small_synthetic.num_rows, rel=0.05)

    def test_empty_predicate(self, fitted):
        assert fitted.estimate(Query((Predicate(0, 90.0, 10.0),))) == 0.0

    def test_beats_trivial_baseline(self, fitted, synthetic_workloads):
        _, test = synthetic_workloads
        errors = qerrors(
            fitted.estimate_many(list(test.queries)), test.cardinalities
        )
        baseline = qerrors(np.ones(len(test)), test.cardinalities)
        geo = lambda e: float(np.exp(np.log(e).mean()))
        assert geo(errors) < geo(baseline)

    def test_feedback_improves_over_root_only(
        self, small_synthetic, synthetic_workloads
    ):
        """A refined histogram beats the single uniform root bucket."""
        train, test = synthetic_workloads
        refined = StHolesEstimator(max_buckets=300).fit(small_synthetic, train)
        root_only = StHolesEstimator(max_buckets=1).fit(small_synthetic, train)
        queries = list(test.queries)
        geo = lambda est: float(
            np.exp(
                np.log(
                    qerrors(est.estimate_many(queries), test.cardinalities)
                ).mean()
            )
        )
        assert geo(refined) < geo(root_only)

    def test_quicksel_beats_stholes(
        self, small_synthetic, synthetic_workloads
    ):
        """The claim the paper cites from QuickSel's evaluation."""
        train, test = synthetic_workloads
        stholes = StHolesEstimator().fit(small_synthetic, train)
        quicksel = QuickSelEstimator(num_kernels=100).fit(small_synthetic, train)
        queries = list(test.queries)
        p95 = lambda est: float(
            np.percentile(
                qerrors(est.estimate_many(queries), test.cardinalities), 95
            )
        )
        assert p95(quicksel) <= p95(stholes) * 1.5

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            StHolesEstimator(max_buckets=0)
