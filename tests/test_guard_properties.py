"""Property tests: the bound sketch's upper bound is *provable*.

The whole value of :class:`repro.guard.BoundSketch` is the inequality

    upper_bound(q)  >=  true cardinality of q

holding for every query — including out-of-distribution ones and
queries against an updated table.  These tests hammer that invariant
with 1000+ seeded generated cases across exact-mode, bucket-mode and
real-data tables; a single violation is a soundness bug, not noise.
"""

import numpy as np
import pytest

from repro.core import Table, generate_workload
from repro.core.workload import WorkloadConfig
from repro.datasets import census, generate_synthetic
from repro.datasets.updates import apply_update
from repro.guard import BoundSketch

#: queries per (table, phase) cell; 3 tables x 2 phases x 200 = 1200 cases
CASES_PER_CELL = 200

#: every query style, with a heavy OOD share — the bound must hold
#: exactly where the learned models break
CONFIG = WorkloadConfig(ood_probability=0.5)


def exact_mode_table() -> Table:
    """Low-cardinality columns: every ColumnBound stays exact."""
    rng = np.random.default_rng(7)
    return generate_synthetic(2000, skew=1.2, correlation=0.6, domain_size=20, rng=rng)


def bucket_mode_table() -> Table:
    """Continuous columns force the equi-depth bucket mode."""
    rng = np.random.default_rng(11)
    data = np.column_stack(
        [
            rng.normal(0.0, 5.0, size=6000),
            rng.exponential(3.0, size=6000),
            rng.uniform(-100.0, 100.0, size=6000),
        ]
    )
    return Table("continuous", data, ["n", "e", "u"])


def census_table() -> Table:
    return census(num_rows=2500)


TABLES = {
    "exact": exact_mode_table,
    "bucket": bucket_mode_table,
    "census": census_table,
}


def _seed(kind: str) -> int:
    # str hash() is salted per process; this is stable across runs.
    return int.from_bytes(kind.encode(), "little") % (2**31)


def assert_sound(sketch: BoundSketch, table: Table, workload) -> None:
    uppers = np.array([sketch.upper_bound(q) for q in workload.queries])
    actuals = np.asarray(workload.cardinalities, dtype=np.float64)
    violations = np.flatnonzero(uppers < actuals)
    assert violations.size == 0, (
        f"{violations.size} bound violations; first: "
        f"query={workload.queries[violations[0]]!r} "
        f"upper={uppers[violations[0]]} actual={actuals[violations[0]]}"
    )
    # The bound is also never vacuous: it may not exceed the table size.
    assert np.all(uppers <= table.num_rows)


@pytest.mark.parametrize("kind", sorted(TABLES))
def test_upper_bound_holds_for_generated_queries(kind):
    table = TABLES[kind]()
    sketch = BoundSketch(table, max_exact=64 if kind == "bucket" else 4096)
    if kind == "bucket":
        assert any(not c.exact for c in sketch._columns)
    rng = np.random.default_rng(_seed(kind))
    workload = generate_workload(table, CASES_PER_CELL, rng, CONFIG)
    assert_sound(sketch, table, workload)


@pytest.mark.parametrize("kind", sorted(TABLES))
def test_upper_bound_holds_after_update(kind):
    table = TABLES[kind]()
    sketch = BoundSketch(table, max_exact=64 if kind == "bucket" else 4096)
    rng = np.random.default_rng(_seed(kind) + 1)
    new_table, appended = apply_update(table, rng, fraction=0.3)
    sketch.update(new_table, appended)
    workload = generate_workload(new_table, CASES_PER_CELL, rng, CONFIG)
    assert_sound(sketch, new_table, workload)


def test_bound_stays_sound_across_repeated_updates():
    """Soundness survives *cumulative* folds, not just one."""
    table = exact_mode_table()
    sketch = BoundSketch(table)
    rng = np.random.default_rng(42)
    for _ in range(3):
        table, appended = apply_update(table, rng, fraction=0.2)
        sketch.update(table, appended)
    workload = generate_workload(table, 100, rng, CONFIG)
    assert_sound(sketch, table, workload)
