"""Tests for the estimator registry and scale presets."""

import pytest

from repro import (
    LEARNED_NAMES,
    TRADITIONAL_NAMES,
    Scale,
    estimator_names,
    make_estimator,
    make_learned,
    make_traditional,
)


class TestScale:
    def test_presets_exist(self):
        for name in ("ci", "default", "paper"):
            scale = Scale.from_name(name)
            assert scale.name == name

    def test_preset_ordering(self):
        ci, default, paper = Scale.ci(), Scale.default(), Scale.paper()
        assert ci.train_queries < default.train_queries < paper.train_queries
        assert ci.nn_epochs < default.nn_epochs < paper.nn_epochs
        assert ci.synthetic_rows < default.synthetic_rows < paper.synthetic_rows

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            Scale.from_name("huge")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert Scale.from_environment().name == "ci"
        monkeypatch.delenv("REPRO_SCALE")
        assert Scale.from_environment("paper").name == "paper"


class TestRegistry:
    def test_thirteen_estimators(self):
        assert len(estimator_names()) == 13
        assert len(TRADITIONAL_NAMES) == 8
        assert len(LEARNED_NAMES) == 5

    def test_every_name_constructs(self):
        for name in estimator_names():
            est = make_estimator(name, Scale.ci())
            assert est.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            make_estimator("oracle")

    def test_typo_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'naru'"):
            make_estimator("nru")
        with pytest.raises(KeyError, match="did you mean 'postgres'"):
            make_estimator("postgress")

    def test_far_off_name_gets_the_full_list(self):
        with pytest.raises(KeyError, match="choose from"):
            make_estimator("zzzzzz")

    def test_heuristic_tier_constructs(self):
        est = make_estimator("heuristic")
        assert est.name == "heuristic"
        assert not est.requires_workload

    def test_group_constructors(self):
        assert [e.name for e in make_traditional(Scale.ci())] == TRADITIONAL_NAMES
        assert [e.name for e in make_learned(Scale.ci())] == LEARNED_NAMES

    def test_scale_affects_epochs(self):
        small = make_estimator("naru", Scale.ci())
        large = make_estimator("naru", Scale.paper())
        assert small.epochs < large.epochs

    def test_make_lifecycle_manager_wires_the_loop(self, tmp_path):
        import numpy as np

        from repro import generate_workload, make_lifecycle_manager
        from repro.datasets import census

        table = census(num_rows=500)
        rng = np.random.default_rng(0)
        train = generate_workload(table, 60, rng)
        probe = generate_workload(table, 20, rng)
        manager = make_lifecycle_manager(
            "lw-nn", table, train, probe, tmp_path, scale=Scale.ci()
        )
        assert manager.incumbent.name == "lw-nn"
        assert manager.detector.has_baseline
        assert manager.generation == 0
        report = manager.on_update(table, table.data[:0], train)
        assert report.state == "no-drift"

    def test_query_driven_flags(self):
        flags = {
            name: make_estimator(name, Scale.ci()).requires_workload
            for name in estimator_names()
        }
        assert flags["mscn"] and flags["lw-xgb"] and flags["lw-nn"]
        assert flags["quicksel"] and flags["kde-fb"]
        assert not flags["naru"] and not flags["deepdb"]
        assert not flags["postgres"] and not flags["sampling"]


class TestGuardedServiceFactory:
    def build(self, **kwargs):
        import numpy as np

        from repro import generate_workload, make_guarded_service
        from repro.datasets import census

        table = census(num_rows=500)
        rng = np.random.default_rng(3)
        train = generate_workload(table, 40, rng)
        return table, train, make_guarded_service(
            "sampling", table=table, workload=train, **kwargs
        )

    def test_builds_a_guarded_fitted_chain(self):
        table, train, service = self.build()
        assert service.guard is not None
        assert service.guard.sketch is not None  # fit reached the guard
        assert service.guard.monitor is None  # no probe workload given
        served = service.serve(train.queries[0])
        assert 0.0 <= served.estimate <= table.num_rows

    def test_probe_workload_attaches_quarantine(self):
        table, train, service = self.build(
            probe_workload=None, quarantine_kwargs=None
        )
        import numpy as np

        from repro import generate_workload, make_guarded_service
        from repro.datasets import census

        rng = np.random.default_rng(5)
        probe = generate_workload(table, 16, rng)
        service = make_guarded_service(
            "sampling",
            table=table,
            workload=train,
            probe_workload=probe,
            quarantine_kwargs={"qerror_threshold": 8.0, "window": 16},
        )
        monitor = service.guard.monitor
        assert monitor is not None
        assert monitor.service is service
        assert monitor.qerror_threshold == 8.0

    def test_guard_kwargs_reach_the_guard(self):
        _, _, service = self.build(guard_kwargs={"ood_enabled": False})
        assert service.guard.detector is None
        assert service.guard.sketch is not None


class TestFactoryTypoHints:
    def test_misspelled_factory_names_the_close_matches(self):
        from repro import registry

        with pytest.raises(
            AttributeError, match="did you mean 'make_guarded_service'"
        ):
            getattr(registry, "make_gaurded_service")

    def test_make_service_typo(self):
        from repro import registry

        with pytest.raises(AttributeError, match="did you mean 'make_service'"):
            getattr(registry, "make_servce")

    def test_unrelated_name_gets_no_hint(self):
        from repro import registry

        with pytest.raises(AttributeError) as excinfo:
            getattr(registry, "zzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_real_factories_resolve(self):
        from repro import registry

        for name in registry.FACTORY_NAMES:
            assert callable(getattr(registry, name))
