"""Tests for the DQM-D / DQM-Q estimators (paper Table 1)."""

import numpy as np
import pytest

from repro.core import Predicate, Query, qerrors
from repro.estimators.learned import DqmDEstimator, DqmQEstimator


def _geo(errors: np.ndarray) -> float:
    return float(np.exp(np.log(errors).mean()))


class TestDqmD:
    @pytest.fixture(scope="class")
    def fitted(self, small_synthetic):
        return DqmDEstimator(epochs=6, num_samples=64, num_stages=2).fit(
            small_synthetic
        )

    def test_beats_trivial_baseline(self, fitted, synthetic_workloads):
        _, test = synthetic_workloads
        errors = qerrors(
            fitted.estimate_many(list(test.queries)), test.cardinalities
        )
        baseline = qerrors(np.ones(len(test)), test.cardinalities)
        assert _geo(errors) < _geo(baseline)

    def test_empty_predicate_zero(self, fitted):
        assert fitted.estimate(Query((Predicate(0, 60.0, 40.0),))) == 0.0

    def test_model_probabilities_are_probabilities(self, fitted, rng):
        samples = rng.integers(0, 10, size=(16, 2))
        p = fitted._model_probability(samples)
        assert (p >= 0).all() and (p <= 1.0 + 1e-9).all()

    def test_model_probability_sums_to_one(self, fitted):
        """Summing P(x) over the full joint domain must give ~1."""
        cards = fitted._disc.cardinalities
        grid = np.array(
            [(a, b) for a in range(cards[0]) for b in range(cards[1])]
        )
        # Only feasible on small synthetic domains; subsample if large.
        if len(grid) > 20_000:
            pytest.skip("domain too large for exhaustive check")
        total = fitted._model_probability(grid).sum()
        assert total == pytest.approx(1.0, abs=0.01)

    def test_vegas_stages_refine(self, small_synthetic):
        """More stages must not blow up the estimate distribution."""
        one = DqmDEstimator(epochs=3, num_samples=64, num_stages=1, seed=5)
        three = DqmDEstimator(epochs=3, num_samples=64, num_stages=3, seed=5)
        one.fit(small_synthetic)
        three.fit(small_synthetic)
        q = Query((Predicate(0, 5.0, 60.0), Predicate(1, 5.0, 60.0)))
        truth = small_synthetic.cardinality(q)
        err = lambda est: qerrors(
            np.array([est.estimate(q)]), np.array([truth])
        )[0]
        assert err(three) < max(err(one) * 3.0, 50.0)

    def test_training_loss_decreases(self, fitted):
        assert fitted.loss_history[-1] < fitted.loss_history[0]


class TestDqmQ:
    @pytest.fixture(scope="class")
    def fitted(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        return DqmQEstimator(epochs=25).fit(small_synthetic, train)

    def test_requires_workload(self, small_synthetic):
        with pytest.raises(ValueError):
            DqmQEstimator().fit(small_synthetic)

    def test_beats_trivial_baseline(self, fitted, synthetic_workloads):
        _, test = synthetic_workloads
        errors = qerrors(
            fitted.estimate_many(list(test.queries)), test.cardinalities
        )
        baseline = qerrors(np.ones(len(test)), test.cardinalities)
        assert _geo(errors) < _geo(baseline)

    def test_feature_encoding_marks_bounds(self, fitted):
        q = Query((Predicate(0, 10.0, 60.0),))
        feats = fitted.features(q)
        total = sum(fitted._disc.cardinalities)
        lo_hot = feats[:total]
        hi_hot = feats[total:]
        assert lo_hot.sum() == 1.0
        assert hi_hot.sum() == 1.0
        assert np.argmax(lo_hot) <= np.argmax(hi_hot)

    def test_unpredicated_columns_all_zero(self, fitted):
        q = Query((Predicate(0, 10.0, 60.0),))
        feats = fitted.features(q)
        cards = fitted._disc.cardinalities
        total = sum(cards)
        # Column 1's slots must be zero in both halves.
        assert feats[cards[0]:total].sum() == 0.0
        assert feats[total + cards[0]:].sum() == 0.0

    def test_update_requires_workload(self, fitted, small_synthetic, rng):
        from repro.datasets import apply_update

        new_table, appended = apply_update(small_synthetic, rng)
        with pytest.raises(ValueError):
            fitted.update(new_table, appended, None)

    def test_loss_decreases(self, fitted):
        assert fitted.loss_history[-1] < fitted.loss_history[0]
