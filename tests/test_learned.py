"""Behavioural tests for the five learned estimators."""

import numpy as np
import pytest

from repro.core import Predicate, Query, qerrors
from repro.datasets import apply_update, generate_synthetic
from repro.estimators.learned import (
    DeepDbEstimator,
    LwNnEstimator,
    LwXgbEstimator,
    MscnEstimator,
    NaruEstimator,
)


def _geo(errors: np.ndarray) -> float:
    return float(np.exp(np.log(errors).mean()))


FAST_CONFIGS = {
    "mscn": lambda: MscnEstimator(epochs=12, hidden_units=32),
    "lw-xgb": lambda: LwXgbEstimator(num_trees=32),
    "lw-nn": lambda: LwNnEstimator(epochs=20, hidden_units=(32, 32)),
    "naru": lambda: NaruEstimator(epochs=6, num_samples=100),
    "deepdb": lambda: DeepDbEstimator(),
}


@pytest.fixture(scope="module", params=list(FAST_CONFIGS))
def fitted(request, small_synthetic, synthetic_workloads):
    est = FAST_CONFIGS[request.param]()
    train, _ = synthetic_workloads
    est.fit(small_synthetic, train if est.requires_workload else None)
    return est


class TestCommonBehaviour:
    def test_beats_trivial_baseline(self, fitted, synthetic_workloads):
        _, test = synthetic_workloads
        errors = qerrors(
            fitted.estimate_many(list(test.queries)), test.cardinalities
        )
        baseline = qerrors(np.ones(len(test)), test.cardinalities)
        assert _geo(errors) < _geo(baseline)

    def test_estimates_nonnegative_and_finite(self, fitted, synthetic_workloads):
        _, test = synthetic_workloads
        estimates = fitted.estimate_many(list(test.queries))
        assert np.isfinite(estimates).all()
        assert (estimates >= 0).all()

    def test_model_size_reported(self, fitted):
        assert fitted.model_size_bytes() > 0

    def test_update_runs(self, fitted, small_synthetic, rng, synthetic_workloads):
        new_table, appended = apply_update(small_synthetic, rng)
        train, _ = synthetic_workloads
        # Query-driven methods need fresh labels against the new table.
        workload = train if fitted.requires_workload else None
        seconds = fitted.update(new_table, appended, workload)
        assert seconds > 0.0
        q = Query((Predicate(0, 0, 50),))
        assert np.isfinite(fitted.estimate(q))


class TestNaru:
    def test_fidelity_full_domain(self, small_synthetic):
        """Progressive sampling over the full domain returns exactly N."""
        est = NaruEstimator(epochs=2, num_samples=32).fit(small_synthetic)
        preds = tuple(
            Predicate(i, c.domain_min, c.domain_max)
            for i, c in enumerate(small_synthetic.columns)
        )
        assert est.estimate(Query(preds)) == pytest.approx(
            small_synthetic.num_rows
        )

    def test_fidelity_empty_predicate(self, small_synthetic):
        est = NaruEstimator(epochs=2, num_samples=32).fit(small_synthetic)
        q = Query((Predicate(0, 60.0, 40.0),))
        assert est.estimate(q) == 0.0

    def test_stochastic_inference_by_default(self, small_synthetic):
        est = NaruEstimator(epochs=3, num_samples=16).fit(small_synthetic)
        q = Query((Predicate(0, 10.0, 80.0), Predicate(1, 20.0, 22.0)))
        estimates = {est.estimate(q) for _ in range(8)}
        assert len(estimates) > 1  # the Stability-rule violation

    def test_pinned_inference_seed_is_stable(self, small_synthetic):
        est = NaruEstimator(epochs=3, num_samples=16, inference_seed=7)
        est.fit(small_synthetic)
        q = Query((Predicate(0, 10.0, 80.0), Predicate(1, 20.0, 22.0)))
        estimates = {est.estimate(q) for _ in range(5)}
        assert len(estimates) == 1

    def test_likelihood_improves_with_training(self, small_synthetic):
        est = NaruEstimator(epochs=6, num_samples=16).fit(small_synthetic)
        losses = est.loss_history
        assert losses[-1] < losses[0]

    def test_update_trains_one_epoch(self, small_synthetic, rng):
        est = NaruEstimator(epochs=2, update_epochs=1, num_samples=16)
        est.fit(small_synthetic)
        epochs_before = len(est.loss_history)
        new_table, appended = apply_update(small_synthetic, rng)
        est.update(new_table, appended)
        assert len(est.loss_history) == epochs_before + 1


class TestDeepDb:
    def test_product_decomposition_on_independent_data(self, rng):
        from repro.core import Table

        data = np.column_stack(
            [rng.integers(0, 10, 8000), rng.integers(0, 10, 8000)]
        ).astype(float)
        table = Table("indep", data)
        est = DeepDbEstimator().fit(table)
        q = Query((Predicate(0, 0, 4), Predicate(1, 0, 4)))
        assert est.estimate(q) == pytest.approx(table.cardinality(q), rel=0.1)

    def test_captures_functional_dependency(self, rng):
        x = generate_synthetic(8000, 1.0, 1.0, 50, rng)
        est = DeepDbEstimator().fit(x)
        q = Query((Predicate(0, 3, 3), Predicate(1, 3, 3)))
        truth = x.cardinality(q)
        err = qerrors(np.array([est.estimate(q)]), np.array([truth]))[0]
        # AVI would be off by ~number of distinct values; the SPN's row
        # clusters must do much better.
        assert err < 10

    def test_insert_shifts_distribution(self, small_synthetic, rng):
        est = DeepDbEstimator(insert_sample_fraction=1.0).fit(small_synthetic)
        q = Query((Predicate(0, 0, 5),))
        before = est.estimate(q)
        # Insert many rows all inside [0, 5] on column 0.
        rows = np.column_stack([np.full(2000, 2.0), np.full(2000, 2.0)])
        new_table = small_synthetic.append_rows(rows)
        est.update(new_table, rows)
        after = est.estimate(q)
        assert after > before

    def test_all_rules_hold_natively(self, small_synthetic, rng):
        from repro.rules import check_all

        est = DeepDbEstimator().fit(small_synthetic)
        reports = check_all(est, small_synthetic, rng, num_checks=20)
        assert all(r.satisfied for r in reports.values()), {
            k: str(v) for k, v in reports.items()
        }


class TestLwFamily:
    def test_xgb_and_nn_share_features(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        xgb = LwXgbEstimator(num_trees=16).fit(small_synthetic, train)
        nn = LwNnEstimator(epochs=5).fit(small_synthetic, train)
        q = Query((Predicate(0, 10, 50),))
        fx = xgb._featurizer.features(q)
        fn = nn._featurizer.features(q)
        np.testing.assert_allclose(fx, fn)

    def test_ce_features_toggle(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        with_ce = LwXgbEstimator(num_trees=8).fit(small_synthetic, train)
        without = LwXgbEstimator(num_trees=8, use_ce_features=False).fit(
            small_synthetic, train
        )
        q = Query((Predicate(0, 10, 50),))
        assert len(with_ce._featurizer.features(q)) == len(
            without._featurizer.features(q)
        ) + 3

    def test_nn_loss_decreases(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        est = LwNnEstimator(epochs=25).fit(small_synthetic, train)
        assert est.loss_history[-1] < est.loss_history[0]

    def test_update_requires_workload(self, small_synthetic, synthetic_workloads, rng):
        train, _ = synthetic_workloads
        est = LwNnEstimator(epochs=3).fit(small_synthetic, train)
        new_table, appended = apply_update(small_synthetic, rng)
        with pytest.raises(ValueError, match="workload"):
            est.update(new_table, appended, None)


class TestMscn:
    def test_bitmap_reflects_sample_qualification(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        est = MscnEstimator(epochs=2, sample_size=50).fit(small_synthetic, train)
        feat = est._featurizer
        full = Query((Predicate(0, 0, 1e9),))
        none = Query((Predicate(0, 1e9, 2e9),))
        assert feat.bitmaps([full]).sum() == len(feat.sample)
        assert feat.bitmaps([none]).sum() == 0

    def test_closed_range_decomposed(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        est = MscnEstimator(epochs=2).fit(small_synthetic, train)
        atoms = est._featurizer._atomic_predicates(
            Query((Predicate(0, 1, 5), Predicate(1, 3, 3)))
        )
        ops = sorted(op for _, op, _ in atoms)
        assert ops == [0, 1, 2]  # >=, <=, =

    def test_sample_ablation_changes_model(self, small_synthetic, synthetic_workloads):
        train, test = synthetic_workloads
        with_sample = MscnEstimator(epochs=8, use_sample=True).fit(
            small_synthetic, train
        )
        without = MscnEstimator(epochs=8, use_sample=False).fit(
            small_synthetic, train
        )
        assert with_sample.model_size_bytes() > without.model_size_bytes()

    def test_loss_decreases(self, small_synthetic, synthetic_workloads):
        train, _ = synthetic_workloads
        est = MscnEstimator(epochs=15).fit(small_synthetic, train)
        assert est.loss_history[-1] < est.loss_history[0]


class TestFloat32Path:
    """The opt-in float32 training path: half the bytes, same answers.

    Tolerance contract (documented in DESIGN.md §10): float32 p95
    q-error must stay within 10% of the float64 p95 on the same
    workload.  In practice the two agree to several decimal places at
    these model sizes — the tolerance is headroom, not an expectation.
    """

    def test_lw_nn_float32_matches_float64_p95(
        self, small_synthetic, synthetic_workloads
    ):
        train, test = synthetic_workloads
        queries = list(test.queries)
        p95 = {}
        for dtype in ("float64", "float32"):
            est = LwNnEstimator(epochs=10, hidden_units=(32, 32), dtype=dtype)
            est.fit(small_synthetic, train)
            errors = qerrors(est.estimate_many(queries), test.cardinalities)
            p95[dtype] = float(np.quantile(errors, 0.95))
        ratio = p95["float32"] / p95["float64"]
        assert 1 / 1.1 <= ratio <= 1.1, f"p95 drifted: {p95}"

    def test_lw_nn_float32_model_is_half_the_bytes(
        self, small_synthetic, synthetic_workloads
    ):
        train, _ = synthetic_workloads
        sizes = {}
        for dtype in ("float64", "float32"):
            est = LwNnEstimator(epochs=1, hidden_units=(16,), dtype=dtype)
            est.fit(small_synthetic, train)
            sizes[dtype] = est.model_size_bytes()
        assert sizes["float32"] * 2 == sizes["float64"]

    def test_naru_float32_matches_float64_p95(self, small_synthetic, synthetic_workloads):
        _, test = synthetic_workloads
        queries = list(test.queries)
        p95 = {}
        for dtype in ("float64", "float32"):
            est = NaruEstimator(
                epochs=3, num_samples=100, inference_seed=7, dtype=dtype
            )
            est.fit(small_synthetic)
            errors = qerrors(est.estimate_many(queries), test.cardinalities)
            p95[dtype] = float(np.quantile(errors, 0.95))
        ratio = p95["float32"] / p95["float64"]
        assert 1 / 1.1 <= ratio <= 1.1, f"p95 drifted: {p95}"

    def test_dtype_validated(self):
        with pytest.raises(ValueError):
            LwNnEstimator(dtype="float16")
        with pytest.raises(ValueError):
            NaruEstimator(dtype="float16")
        with pytest.raises(ValueError):
            NaruEstimator(dtype="float32", block="transformer")
