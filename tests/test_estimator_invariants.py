"""Cross-cutting invariants every estimator must satisfy.

These run each of the thirteen benchmark estimators (at tiny training
budgets) through the same battery: probabilistic outputs in range,
timing bookkeeping, update protocol, and robustness to edge-case
queries (single-value domains, open ranges, predicates on every column).
"""

import numpy as np
import pytest

from repro import Scale, estimator_names, make_estimator
from repro.core import Predicate, Query, Table, generate_workload

TINY = Scale(
    name="tiny",
    row_fraction=0.1,
    train_queries=150,
    test_queries=40,
    nn_epochs=2,
    naru_epochs=2,
    update_queries=50,
    synthetic_rows=1500,
    naru_samples=32,
)


@pytest.fixture(scope="module")
def table():
    from repro.datasets import generate_synthetic

    rng = np.random.default_rng(17)
    return generate_synthetic(2500, skew=1.0, correlation=0.6, domain_size=50, rng=rng)


@pytest.fixture(scope="module")
def train(table):
    rng = np.random.default_rng(18)
    return generate_workload(table, TINY.train_queries, rng)


@pytest.fixture(scope="module", params=estimator_names())
def fitted(request, table, train):
    est = make_estimator(request.param, TINY)
    est.fit(table, train if est.requires_workload else None)
    return est


class TestOutputs:
    def test_single_value_equality(self, fitted, table):
        value = float(table.columns[0].distinct_values[0])
        est = fitted.estimate(Query((Predicate(0, value, value),)))
        assert 0.0 <= est
        assert np.isfinite(est)

    def test_open_ranges_both_sides(self, fitted):
        for pred in (Predicate(0, None, 25.0), Predicate(0, 25.0, None)):
            est = fitted.estimate(Query((pred,)))
            assert np.isfinite(est) and est >= 0.0

    def test_all_columns_predicated(self, fitted, table):
        preds = tuple(
            Predicate(i, c.domain_min, (c.domain_min + c.domain_max) / 2)
            for i, c in enumerate(table.columns)
        )
        est = fitted.estimate(Query(preds))
        assert np.isfinite(est) and est >= 0.0

    def test_out_of_domain_range(self, fitted, table):
        hi = table.columns[0].domain_max
        est = fitted.estimate(Query((Predicate(0, hi + 100, hi + 200),)))
        assert np.isfinite(est)
        # Nothing lives out there; a calibrated model answers near zero.
        assert est <= table.num_rows

    def test_estimates_never_nan(self, fitted, table):
        rng = np.random.default_rng(55)
        workload = generate_workload(table, 25, rng)
        estimates = fitted.estimate_many(list(workload.queries))
        assert np.isfinite(estimates).all()


class TestProtocol:
    def test_fit_time_recorded(self, fitted):
        assert fitted.timing.fit_seconds > 0.0

    def test_inference_counter_advances(self, fitted):
        before = fitted.timing.inference_count
        fitted.estimate(Query((Predicate(0, 0.0, 10.0),)))
        assert fitted.timing.inference_count == before + 1

    def test_repr_mentions_name(self, fitted):
        assert fitted.name in repr(fitted)


class TestUpdateProtocol:
    @pytest.fixture(params=estimator_names())
    def fresh(self, request, table, train):
        est = make_estimator(request.param, TINY)
        est.fit(table, train if est.requires_workload else None)
        return est

    def test_update_then_estimate(self, fresh, table):
        from repro.datasets import apply_update
        from repro.dynamic import label_update_workload

        rng = np.random.default_rng(3)
        new_table, appended = apply_update(table, rng)
        workload, _ = label_update_workload(fresh, new_table, 40, rng)
        seconds = fresh.update(new_table, appended, workload)
        assert seconds > 0.0
        assert fresh.timing.update_seconds == seconds
        assert fresh.timing.update_count == 1
        est = fresh.estimate(Query((Predicate(0, 0.0, 25.0),)))
        assert np.isfinite(est) and est >= 0.0

    def test_update_timing_accumulates(self, fresh, table):
        """Multi-update dynamic runs must report total cost, not the last
        update's (the Figure 6 sweep updates many times)."""
        from repro.datasets import apply_update
        from repro.dynamic import label_update_workload

        rng = np.random.default_rng(4)
        current, totals = table, []
        for _ in range(3):
            current, appended = apply_update(current, rng)
            workload, _ = label_update_workload(fresh, current, 40, rng)
            totals.append(fresh.update(current, appended, workload))
        assert fresh.timing.update_count == 3
        assert fresh.timing.update_seconds == pytest.approx(sum(totals))
        assert fresh.timing.mean_update_seconds == pytest.approx(
            sum(totals) / 3
        )
