"""Static analysis over ``src/repro``: robustness anti-patterns.

Seven rules, enforced by walking every module's AST:

1. **No bare ``except:``** — it catches ``SystemExit`` and
   ``KeyboardInterrupt``, which breaks graceful shutdown (the bench CLI
   relies on ``KeyboardInterrupt`` propagating to flush partial
   artifacts).  Catch a concrete type, or ``Exception`` at worst.
2. **No ``time.time()``** — wall-clock time jumps (NTP, DST); every
   duration or deadline in the codebase must come from a monotonic
   source (``time.monotonic`` / ``time.perf_counter``).
3. **``except Exception`` must not swallow silently** — a handler that
   catches everything must either re-raise, return an error value, or
   emit observability (an event, a metric, or a ``*record*/*count*/
   *fail*`` helper that does so).  A silent ``pass`` hides the exact
   faults the serving layer exists to surface.
4. **No direct ``time.monotonic()`` / ``time.perf_counter()`` calls
   outside ``obs/clock.py``** — every timestamp must flow through the
   designated clock module so tests and the telemetry layer can reason
   about (and, where needed, intercept) a single clock source.
   Passing ``time.monotonic`` as a *reference* (e.g. an injectable
   ``clock=`` default) stays legal; only direct calls are banned.
5. **No float64 in the fast path** — modules under ``src/repro/fastpath``
   exist to be memory-lean (int8 weights, float32 activations); a
   ``np.float64`` attribute or a ``"float64"`` dtype string there
   silently doubles every buffer it touches.  Flagged forms:
   ``np.float64`` / ``numpy.float64`` and the exact string literal
   ``"float64"`` (so ``dtype="float64"`` and ``astype("float64")`` are
   both caught; prose merely *mentioning* the word is not).
6. **No unguarded model-output conversions in the serving layers** —
   modules under ``src/repro/serve`` and ``src/repro/shard`` must not
   call ``math.exp(...)`` or wrap an ``.estimate(...)`` /
   ``.estimate_many(...)`` call in ``float(...)`` outside the
   sanctioned guard/sanitize helpers.  A raw conversion is how
   unclamped model garbage leaks to a caller: every model output in
   the serving layers must pass through a function whose name marks it
   as a judging site (``*sanit*``, ``*guard*``, ``*clamp*``,
   ``*validate*``, the ``_serve_inner``/``_serve_batch_inner`` chain
   walkers, or the ``*last_resort*`` floor).
7. **No non-control payloads over shard pipes** — modules under
   ``src/repro/shard`` must not call ``.send(...)``: bulk data crosses
   the process boundary through the shared-memory ring framed by
   ``codec.py``, never pickled over a duplex pipe.  The two data-plane
   modules (``supervisor.py``, ``codec.py``) may send **control frames
   only** — a single tuple literal whose first element is a string
   constant drawn from the fixed control-op vocabulary (``serve``,
   ``serve_slot``, ``result``, ``swap`` ...).  Anything else —
   ``conn.send(model)``, a computed op name, keyword payloads — is how
   a "tiny control message" quietly regrows into a pickle of the whole
   estimator.

A handler that is *deliberately* silent (e.g. a child process whose
parent observes the dead pipe) opts out with a ``# lint-ok: <reason>``
comment on the ``except`` line — greppable, justified, and local.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"

#: method names whose invocation inside a handler counts as "observed":
#: exact telemetry verbs, plus helper-prefix conventions used across the
#: codebase (``_record_failure``, ``_count_attempt``, ``_fail`` ...).
TELEMETRY_ATTRS = {"emit", "inc", "observe", "set", "warning", "error"}
TELEMETRY_SUBSTRINGS = ("record", "count", "fail", "emit", "metric", "event")

PRAGMA = "# lint-ok:"

#: the one module allowed to call the stdlib monotonic clocks directly
CLOCK_MODULE = ("obs", "clock.py")

#: monotonic-clock callables that must be reached via ``obs/clock.py``
CLOCK_ATTRS = ("monotonic", "perf_counter")

#: package directory whose modules must stay float64-free (rule 5)
FASTPATH_DIR = "fastpath"

#: package directories whose model-output conversions are policed (rule 6)
SERVING_DIRS = ("serve", "shard")

#: enclosing-function name fragments that mark a sanctioned judging
#: site for model outputs (rule 6)
SANCTIONED_FRAGMENTS = (
    "sanit",
    "guard",
    "clamp",
    "validate",
    "serve_inner",
    "serve_batch_inner",
    "last_resort",
)

#: the estimator-protocol calls whose raw result rule 6 protects
ESTIMATE_ATTRS = ("estimate", "estimate_many")

#: package directory whose pipe traffic is policed (rule 7)
SHARD_DIR = "shard"

#: the data-plane modules allowed to send control frames (rule 7)
SEND_MODULES = ("codec.py", "supervisor.py")

#: the complete control-frame vocabulary of the shard duplex pipes:
#: parent -> worker requests and worker -> parent replies.  A frame's
#: first tuple element must be one of these string constants.
CONTROL_OPS = {
    "serve",
    "serve_slot",
    "ping",
    "stop",
    "swap",
    "result",
    "result_slot",
    "error",
    "pong",
    "stopped",
    "swapped",
    "swap_failed",
}


def _python_sources() -> list[Path]:
    files = sorted(SRC_ROOT.rglob("*.py"))
    assert len(files) > 50, "src/repro should be a sizeable package"
    return files


def _is_exception_handler(handler: ast.ExceptHandler) -> bool:
    """True for ``except Exception`` / ``except (..., Exception, ...)``."""

    def names(node: ast.expr | None) -> list[str]:
        if node is None:
            return []
        if isinstance(node, ast.Tuple):
            return [n for elt in node.elts for n in names(elt)]
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        return []

    return "Exception" in names(handler.type)


def _observes(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise, return, or emit telemetry?

    A bare ``continue``/``pass`` deliberately does not count: skipping
    to the next item without a trace is exactly the silent swallow the
    rule exists to catch.
    """
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Return)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name is not None:
                lowered = name.lower()
                if name in TELEMETRY_ATTRS or any(
                    s in lowered for s in TELEMETRY_SUBSTRINGS
                ):
                    return True
    return False


def _has_pragma(lines: list[str], handler: ast.ExceptHandler) -> bool:
    """``# lint-ok:`` on the except line (or its first body line)."""
    candidates = [handler.lineno]
    if handler.body:
        candidates.append(handler.body[0].lineno)
    return any(
        PRAGMA in lines[lineno - 1] for lineno in candidates if lineno <= len(lines)
    )


def _line_has_pragma(lines: list[str], lineno: int) -> bool:
    return lineno <= len(lines) and PRAGMA in lines[lineno - 1]


def _float64_violation(node: ast.AST, lines: list[str]) -> bool:
    """Rule 5 matcher: ``np.float64``/``numpy.float64`` or ``"float64"``.

    Only the exact string literal matches, so a docstring *mentioning*
    float64 (as part of a sentence) never trips the rule.
    """
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "float64"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return not _line_has_pragma(lines, node.lineno)
    if isinstance(node, ast.Constant) and node.value == "float64":
        return not _line_has_pragma(lines, node.lineno)
    return False


def _is_sanctioned(stack: list[str]) -> bool:
    """Is any enclosing function a designated model-output judging site?"""
    return any(
        fragment in name for name in stack for fragment in SANCTIONED_FRAGMENTS
    )


def _wraps_estimate_call(call: ast.Call) -> bool:
    """``float(...)`` whose argument subtree invokes ``.estimate*(...)``."""
    for arg in call.args:
        for node in ast.walk(arg):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ESTIMATE_ATTRS
            ):
                return True
    return False


def _model_output_violations(
    tree: ast.AST, lines: list[str]
) -> list[tuple[int, str]]:
    """Rule 6 matcher: ``(lineno, kind)`` pairs, ``kind`` in exp/float.

    Walks with an explicit enclosing-function-name stack (``ast.walk``
    flattens scope away) so conversions inside ``*guard*``/``*sanit*``
    helpers stay legal while the same call one function up is flagged.
    """
    found: list[tuple[int, str]] = []

    def visit(node: ast.AST, stack: list[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack = stack + [node.name]
        if (
            isinstance(node, ast.Call)
            and not _is_sanctioned(stack)
            and not _line_has_pragma(lines, node.lineno)
        ):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "exp"
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"
            ):
                found.append((node.lineno, "exp"))
            elif (
                isinstance(func, ast.Name)
                and func.id == "float"
                and _wraps_estimate_call(node)
            ):
                found.append((node.lineno, "float"))
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(tree, [])
    return found


def _is_control_frame(call: ast.Call) -> bool:
    """Single positional tuple-literal arg led by a known control op.

    The shape is deliberately strict: the whole frame must be written
    as a literal at the call site (so the vocabulary is greppable) and
    the op must be a string constant in :data:`CONTROL_OPS` — a
    computed op name or a frame built elsewhere doesn't qualify.
    """
    if len(call.args) != 1 or call.keywords:
        return False
    frame = call.args[0]
    if not isinstance(frame, ast.Tuple) or not frame.elts:
        return False
    op = frame.elts[0]
    return isinstance(op, ast.Constant) and op.value in CONTROL_OPS


def _send_violations(
    tree: ast.AST, lines: list[str], *, allow_control: bool
) -> list[int]:
    """Rule 7 matcher: line numbers of banned ``.send(...)`` calls."""
    found: list[int] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and not _line_has_pragma(lines, node.lineno)
            and not (allow_control and _is_control_frame(node))
        ):
            found.append(node.lineno)
    return found


def _violations_in(path: Path) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    found: list[str] = []
    rel = path.relative_to(SRC_ROOT.parent.parent)
    is_clock_module = tuple(path.parts[-2:]) == CLOCK_MODULE
    is_fastpath = FASTPATH_DIR in path.parts
    is_serving = any(d in path.parts for d in SERVING_DIRS)
    is_shard = SHARD_DIR in path.parts
    if is_shard:
        for lineno in _send_violations(
            tree, lines, allow_control=path.name in SEND_MODULES
        ):
            found.append(
                f"{rel}:{lineno}: non-control payload over a shard pipe — "
                "frame bulk data through the codec/ring; pipes carry only "
                "tuple-literal control frames from supervisor.py/codec.py; "
                "`# lint-ok: <reason>` to opt out"
            )
    if is_serving:
        for lineno, kind in _model_output_violations(tree, lines):
            what = (
                "math.exp() on a model output"
                if kind == "exp"
                else "float() around an .estimate*() call"
            )
            found.append(
                f"{rel}:{lineno}: {what} outside a guard/sanitize helper — "
                "route it through a *guard*/*sanit*/*clamp*/*validate* "
                "function; `# lint-ok: <reason>` to opt out"
            )
    for node in ast.walk(tree):
        if is_fastpath and _float64_violation(node, lines):
            found.append(
                f"{rel}:{node.lineno}: float64 in the fast path — "
                "repro.fastpath is int8/float32 only; "
                "`# lint-ok: <reason>` to opt out"
            )
        if isinstance(node, ast.ExceptHandler):
            if node.type is None and not _has_pragma(lines, node):
                found.append(f"{rel}:{node.lineno}: bare `except:`")
            elif (
                _is_exception_handler(node)
                and not _observes(node)
                and not _has_pragma(lines, node)
            ):
                found.append(
                    f"{rel}:{node.lineno}: `except Exception` swallows "
                    "silently (re-raise, return, or emit an obs "
                    "event/metric; `# lint-ok: <reason>` to opt out)"
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                continue
            if func.attr == "time":
                found.append(
                    f"{rel}:{node.lineno}: time.time() (wall clock) — use "
                    "repro.obs.clock monotonic()/perf_counter()"
                )
            elif (
                func.attr in CLOCK_ATTRS
                and not is_clock_module
                and not _line_has_pragma(lines, node.lineno)
            ):
                found.append(
                    f"{rel}:{node.lineno}: direct time.{func.attr}() — import "
                    "it from repro.obs.clock (the designated clock module); "
                    "`# lint-ok: <reason>` to opt out"
                )
    return found


def test_no_robustness_antipatterns():
    violations = [v for path in _python_sources() for v in _violations_in(path)]
    assert not violations, "\n".join(violations)


class TestLintRules:
    """The lint rules themselves, on synthetic snippets."""

    @staticmethod
    def check(
        snippet: str,
        *,
        is_clock_module: bool = False,
        is_fastpath: bool = False,
        is_serving: bool = False,
        is_shard: bool = False,
        allow_control: bool = False,
    ) -> list[str]:
        lines = snippet.splitlines()
        found = []
        tree = ast.parse(snippet)
        if is_shard:
            found.extend(
                "send"
                for _ in _send_violations(tree, lines, allow_control=allow_control)
            )
        if is_serving:
            found.extend(kind for _, kind in _model_output_violations(tree, lines))
        for node in ast.walk(tree):
            if is_fastpath and _float64_violation(node, lines):
                found.append("float64")
            if isinstance(node, ast.ExceptHandler):
                if node.type is None and not _has_pragma(lines, node):
                    found.append("bare")
                elif (
                    _is_exception_handler(node)
                    and not _observes(node)
                    and not _has_pragma(lines, node)
                ):
                    found.append("silent")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in CLOCK_ATTRS
                    and not is_clock_module
                    and not _line_has_pragma(lines, node.lineno)
                ):
                    found.append("clock")
        return found

    def test_flags_bare_except(self):
        assert self.check("try:\n    x = 1\nexcept:\n    pass\n") == ["bare"]

    def test_flags_silent_swallow(self):
        assert self.check("try:\n    x = 1\nexcept Exception:\n    x = 2\n") == [
            "silent"
        ]

    def test_flags_exception_in_tuple(self):
        snippet = "try:\n    x = 1\nexcept (ValueError, Exception):\n    x = 2\n"
        assert self.check(snippet) == ["silent"]

    def test_accepts_reraise(self):
        snippet = (
            "try:\n    x = 1\nexcept Exception as e:\n    raise ValueError from e\n"
        )
        assert self.check(snippet) == []

    def test_accepts_return(self):
        snippet = (
            "def f():\n"
            "    try:\n"
            "        return g()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert self.check(snippet) == []

    def test_accepts_telemetry_call(self):
        snippet = (
            "try:\n"
            "    x = 1\n"
            "except Exception:\n"
            "    events.emit('boom')\n"
            "    x = 2\n"
        )
        assert self.check(snippet) == []

    def test_accepts_pragma(self):
        snippet = (
            "try:\n"
            "    x = 1\n"
            "except Exception:  # lint-ok: tested elsewhere\n"
            "    pass\n"
        )
        assert self.check(snippet) == []

    def test_silent_continue_is_still_silent(self):
        snippet = (
            "for i in range(3):\n"
            "    try:\n"
            "        x = 1\n"
            "    except Exception:\n"
            "        continue\n"
        )
        assert self.check(snippet) == ["silent"]

    def test_concrete_exception_types_are_out_of_scope(self):
        snippet = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert self.check(snippet) == []

    def test_flags_direct_monotonic_call(self):
        snippet = "import time\nstart = time.monotonic()\n"
        assert self.check(snippet) == ["clock"]

    def test_flags_direct_perf_counter_call(self):
        snippet = "import time\nstart = time.perf_counter()\n"
        assert self.check(snippet) == ["clock"]

    def test_clock_reference_is_legal(self):
        # Injectable-clock defaults pass the callable, not its result.
        snippet = (
            "import time\n"
            "def f(clock=time.monotonic):\n"
            "    return clock()\n"
        )
        assert self.check(snippet) == []

    def test_clock_call_accepts_pragma(self):
        snippet = (
            "import time\n"
            "start = time.perf_counter()  # lint-ok: measuring the shim\n"
        )
        assert self.check(snippet) == []

    def test_clock_module_is_exempt(self):
        snippet = "import time\nnow = time.monotonic()\n"
        assert self.check(snippet, is_clock_module=True) == []

    def test_flags_np_float64_attribute_in_fastpath(self):
        snippet = "import numpy as np\nw = np.zeros(4, dtype=np.float64)\n"
        assert self.check(snippet, is_fastpath=True) == ["float64"]

    def test_flags_numpy_float64_attribute_in_fastpath(self):
        snippet = "import numpy\nx = numpy.float64(3.0)\n"
        assert self.check(snippet, is_fastpath=True) == ["float64"]

    def test_flags_float64_dtype_string_in_fastpath(self):
        snippet = "import numpy as np\nw = np.zeros(4, dtype='float64')\n"
        assert self.check(snippet, is_fastpath=True) == ["float64"]
        assert self.check("x = y.astype('float64')\n", is_fastpath=True) == [
            "float64"
        ]

    def test_float64_legal_outside_fastpath(self):
        snippet = "import numpy as np\nw = np.zeros(4, dtype=np.float64)\n"
        assert self.check(snippet) == []

    def test_float64_mention_in_docstring_is_legal(self):
        snippet = '"""Unlike the float64 trainers, this module is lean."""\n'
        assert self.check(snippet, is_fastpath=True) == []

    def test_float64_accepts_pragma(self):
        snippet = (
            "import numpy as np\n"
            "w = np.float64(0.0)  # lint-ok: interop shim\n"
        )
        assert self.check(snippet, is_fastpath=True) == []

    def test_float32_in_fastpath_is_legal(self):
        snippet = "import numpy as np\nw = np.zeros(4, dtype=np.float32)\n"
        assert self.check(snippet, is_fastpath=True) == []

    def test_flags_math_exp_in_serving(self):
        snippet = (
            "import math\n"
            "def serve(model, query):\n"
            "    return math.exp(model.predict_log(query))\n"
        )
        assert self.check(snippet, is_serving=True) == ["exp"]

    def test_flags_float_of_estimate_in_serving(self):
        snippet = (
            "def serve(tier, query):\n"
            "    return float(tier.estimator.estimate(query))\n"
        )
        assert self.check(snippet, is_serving=True) == ["float"]

    def test_flags_float_of_estimate_many_in_serving(self):
        snippet = (
            "def serve(tier, queries):\n"
            "    return float(tier.estimate_many(queries)[0])\n"
        )
        assert self.check(snippet, is_serving=True) == ["float"]

    def test_guard_helper_is_sanctioned(self):
        snippet = (
            "def _guard_clamp(tier, query):\n"
            "    return float(tier.estimate(query))\n"
        )
        assert self.check(snippet, is_serving=True) == []

    def test_sanitize_helper_is_sanctioned(self):
        snippet = (
            "import math\n"
            "def _sanitize(model, query):\n"
            "    return math.exp(model.predict_log(query))\n"
        )
        assert self.check(snippet, is_serving=True) == []

    def test_sanctioned_nesting_covers_inner_lambda_free_helpers(self):
        # An inner helper defined inside a sanctioned function inherits
        # the sanction — the judging site encloses the conversion.
        snippet = (
            "def _validate_values(tier, queries):\n"
            "    def convert(q):\n"
            "        return float(tier.estimate(q))\n"
            "    return [convert(q) for q in queries]\n"
        )
        assert self.check(snippet, is_serving=True) == []

    def test_float_of_plain_name_is_legal_in_serving(self):
        # Converting an already-judged value is fine; the rule targets
        # the direct model call, not every float() in the layer.
        snippet = "def serve(raw):\n    return float(raw)\n"
        assert self.check(snippet, is_serving=True) == []

    def test_serving_conversion_accepts_pragma(self):
        snippet = (
            "def serve(tier, query):\n"
            "    return float(tier.estimate(query))  # lint-ok: exact tier\n"
        )
        assert self.check(snippet, is_serving=True) == []

    def test_model_output_rule_scoped_to_serving_dirs(self):
        snippet = (
            "import math\n"
            "def train_step(model, x):\n"
            "    return math.exp(model.predict_log(x))\n"
        )
        assert self.check(snippet) == []

    def test_flags_send_in_shard_module(self):
        # Outside the data-plane modules no .send() is tolerated at all,
        # control frame or not.
        snippet = "conn.send(('ping', 7))\n"
        assert self.check(snippet, is_shard=True) == ["send"]

    def test_flags_send_of_object_in_data_plane(self):
        snippet = "conn.send(model)\n"
        assert self.check(snippet, is_shard=True, allow_control=True) == ["send"]

    def test_accepts_control_frame_in_data_plane(self):
        snippet = "conn.send(('result', request_id, values, snap))\n"
        assert self.check(snippet, is_shard=True, allow_control=True) == []

    def test_flags_unknown_op_in_data_plane(self):
        snippet = "conn.send(('upload_model', weights))\n"
        assert self.check(snippet, is_shard=True, allow_control=True) == ["send"]

    def test_flags_computed_op_in_data_plane(self):
        # The op must be a string constant: a computed name defeats the
        # greppable-vocabulary property the rule protects.
        snippet = "conn.send((op_name, request_id))\n"
        assert self.check(snippet, is_shard=True, allow_control=True) == ["send"]

    def test_flags_keyword_send_in_data_plane(self):
        snippet = "conn.send(('serve', batch), flags=0)\n"
        assert self.check(snippet, is_shard=True, allow_control=True) == ["send"]

    def test_send_accepts_pragma(self):
        snippet = "conn.send(payload)  # lint-ok: test fixture pipe\n"
        assert self.check(snippet, is_shard=True) == []

    def test_send_rule_scoped_to_shard_dir(self):
        assert self.check("sock.send(data)\n") == []
