"""Tests for the shared column discretiser."""

import numpy as np
import pytest

from repro.core import Predicate
from repro.estimators.discretize import ColumnDiscretizer, Discretizer


class TestExactColumns:
    def test_one_bin_per_distinct(self):
        disc = ColumnDiscretizer(np.array([3.0, 1.0, 3.0, 7.0]), max_bins=10)
        assert disc.exact
        assert disc.num_bins == 3

    def test_transform_roundtrip(self):
        values = np.array([5.0, 1.0, 9.0, 5.0])
        disc = ColumnDiscretizer(values, max_bins=10)
        bins = disc.transform(values)
        recovered = np.array([disc.bin_value(b) for b in bins])
        np.testing.assert_array_equal(recovered, values)

    def test_predicate_weights_indicator(self):
        disc = ColumnDiscretizer(np.array([1.0, 2.0, 3.0, 4.0]), max_bins=10)
        w = disc.predicate_weights(Predicate(0, 2.0, 3.0))
        np.testing.assert_array_equal(w, [0, 1, 1, 0])

    def test_open_range_weights(self):
        disc = ColumnDiscretizer(np.array([1.0, 2.0, 3.0]), max_bins=10)
        np.testing.assert_array_equal(
            disc.predicate_weights(Predicate(0, None, 2.0)), [1, 1, 0]
        )
        np.testing.assert_array_equal(
            disc.predicate_weights(Predicate(0, 2.0, None)), [0, 1, 1]
        )

    def test_empty_predicate_all_zero(self):
        disc = ColumnDiscretizer(np.array([1.0, 2.0]), max_bins=10)
        np.testing.assert_array_equal(
            disc.predicate_weights(Predicate(0, 5.0, 1.0)), [0, 0]
        )


class TestBinnedColumns:
    def test_falls_back_to_quantile_bins(self, rng):
        values = rng.normal(size=5000)
        disc = ColumnDiscretizer(values, max_bins=32)
        assert not disc.exact
        assert disc.num_bins <= 32
        bins = disc.transform(values)
        assert bins.min() >= 0 and bins.max() < disc.num_bins

    def test_weights_in_unit_interval(self, rng):
        values = rng.normal(size=5000)
        disc = ColumnDiscretizer(values, max_bins=32)
        w = disc.predicate_weights(Predicate(0, -0.5, 0.5))
        assert (w >= 0).all() and (w <= 1).all()
        assert w.sum() > 0

    def test_full_range_weights_one(self, rng):
        values = rng.normal(size=5000)
        disc = ColumnDiscretizer(values, max_bins=32)
        w = disc.predicate_weights(Predicate(0, values.min(), values.max()))
        np.testing.assert_allclose(w, np.ones(disc.num_bins))

    def test_weighted_counts_approximate_truth(self, rng):
        """counts @ weights should track the true range count."""
        values = rng.uniform(0, 100, size=20_000)
        disc = ColumnDiscretizer(values, max_bins=64)
        counts = np.bincount(disc.transform(values), minlength=disc.num_bins)
        pred = Predicate(0, 25.0, 50.0)
        approx = counts @ disc.predicate_weights(pred)
        truth = np.count_nonzero((values >= 25.0) & (values <= 50.0))
        assert abs(approx - truth) / truth < 0.05


class TestTableDiscretizer:
    def test_cardinalities(self, tiny_table):
        disc = Discretizer(tiny_table, max_bins=256)
        assert disc.cardinalities == [6, 7, 3]

    def test_transform_shape(self, tiny_table):
        disc = Discretizer(tiny_table, max_bins=256)
        out = disc.transform(tiny_table.data)
        assert out.shape == tiny_table.data.shape
        assert out.dtype == np.int64

    def test_max_bins_validated(self, tiny_table):
        with pytest.raises(ValueError):
            Discretizer(tiny_table, max_bins=1)

    def test_predicate_weights_dispatch(self, tiny_table):
        disc = Discretizer(tiny_table, max_bins=256)
        w = disc.predicate_weights(Predicate(2, 2.0, 2.0))
        np.testing.assert_array_equal(w, [0, 1, 0])
