"""Tests for the fault-tolerant serving layer (repro.serve)."""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, Predicate, Query
from repro.faults import ExceptionFault, LatencyFault, NaNFault
from repro.registry import (
    DEFAULT_FALLBACK_NAMES,
    make_estimator,
    make_fallback_chain,
    make_service,
)
from repro.serve import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    EstimateCache,
    EstimatorService,
    HeuristicConstantEstimator,
)


class StubEstimator(CardinalityEstimator):
    """Answers a constant; fit is free."""

    def __init__(self, value: float = 5.0, name: str = "stub") -> None:
        super().__init__()
        self.value = value
        self.name = name

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return self.value


class RawStub(StubEstimator):
    """Returns its value unclamped (bypasses the base-class max(0, .))."""

    def estimate(self, query) -> float:
        return self.value


class RawBatchStub(RawStub):
    """Unclamped on the batch path too."""

    def estimate_many(self, queries) -> np.ndarray:
        return np.full(len(queries), self.value, dtype=np.float64)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def query() -> Query:
    return Query((Predicate(0, 1.0, 3.0),))


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        config = BreakerConfig(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
            probe_successes=kwargs.pop("probe_successes", 2),
        )
        return CircuitBreaker(config, clock), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_request()

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows_request()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_window(self):
        breaker, clock = self.make(failure_threshold=1, recovery_seconds=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.now = 9.9
        assert not breaker.allows_request()
        clock.now = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows_request()

    def test_probe_successes_close_the_breaker(self):
        breaker, clock = self.make(
            failure_threshold=1, recovery_seconds=1.0, probe_successes=2
        )
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(failure_threshold=1, recovery_seconds=1.0)
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        # the recovery window restarts from the re-trip
        clock.now = 2.5
        assert not breaker.allows_request()
        clock.now = 3.0
        assert breaker.allows_request()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(recovery_seconds=-1.0)
        with pytest.raises(ValueError):
            BreakerConfig(probe_successes=0)


class TestBreakerTransitionSequences:
    """The exact state walk, asserted via the event log (repro.obs)."""

    def make(self, **kwargs):
        from repro.obs import EventLog

        log = EventLog()
        clock = FakeClock()
        config = BreakerConfig(
            failure_threshold=kwargs.pop("failure_threshold", 2),
            recovery_seconds=kwargs.pop("recovery_seconds", 5.0),
            probe_successes=kwargs.pop("probe_successes", 2),
        )
        breaker = CircuitBreaker(config, clock, name="primary", events=log)
        return breaker, clock, log

    def sequence(self, log):
        return [
            (e["old"], e["new"])
            for e in log.events("breaker.transition", breaker="primary")
        ]

    def test_full_recovery_walk(self):
        breaker, clock, log = self.make()
        breaker.record_failure()
        breaker.record_failure()  # CLOSED -> OPEN
        clock.now = 5.0
        assert breaker.allows_request()  # lazy OPEN -> HALF_OPEN promotion
        breaker.record_success()
        breaker.record_success()  # HALF_OPEN -> CLOSED
        assert self.sequence(log) == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker, clock, log = self.make(failure_threshold=1)
        breaker.record_failure()  # CLOSED -> OPEN
        clock.now = 5.0
        breaker.record_success()  # promotes to HALF_OPEN, one probe short
        breaker.record_failure()  # HALF_OPEN -> OPEN
        assert self.sequence(log) == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
        ]
        assert breaker.trips == 2

    def test_transitions_counted_in_registry(self):
        from repro.obs import BREAKER_TRANSITIONS, MetricsRegistry
        from repro.obs import EventLog

        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1),
            clock,
            name="primary",
            events=EventLog(),
            registry=registry,
        )
        breaker.record_failure()
        counter = registry.counter(BREAKER_TRANSITIONS)
        assert counter.value(breaker="primary", old="closed", new="open") == 1

    def test_service_emits_fallback_and_breaker_events(self, tiny_table, query):
        from repro.obs import EventLog

        log = EventLog()
        bad = ExceptionFault(StubEstimator(name="primary"), probability=1.0)
        svc = EstimatorService(
            [bad, StubEstimator(9.0)],
            breaker=BreakerConfig(failure_threshold=2),
            events=log,
        )
        svc.fit(tiny_table)
        for _ in range(3):
            svc.serve(query)
        fallbacks = log.events("serve.fallback")
        assert len(fallbacks) == 3
        assert fallbacks[0]["tier"] == "stub"
        assert ("closed", "open") in [
            (e["old"], e["new"]) for e in log.events("breaker.transition")
        ]


class TestEstimatorService:
    def service(self, tiers, table, **kwargs):
        svc = EstimatorService(tiers, **kwargs)
        svc.fit(table)
        return svc

    def test_primary_serves_when_healthy(self, tiny_table, query):
        svc = self.service([StubEstimator(4.0), StubEstimator(9.0)], tiny_table)
        served = svc.serve(query)
        assert served.estimate == 4.0
        assert served.tier_index == 0
        assert not served.degraded

    def test_exception_falls_back(self, tiny_table, query):
        bad = ExceptionFault(StubEstimator(4.0, name="primary"), probability=1.0)
        svc = self.service([bad, StubEstimator(9.0)], tiny_table)
        served = svc.serve(query)
        assert served.estimate == 9.0
        assert served.degraded
        assert served.attempts[0][1] == "exception"

    def test_nan_and_inf_fall_back(self, tiny_table, query):
        for garbage, kind in ((float("nan"), "nan"), (float("inf"), "inf")):
            bad = NaNFault(StubEstimator(name="primary"), value=garbage)
            svc = self.service([bad, StubEstimator(9.0)], tiny_table)
            served = svc.serve(query)
            assert served.estimate == 9.0
            assert served.attempts[0][1] == kind

    def test_out_of_bounds_is_sanitized_but_served(self, tiny_table, query):
        wild = RawStub(10 * tiny_table.num_rows, name="wild")
        svc = self.service([wild, StubEstimator(9.0)], tiny_table)
        served = svc.serve(query)
        assert served.estimate == tiny_table.num_rows
        assert served.tier_index == 0  # clamped, not failed over
        health = svc.health()
        assert health.tiers[0].sanitized == 1

    def test_negative_estimate_is_sanitized(self, tiny_table, query):
        svc = self.service([RawStub(-50.0, name="neg")], tiny_table)
        assert svc.serve(query).estimate == 0.0

    def test_breaker_opens_and_skips_primary(self, tiny_table, query):
        bad = ExceptionFault(StubEstimator(name="primary"), probability=1.0)
        svc = self.service(
            [bad, StubEstimator(9.0)],
            tiny_table,
            breaker=BreakerConfig(failure_threshold=3),
        )
        for _ in range(10):
            assert svc.serve(query).estimate == 9.0
        health = svc.health()
        assert health.tiers[0].state == "open"
        assert health.tiers[0].attempts == 3
        assert health.tiers[0].skipped_open == 7
        assert health.tiers[0].trips == 1
        assert health.availability == 1.0

    def test_breaker_recovers_after_probe(self, tiny_table, query):
        clock = FakeClock()
        flaky = ExceptionFault(StubEstimator(4.0, name="primary"), probability=1.0)
        svc = EstimatorService(
            [flaky, StubEstimator(9.0)],
            breaker=BreakerConfig(
                failure_threshold=1, recovery_seconds=5.0, probe_successes=1
            ),
            deadline_ms=None,
            clock=clock,
        )
        svc.fit(tiny_table)
        assert svc.serve(query).estimate == 9.0  # trips the breaker
        assert svc.breaker_state(svc.tier_names[0]) is BreakerState.OPEN
        flaky.probability = 0.0  # the primary heals
        clock.now = 6.0
        served = svc.serve(query)  # half-open probe succeeds
        assert served.estimate == 4.0
        assert svc.breaker_state(svc.tier_names[0]) is BreakerState.CLOSED

    def test_deadline_aborts_slow_primary(self, tiny_table, query):
        slow = LatencyFault(
            StubEstimator(4.0, name="primary"), delay_seconds=0.05, probability=1.0
        )
        svc = self.service(
            [slow, StubEstimator(9.0)], tiny_table, deadline_ms=10.0
        )
        served = svc.serve(query)
        assert served.estimate == 9.0
        assert served.attempts[0][1] == "timeout"
        assert svc.health().tiers[0].failures["timeout"] == 1

    def test_exhausted_budget_skips_to_final_tier(self, tiny_table, query):
        clock = FakeClock()

        def ticking() -> float:
            clock.now += 1.0
            return clock.now

        svc = EstimatorService(
            [StubEstimator(4.0), StubEstimator(9.0, name="final")],
            deadline_ms=500.0,
            clock=ticking,
        )
        svc.fit(tiny_table)
        served = svc.serve(query)
        # the intermediate tier is skipped, but the designated final tier
        # is exempt from the deadline — the service must answer
        assert served.tier == "final"
        assert served.estimate == 9.0
        assert svc.health().tiers[0].skipped_deadline == 1

    def test_rule_shortcuts_skip_the_chain(self, tiny_table):
        primary = StubEstimator(4.0)
        svc = self.service([primary], tiny_table)
        empty = Query((Predicate(0, 10.0, 1.0),))
        assert svc.serve(empty).estimate == 0.0
        assert svc.serve(empty).tier == "shortcut"
        full = Query(
            tuple(
                Predicate(i, col.domain_min, col.domain_max)
                for i, col in enumerate(tiny_table.columns)
            )
        )
        assert svc.serve(full).estimate == tiny_table.num_rows
        assert svc.health().shortcuts == 3
        assert primary.timing.inference_count == 0

    def test_last_resort_when_every_tier_fails(self, tiny_table, query):
        bad = ExceptionFault(StubEstimator(name="only"), probability=1.0)
        svc = self.service([bad], tiny_table)
        served = svc.serve(query)
        assert served.tier == "last-resort"
        assert np.isfinite(served.estimate)
        assert 0.0 <= served.estimate <= tiny_table.num_rows
        assert svc.health().last_resort == 1

    def test_estimator_protocol(self, tiny_table, query):
        """The service is itself an estimator: estimate() never raises."""
        bad = NaNFault(StubEstimator(name="primary"), probability=1.0)
        svc = self.service([bad, StubEstimator(9.0)], tiny_table)
        assert svc.estimate(query) == 9.0
        batch = svc.estimate_many([query, query])
        assert np.all(np.isfinite(batch))

    def test_duplicate_tier_names_are_disambiguated(self, tiny_table):
        svc = self.service(
            [StubEstimator(1.0), StubEstimator(2.0)], tiny_table
        )
        assert svc.tier_names == ["stub", "stub#2"]

    def test_update_propagates_to_all_tiers(self, tiny_table, rng):
        from repro.datasets import apply_update

        tiers = [make_estimator("sampling"), make_estimator("postgres")]
        svc = self.service(tiers, tiny_table)
        new_table, appended = apply_update(tiny_table, rng)
        svc.update(new_table, appended)
        assert tiers[0].table.num_rows == new_table.num_rows
        assert tiers[1].table.num_rows == new_table.num_rows

    def test_validation(self, tiny_table):
        with pytest.raises(ValueError, match="at least one tier"):
            EstimatorService([])
        with pytest.raises(ValueError, match="deadline_ms"):
            EstimatorService([StubEstimator()], deadline_ms=0.0)
        svc = self.service([StubEstimator()], tiny_table)
        with pytest.raises(KeyError, match="no tier"):
            svc.breaker_state("nope")


class TestHeuristicConstant:
    def test_constant_selectivity(self, tiny_table):
        est = HeuristicConstantEstimator(selectivity=0.1).fit(tiny_table)
        one = est.estimate(Query((Predicate(0, 0.0, 1.0),)))
        two = est.estimate(
            Query((Predicate(0, 0.0, 1.0), Predicate(1, 0.0, 1.0)))
        )
        assert one == pytest.approx(0.1 * tiny_table.num_rows)
        assert two == pytest.approx(0.01 * tiny_table.num_rows)

    def test_empty_predicate_is_zero(self, tiny_table):
        est = HeuristicConstantEstimator().fit(tiny_table)
        assert est.estimate(Query((Predicate(0, 5.0, 1.0),))) == 0.0

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            HeuristicConstantEstimator(selectivity=0.0)


class TestRegistryFactories:
    def test_default_chain_composition(self):
        chain = make_fallback_chain("mhist")
        assert [e.name for e in chain] == ["mhist"] + DEFAULT_FALLBACK_NAMES

    def test_chain_accepts_instances(self, tiny_table):
        primary = StubEstimator(3.0, name="custom").fit(tiny_table)
        chain = make_fallback_chain(primary, fallbacks=["postgres"])
        assert chain[0] is primary
        assert [e.name for e in chain] == ["custom", "postgres"]

    def test_make_service_round_trip(self, tiny_table, query):
        svc = make_service("mhist", deadline_ms=None)
        assert svc.tier_names == ["mhist"] + DEFAULT_FALLBACK_NAMES
        svc.fit(tiny_table)
        assert 0.0 <= svc.estimate(query) <= tiny_table.num_rows


@pytest.mark.slow
class TestServingReplay:
    """Full fault-matrix replay through bench.serving_exp (heavy)."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench import BenchContext
        from repro.bench.serving_exp import serving_experiment
        from repro.scale import Scale

        return {
            r.scenario: r
            for r in serving_experiment(
                BenchContext(Scale.ci(), seed=42), primary="sampling"
            )
        }

    def test_service_always_available(self, results):
        for r in results.values():
            assert r.availability == 1.0, r.scenario

    def test_total_failure_storms(self, results):
        for name in ("nan-storm", "exception-storm"):
            r = results[name]
            assert r.unguarded_availability == 0.0
            assert r.primary_breaker == "open"
            assert r.primary_trips >= 1
            assert r.fallback_rate > 0.9

    def test_baseline_stays_on_primary(self, results):
        r = results["no-fault"]
        assert r.fallback_rate == 0.0
        assert r.primary_trips == 0
        assert r.unguarded_availability == 1.0

    def test_slow_primary_times_out_to_fallback(self, results):
        r = results["slow-primary"]
        assert r.availability == 1.0
        assert r.primary_breaker == "open"

    def test_format_mentions_every_scenario(self, results):
        from repro.bench.serving_exp import format_serving

        text = format_serving(list(results.values()), primary="sampling")
        for name in results:
            assert name in text


class TestAcceptance:
    """ISSUE acceptance: 100% primary failure still answers everything."""

    @pytest.mark.parametrize("fault", ["nan", "exception"])
    def test_total_primary_failure_full_availability(
        self, small_census, census_workloads, fault
    ):
        train, test = census_workloads
        primary = make_estimator("sampling").fit(small_census)
        wrapped = (
            NaNFault(primary, probability=1.0, seed=3)
            if fault == "nan"
            else ExceptionFault(primary, probability=1.0, seed=3)
        )
        svc = make_service(wrapped, fallbacks=["postgres", "heuristic"])
        svc.fit(small_census)
        served = svc.serve_many(list(test.queries))
        assert all(
            np.isfinite(s.estimate) and 0.0 <= s.estimate <= small_census.num_rows
            for s in served
        )
        health = svc.health()
        assert health.availability == 1.0
        assert health.tiers[0].state == "open"
        assert health.tiers[0].trips >= 1


def distinct_queries(n: int) -> list[Query]:
    """n distinct single-predicate queries over the tiny table's column a."""
    return [Query((Predicate(0, float(i % 6), float(i % 6) + 0.5 + i),)) for i in range(n)]


class TestServeBatch:
    def service(self, tiers, table, **kwargs):
        svc = EstimatorService(tiers, **kwargs)
        svc.fit(table)
        return svc

    def test_batch_matches_scalar_serve(self, tiny_table):
        queries = distinct_queries(10)
        scalar_svc = self.service(
            [make_estimator("sampling"), make_estimator("postgres")], tiny_table
        )
        batch_svc = self.service(
            [make_estimator("sampling"), make_estimator("postgres")], tiny_table
        )
        scalar = scalar_svc.serve_many(queries)
        batch = batch_svc.serve_batch(queries)
        assert [s.estimate for s in batch] == [s.estimate for s in scalar]
        assert [s.tier for s in batch] == [s.tier for s in scalar]

    def test_nan_primary_falls_back_whole_batch(self, tiny_table):
        primary = NaNFault(StubEstimator(4.0), probability=1.0, seed=3)
        svc = self.service([primary, StubEstimator(9.0, name="backup")], tiny_table)
        served = svc.serve_batch(distinct_queries(8))
        assert all(s.estimate == 9.0 for s in served)
        assert all(s.tier == "backup" and s.degraded for s in served)
        assert svc.health().availability == 1.0
        primary_health = svc.health().tiers[0]
        assert primary_health.failures.get("nan", 0) == 8

    def test_partial_exception_fault_keeps_availability(self, tiny_table):
        # One raising query fails the whole sub-batch on that tier; the
        # batch must still come back fully answered via the fallback.
        primary = ExceptionFault(StubEstimator(4.0), probability=0.5, seed=11)
        svc = self.service([primary, StubEstimator(9.0, name="backup")], tiny_table)
        served = svc.serve_batch(distinct_queries(12))
        assert len(served) == 12
        assert all(np.isfinite(s.estimate) for s in served)
        assert svc.health().availability == 1.0

    def test_all_tiers_failing_reaches_last_resort(self, tiny_table):
        primary = NaNFault(StubEstimator(4.0), probability=1.0, seed=3)
        svc = self.service([primary], tiny_table)
        queries = distinct_queries(5)
        served = svc.serve_batch(queries)
        for s, q in zip(served, queries):
            assert s.tier == "last-resort"
            assert s.estimate == tiny_table.num_rows * 0.1**q.num_predicates

    def test_attempts_match_batch_size(self, tiny_table):
        svc = self.service([StubEstimator(4.0)], tiny_table)
        svc.serve_batch(distinct_queries(12))
        tier = svc.health().tiers[0]
        # One attempt (and one amortised latency sample) per batched query
        # keeps the health window consistent with the scalar path.
        assert tier.attempts == 12
        assert tier.served == 12
        assert tier.p50_ms >= 0.0

    def test_estimate_many_routes_through_serve_batch(self, tiny_table):
        svc = self.service([StubEstimator(4.0)], tiny_table)
        out = svc.estimate_many(distinct_queries(6))
        assert out.shape == (6,)
        assert np.array_equal(out, np.full(6, 4.0))
        assert svc.health().queries == 6

    def test_batch_sanitizes_over_table_estimates(self, tiny_table):
        # Regression: a finite answer above num_rows must be clamped to
        # num_rows on the batch path, exactly like the scalar path.
        wild = RawBatchStub(10 * tiny_table.num_rows, name="wild")
        svc = self.service([wild], tiny_table)
        served = svc.serve_batch(distinct_queries(4))
        assert [s.estimate for s in served] == [tiny_table.num_rows] * 4
        assert all(s.attempts[-1][1] == "sanitized" for s in served)
        assert svc.health().tiers[0].sanitized == 4

    def test_batch_sanitizes_negative_estimates(self, tiny_table):
        wild = RawBatchStub(-50.0, name="neg")
        svc = self.service([wild], tiny_table)
        served = svc.serve_batch(distinct_queries(4))
        assert [s.estimate for s in served] == [0.0] * 4
        assert all(s.attempts[-1][1] == "sanitized" for s in served)


class TestEstimateCache:
    def test_rejects_nonpositive_capacity(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="capacity"):
                EstimateCache(capacity=bad)

    def test_hit_and_miss_counters(self, query):
        cache = EstimateCache(capacity=4)
        assert cache.get(query) is None
        cache.put(query, 7.0)
        assert cache.get(query) == 7.0
        assert query in cache
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = EstimateCache(capacity=2)
        q1, q2, q3 = distinct_queries(3)
        cache.put(q1, 1.0)
        cache.put(q2, 2.0)
        cache.get(q1)  # refresh q1 so q2 is the least recently used
        cache.put(q3, 3.0)
        assert cache.evictions == 1
        assert q2 not in cache
        assert q1 in cache and q3 in cache

    def test_clear_drops_entries_but_keeps_counters(self, query):
        cache = EstimateCache(capacity=4)
        cache.put(query, 7.0)
        cache.get(query)
        cache.clear()
        assert len(cache) == 0
        assert query not in cache
        assert cache.hits == 1

    def test_keys_are_predicate_order_insensitive(self):
        """Regression: ``a AND b`` and ``b AND a`` must share one entry.

        Query hashes its raw predicate tuple, so before canonicalization
        a reordered rendering of the same conjunction missed the cache
        and stored a duplicate entry.
        """
        p_a = Predicate(0, 1.0, 5.0)
        p_b = Predicate(1, 2.0, 3.0)
        cache = EstimateCache(capacity=4)
        cache.put(Query((p_a, p_b)), 9.0)
        reordered = Query((p_b, p_a))
        assert reordered in cache
        assert cache.get(reordered) == 9.0
        assert (cache.hits, cache.misses) == (1, 0)
        # Re-putting under the reordered form refreshes, not duplicates.
        cache.put(reordered, 10.0)
        assert len(cache) == 1
        assert cache.get(Query((p_a, p_b))) == 10.0


class TestServiceCache:
    def service(self, tiers, table, **kwargs):
        svc = EstimatorService(tiers, **kwargs)
        svc.fit(table)
        return svc

    def test_warm_queries_serve_from_cache(self, tiny_table):
        svc = self.service([StubEstimator(4.0)], tiny_table, cache=32)
        queries = distinct_queries(6)
        cold = svc.serve_many(queries)
        warm = svc.serve_many(queries)
        assert [s.estimate for s in warm] == [s.estimate for s in cold]
        assert all(s.tier == "cache" and s.tier_index == -1 for s in warm)
        assert svc.cache.hits == 6 and svc.cache.misses == 6

    def test_reordered_conjunction_served_from_cache(self, tiny_table):
        svc = self.service([StubEstimator(4.0)], tiny_table, cache=32)
        p_a, p_b = Predicate(0, 1.0, 3.0), Predicate(1, 10.0, 40.0)
        svc.serve(Query((p_a, p_b)))
        warm = svc.serve(Query((p_b, p_a)))
        assert warm.tier == "cache"
        assert warm.estimate == 4.0

    def test_serve_batch_uses_cache(self, tiny_table):
        svc = self.service([StubEstimator(4.0)], tiny_table, cache=32)
        queries = distinct_queries(6)
        svc.serve_batch(queries)
        attempts_after_cold = svc.health().tiers[0].attempts
        warm = svc.serve_batch(queries)
        assert all(s.tier == "cache" for s in warm)
        assert svc.health().tiers[0].attempts == attempts_after_cold

    def test_update_invalidates_cache(self, tiny_table):
        svc = self.service([HeuristicConstantEstimator()], tiny_table, cache=32)
        queries = distinct_queries(4)
        svc.serve_many(queries)
        assert len(svc.cache) == 4
        generation = svc.model_generation
        svc.update(tiny_table, tiny_table.data[:2])
        # Invalidation is by generation tag: old entries are unreachable.
        assert svc.model_generation == generation + 1
        assert svc.cache.generation == svc.model_generation
        assert all(q not in svc.cache for q in queries)
        served = svc.serve_many(queries)
        # Refilled from the refreshed model, not from stale entries.
        assert all(s.tier == "heuristic" for s in served)

    def test_last_resort_answers_are_not_cached(self, tiny_table, query):
        primary = NaNFault(StubEstimator(4.0), probability=1.0, seed=3)
        svc = self.service([primary], tiny_table, cache=32)
        first = svc.serve(query)
        second = svc.serve(query)
        assert first.tier == "last-resort"
        # A transient outage must not pin the emergency constant: the
        # retry walks the chain again instead of hitting the cache.
        assert second.tier == "last-resort"
        assert len(svc.cache) == 0


class TestHotSwapCacheInvalidation:
    """Generation-namespaced cache correctness under interleaved
    ``replace_primary`` hot-swaps — the rolling-swap path of
    :mod:`repro.shard` depends on a swap never serving a stale entry."""

    def service(self, value: float, table, **kwargs):
        svc = EstimatorService([StubEstimator(value, name="gen0")], **kwargs)
        svc.fit(table)
        return svc

    def fitted_stub(self, value: float, name: str, table) -> StubEstimator:
        return StubEstimator(value, name=name).fit(table)

    def test_swap_invalidates_scalar_path(self, tiny_table):
        svc = self.service(4.0, tiny_table, cache=64)
        queries = distinct_queries(5)
        cold = svc.serve_many(queries)
        assert [s.estimate for s in cold] == [4.0] * 5
        assert all(q in svc.cache for q in queries)

        svc.replace_primary(self.fitted_stub(9.0, "gen1", tiny_table))
        swapped = svc.serve_many(queries)
        # Stale 4.0 entries are unreachable: every answer comes from the
        # new model, none from the cache.
        assert [s.estimate for s in swapped] == [9.0] * 5
        assert all(s.tier != "cache" for s in swapped)
        warm = svc.serve_many(queries)
        assert all(s.tier == "cache" and s.estimate == 9.0 for s in warm)

    def test_swap_invalidates_serve_batch_path(self, tiny_table):
        svc = self.service(4.0, tiny_table, cache=64)
        queries = distinct_queries(6)
        svc.serve_batch(queries)
        svc.replace_primary(self.fitted_stub(7.0, "gen1", tiny_table))
        swapped = svc.serve_batch(queries)
        assert [s.estimate for s in swapped] == [7.0] * 6
        assert all(s.tier != "cache" for s in swapped)
        warm = svc.serve_batch(queries)
        assert all(s.tier == "cache" and s.estimate == 7.0 for s in warm)

    def test_interleaved_swaps_and_serves_stay_consistent(self, tiny_table):
        """Swap/serve/swap/serve with overlapping query sets: each serve
        must reflect exactly the model installed at that moment."""
        svc = self.service(1.0, tiny_table, cache=64)
        queries = distinct_queries(8)
        left, right = queries[:5], queries[3:]  # overlap on 3..4

        assert [s.estimate for s in svc.serve_many(left)] == [1.0] * 5
        svc.replace_primary(self.fitted_stub(2.0, "gen1", tiny_table))
        # The overlapping queries were cached under generation 0; they
        # must re-resolve under generation 1.
        assert [s.estimate for s in svc.serve_batch(right)] == [2.0] * 5
        svc.replace_primary(self.fitted_stub(3.0, "gen2", tiny_table))
        final = svc.serve_many(queries)
        assert [s.estimate for s in final] == [3.0] * 8
        assert all(s.tier != "cache" for s in final)
        # Mixed scalar/batch warm reads hit only generation-2 entries.
        warm_scalar = svc.serve_many(queries[:4])
        warm_batch = svc.serve_batch(queries[4:])
        for served in [*warm_scalar, *warm_batch]:
            assert served.tier == "cache"
            assert served.estimate == 3.0

    def test_generation_counter_tracks_every_swap(self, tiny_table):
        svc = self.service(1.0, tiny_table, cache=16)
        queries = distinct_queries(3)
        for expected_generation in range(1, 6):
            svc.serve_batch(queries)
            svc.replace_primary(
                self.fitted_stub(
                    float(expected_generation),
                    f"gen{expected_generation}",
                    tiny_table,
                )
            )
            assert svc.model_generation == expected_generation
            assert svc.cache.generation == expected_generation
            assert all(q not in svc.cache for q in queries)
        # Hits accumulated only within a generation, never across.
        assert svc.cache.hits == 0

    def test_swap_without_cache_is_safe(self, tiny_table):
        svc = self.service(1.0, tiny_table)  # cache disabled (None)
        queries = distinct_queries(3)
        svc.serve_many(queries)
        svc.replace_primary(self.fitted_stub(2.0, "gen1", tiny_table))
        assert [s.estimate for s in svc.serve_many(queries)] == [2.0] * 3
