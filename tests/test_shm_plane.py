"""Tests for the zero-copy serving data plane (repro.shard.shm/codec).

Covers the shared-memory model arena (publish / attach / refcounted
unlink), the binary batch codec (seeded round-trip properties including
NaN/inf bounds and empty batches), the shm ring transport against the
pipe fallback (bit-identity, overflow fallback, crash slot reclaim),
zero-copy live swaps (stable worker PIDs, no model re-pickles), and the
router-shared semantic cache.
"""

import math
import multiprocessing
import os

import numpy as np
import pytest

from repro.core import CardinalityEstimator, Predicate, Query
from repro.faults import WorkerCrashFault
from repro.lifecycle.retrain import RetryPolicy
from repro.shard import (
    ModelArena,
    ShardRequest,
    ShardRouter,
    ShmRing,
    WorkerSupervisor,
)
from repro.shard.codec import (
    CodecError,
    CodecOverflow,
    pack_queries,
    pack_results,
    unpack_queries,
    unpack_results,
)

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK_AVAILABLE, reason="no fork on platform")


class TensorEstimator(CardinalityEstimator):
    """Constant estimator whose answer lives in a big ndarray.

    Big enough that the arena extracts the array into its tensor region
    (the split threshold is 256 bytes), so attach() really serves off a
    shared-memory view rather than the skeleton pickle.
    """

    def __init__(self, value: float = 5.0, name: str = "tensor") -> None:
        super().__init__()
        self.name = name
        self.weights = np.full(1024, float(value))

    def _fit(self, table, workload) -> None:
        pass

    def _estimate(self, query) -> float:
        return float(self.weights[0])


def queries_for(n: int) -> list[Query]:
    return [
        Query((Predicate(0, float(i % 6), float(i % 6) + 1.5),))
        for i in range(n)
    ]


def repro_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-")]


# ----------------------------------------------------------------------
# Model arena
# ----------------------------------------------------------------------
class TestModelArena:
    def test_publish_attach_round_trip(self, tiny_table):
        est = TensorEstimator(6.5).fit(tiny_table)
        arena = ModelArena()
        try:
            handle = arena.publish(est)
            assert handle.num_tensors >= 1
            attachment = ModelArena.attach(handle.name)
            try:
                got = attachment.model.estimate_many(queries_for(4))
                np.testing.assert_array_equal(got, [6.5] * 4)
            finally:
                attachment.close()
        finally:
            arena.close()
        assert not repro_segments()

    def test_attached_tensors_are_read_only_views(self, tiny_table):
        est = TensorEstimator(2.0).fit(tiny_table)
        arena = ModelArena()
        try:
            handle = arena.publish(est)
            attachment = ModelArena.attach(handle.name)
            try:
                weights = attachment.model.weights
                assert not weights.flags.writeable
                with pytest.raises(ValueError):
                    weights[0] = 99.0
                # ...and the segment really is shared, not a copy
                assert weights.base is not None
            finally:
                attachment.close()
        finally:
            arena.close()

    def test_publish_retires_previous_generation(self, tiny_table):
        arena = ModelArena()
        try:
            arena.publish(TensorEstimator(1.0).fit(tiny_table))
            arena.publish(TensorEstimator(2.0).fit(tiny_table))
            # No refs held: the old generation unlinks immediately.
            assert arena.live_generations() == [2]
            assert arena.published == 2
            assert arena.unlinked == 1
        finally:
            arena.close()
        assert not repro_segments()

    def test_refcount_defers_unlink_until_release(self, tiny_table):
        arena = ModelArena()
        try:
            first = arena.publish(TensorEstimator(1.0).fit(tiny_table))
            arena.acquire(first)
            second = arena.publish(TensorEstimator(2.0).fit(tiny_table))
            # Retired but referenced: the segment must survive.
            assert arena.live_generations() == [1, 2]
            arena.release(first)
            assert arena.live_generations() == [2]
            assert second.generation == 2
        finally:
            arena.close()
        assert not repro_segments()

    def test_int8_tensors_publish_packed(self, tiny_table):
        est = TensorEstimator(3.0).fit(tiny_table)
        est.codes = np.arange(4096, dtype=np.int8)  # a packed int8 weight
        arena = ModelArena()
        try:
            handle = arena.publish(est)
            # int8 bytes ride at 1 byte/element (the fitted estimator
            # carries a few other tensors, so bound rather than equate):
            # an upcast of the 4096 codes would add 32 KiB, not 4 KiB.
            assert 1024 * 8 + 4096 <= handle.tensor_bytes < 1024 * 8 + 4096 * 8
            attachment = ModelArena.attach(handle.name)
            try:
                assert attachment.model.codes.dtype == np.int8
                np.testing.assert_array_equal(
                    attachment.model.codes, est.codes
                )
            finally:
                attachment.close()
        finally:
            arena.close()

    def test_attach_unknown_segment_raises(self):
        from repro.shard import ArenaError

        with pytest.raises(ArenaError, match="gone"):
            ModelArena.attach("repro-nonexistent-g1")


# ----------------------------------------------------------------------
# Binary codec: seeded round-trip properties
# ----------------------------------------------------------------------
class TestCodecProperties:
    """Property-style round-trips over 1000+ randomized batches."""

    CASES = 1200

    @staticmethod
    def random_query(rng: np.random.Generator) -> Query:
        preds = []
        k = int(rng.integers(1, 5))
        columns = rng.choice(64, size=k, replace=False)
        for column in (int(c) for c in columns):
            shape = rng.random()
            if shape < 0.2:  # one-sided lo
                preds.append(Predicate(column, float(rng.normal()), None))
            elif shape < 0.4:  # one-sided hi
                preds.append(Predicate(column, None, float(rng.normal())))
            elif shape < 0.5:  # exotic bounds: NaN / ±inf travel as-is
                exotic = [math.nan, math.inf, -math.inf, 0.0, -0.0]
                preds.append(
                    Predicate(
                        column,
                        exotic[int(rng.integers(len(exotic)))],
                        exotic[int(rng.integers(len(exotic)))],
                    )
                )
            else:  # closed range (possibly empty: lo > hi)
                lo, hi = float(rng.normal()), float(rng.normal())
                preds.append(Predicate(column, lo, hi))
        return Query(tuple(preds))

    @staticmethod
    def assert_bounds_equal(a: float | None, b: float | None) -> None:
        if a is None or b is None:
            assert a is b
        else:
            # bit-exact, so NaN == NaN and -0.0 != 0.0 distinctions hold
            assert np.float64(a).tobytes() == np.float64(b).tobytes()

    def test_round_trip_many_batches(self):
        rng = np.random.default_rng(1234)
        buf = bytearray(1 << 16)
        cases = 0
        while cases < self.CASES:
            n = int(rng.integers(0, 9))
            batch = [self.random_query(rng) for _ in range(n)]
            trace_ctx = None
            if rng.random() < 0.5:
                parent = (
                    int(rng.integers(0, 2**63)) if rng.random() < 0.5 else None
                )
                trace_ctx = (int(rng.integers(0, 2**63)), parent)
            tenants = None
            if rng.random() < 0.5:
                tenants = [
                    ["", "alpha", "tenant-β", "日本語"][int(rng.integers(4))]
                    for _ in range(n)
                ]
            used = pack_queries(batch, buf, trace_ctx=trace_ctx, tenants=tenants)
            got, got_trace, got_tenants = unpack_queries(buf[:used])
            assert len(got) == n
            for query, round_tripped in zip(batch, got):
                assert len(round_tripped.predicates) == len(query.predicates)
                for p, q in zip(query.predicates, round_tripped.predicates):
                    assert p.column == q.column
                    self.assert_bounds_equal(p.lo, q.lo)
                    self.assert_bounds_equal(p.hi, q.hi)
            assert got_trace == trace_ctx
            assert got_tenants == tenants
            cases += max(n, 1)

    def test_result_round_trip_nan_inf(self):
        rng = np.random.default_rng(99)
        buf = bytearray(1 << 12)
        for _ in range(50):
            n = int(rng.integers(0, 40))
            estimates = rng.normal(size=n)
            estimates[rng.random(n) < 0.3] = np.nan
            estimates[rng.random(n) < 0.2] = np.inf
            estimates[rng.random(n) < 0.2] = -np.inf
            codes = rng.integers(0, 3, size=n).astype(np.uint8)
            used = pack_results(estimates, codes, buf)
            values, got_codes = unpack_results(buf[:used])
            assert values.tobytes() == estimates.tobytes()  # NaN-exact
            np.testing.assert_array_equal(got_codes, codes)

    def test_empty_batch_round_trips(self):
        buf = bytearray(256)
        used = pack_queries([], buf)
        got, trace, tenants = unpack_queries(buf[:used])
        assert got == [] and trace is None and tenants is None
        used = pack_results(np.zeros(0), np.zeros(0, dtype=np.uint8), buf)
        values, codes = unpack_results(buf[:used])
        assert values.size == 0 and codes.size == 0

    def test_overflow_raises_codec_overflow(self):
        buf = bytearray(64)
        with pytest.raises(CodecOverflow):
            pack_queries(queries_for(20), buf)
        with pytest.raises(CodecOverflow):
            pack_results(np.zeros(100), np.zeros(100, dtype=np.uint8), buf)

    def test_garbage_frame_raises_codec_error(self):
        with pytest.raises(CodecError, match="magic"):
            unpack_queries(b"\x00" * 32)
        with pytest.raises(CodecError, match="header"):
            unpack_results(b"\x01")


# ----------------------------------------------------------------------
# Shm ring
# ----------------------------------------------------------------------
class TestShmRing:
    def test_acquire_release_cycle(self):
        ring = ShmRing(3, 4096)
        try:
            slots = [ring.acquire() for _ in range(3)]
            assert sorted(slots) == [0, 1, 2]
            assert ring.acquire() is None  # exhausted
            ring.release(slots[0])
            assert ring.free_count == 1
            with pytest.raises(ValueError, match="twice"):
                ring.release(slots[0])
        finally:
            ring.close(unlink=True)
        assert not repro_segments()

    def test_slot_views_are_disjoint(self):
        ring = ShmRing(2, 1024)
        try:
            a, b = ring.slot_view(0), ring.slot_view(1)
            a[:4] = b"aaaa"
            b[:4] = b"bbbb"
            assert bytes(ring.slot_view(0)[:4]) == b"aaaa"
            del a, b
        finally:
            ring.close(unlink=True)


# ----------------------------------------------------------------------
# Supervisor transports
# ----------------------------------------------------------------------
@needs_fork
class TestSupervisorTransports:
    def make(self, estimator, table, **kwargs):
        estimator.fit(table)
        supervisor = WorkerSupervisor(
            "s0",
            estimator,
            kwargs.pop("num_workers", 2),
            mode="fork",
            policy=kwargs.pop(
                "policy",
                RetryPolicy(
                    max_attempts=2,
                    backoff_base_seconds=0.01,
                    backoff_cap_seconds=0.05,
                ),
            ),
            **kwargs,
        )
        supervisor.start()
        return supervisor

    def test_shm_and_pipe_answers_bit_identical(self, tiny_table):
        batch = queries_for(32)
        answers = {}
        for transport in ("pipe", "shm"):
            supervisor = self.make(
                TensorEstimator(4.25), tiny_table, transport=transport
            )
            try:
                result = supervisor.dispatch(batch)
                assert result.values is not None
                assert supervisor.transport == transport
                answers[transport] = np.asarray(result.values)
            finally:
                supervisor.drain()
        assert answers["pipe"].tobytes() == answers["shm"].tobytes()
        assert not repro_segments()

    def test_shm_transport_counts_batches(self, tiny_table):
        supervisor = self.make(TensorEstimator(1.0), tiny_table, transport="shm")
        try:
            supervisor.dispatch(queries_for(8))
            supervisor.dispatch(queries_for(8))
            assert supervisor.transport_stats["shm_batches"] == 2
            assert supervisor.transport_stats["pipe_batches"] == 0
        finally:
            supervisor.drain()

    def test_oversized_batch_falls_back_to_pipe(self, tiny_table):
        # Slot too small for the frame: the dispatch must still answer,
        # via the pickle path, and count the overflow.
        supervisor = self.make(
            TensorEstimator(2.5),
            tiny_table,
            transport="shm",
            slot_bytes=128,
        )
        try:
            result = supervisor.dispatch(queries_for(16))
            assert result.values is not None
            np.testing.assert_array_equal(result.values, [2.5] * 16)
            assert supervisor.transport_stats["shm_overflows"] == 1
            assert supervisor.transport_stats["pipe_batches"] == 1
        finally:
            supervisor.drain()

    def test_crashed_worker_slot_is_reclaimed(self, tiny_table):
        # Regression: a worker that dies holding a ring slot must not
        # leak it — ``_fail`` reclaims the slot after the kill, so the
        # ring refills and later dispatches still have slots to use.
        crash = WorkerCrashFault(TensorEstimator(3.0), probability=1.0, after=0)
        supervisor = self.make(
            crash,
            tiny_table,
            num_workers=1,
            transport="shm",
            policy=RetryPolicy(
                max_attempts=1,
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.05,
            ),
        )
        try:
            full = supervisor.ring_free_count
            result = supervisor.dispatch(queries_for(4))
            assert result.values is None  # the lone worker died mid-batch
            assert supervisor.transport_stats["slots_reclaimed"] >= 1
            assert supervisor.ring_free_count == full
        finally:
            supervisor.drain()
        assert not repro_segments()


# ----------------------------------------------------------------------
# Zero-copy live swap
# ----------------------------------------------------------------------
@needs_fork
class TestLiveSwap:
    def test_swap_keeps_worker_pids_and_model_changes(self, tiny_table):
        supervisor = WorkerSupervisor(
            "s0", TensorEstimator(1.0).fit(tiny_table), 2, mode="fork"
        )
        supervisor.start()
        try:
            before = [w.process.pid for w in supervisor._workers]
            assert supervisor.swap_model(TensorEstimator(9.0).fit(tiny_table))
            after = [w.process.pid for w in supervisor._workers]
            assert before == after  # no refork: same processes
            result = supervisor.dispatch(queries_for(4))
            np.testing.assert_array_equal(result.values, [9.0] * 4)
            assert supervisor.generation is not None
        finally:
            supervisor.drain()
        assert not repro_segments()

    def test_swap_model_refuses_pipe_transport(self, tiny_table):
        supervisor = WorkerSupervisor(
            "s0", TensorEstimator(1.0).fit(tiny_table), 1,
            mode="fork", transport="pipe",
        )
        supervisor.start()
        try:
            assert not supervisor.swap_model(
                TensorEstimator(2.0).fit(tiny_table)
            )
        finally:
            supervisor.drain()

    def test_router_rolling_swap_is_zero_copy(self, tiny_table):
        primary = TensorEstimator(4.0).fit(tiny_table)
        fallback = TensorEstimator(1.0, name="fallback").fit(tiny_table)
        probes = queries_for(4)
        router = ShardRouter(
            primary, [fallback], num_shards=2, mode="fork", transport="shm"
        )
        with router:
            pids = {
                name: [w.process.pid for w in shard.supervisor._workers]
                for name, shard in router.shards.items()
            }
            report = router.rolling_swap(
                TensorEstimator(7.0).fit(tiny_table), probe_queries=probes
            )
            assert report.promoted
            stats = router.swap_stats()
            # The acceptance counter: a promoted swap over the arena
            # re-pickles nothing and reforks nothing.
            assert stats["arena_swaps"] == 2
            assert stats["refork_swaps"] == 0
            assert stats["model_pickles"] == 0
            for name, shard in router.shards.items():
                assert pids[name] == [
                    w.process.pid for w in shard.supervisor._workers
                ]
            # One publish served the whole fleet.
            assert router.arena.published == 1
            served = router.serve_queries(queries_for(8))
            assert [s.estimate for s in served] == [7.0] * 8
        assert not repro_segments()


# ----------------------------------------------------------------------
# Shared semantic cache across shards
# ----------------------------------------------------------------------
class TestSharedSemanticCache:
    def router(self, tiny_table, **kwargs):
        primary = TensorEstimator(4.0).fit(tiny_table)
        fallback = TensorEstimator(1.0, name="fallback").fit(tiny_table)
        kwargs.setdefault("mode", "inline")
        kwargs.setdefault("num_shards", 2)
        kwargs.setdefault("semantic_cache", 128)
        return ShardRouter(primary, [fallback], **kwargs)

    def test_second_pass_served_from_semantic_cache(self, tiny_table):
        requests = [ShardRequest(query=q) for q in queries_for(10)]
        with self.router(tiny_table) as router:
            first = router.serve_batch(requests)
            assert all(s.tier != "semantic-cache" for s in first)
            second = router.serve_batch(requests)
            assert all(s.tier == "semantic-cache" for s in second)
            assert [s.estimate for s in second] == [4.0] * 10

    def test_semantic_hits_counted_per_shard(self, tiny_table):
        from repro.obs import FASTPATH_SEMANTIC, MetricsRegistry

        registry = MetricsRegistry()
        requests = [ShardRequest(query=q) for q in queries_for(10)]
        with self.router(tiny_table, registry=registry) as router:
            router.serve_batch(requests)
            router.serve_batch(requests)
        series = registry.counter(FASTPATH_SEMANTIC).snapshot()["series"]
        outcomes = {}
        for entry in series:
            labels = dict(entry["labels"])
            outcomes.setdefault(labels["outcome"], 0)
            outcomes[labels["outcome"]] += entry["value"]
            assert labels["shard"] in ("shard-0", "shard-1")
        assert outcomes.get("miss", 0) == 10
        assert outcomes.get("hit", 0) + outcomes.get("semantic_hit", 0) == 10

    def test_shards_do_not_share_entries(self, tiny_table):
        # Same query forced through two different shards' views must
        # miss on the second shard: slices are generation-disjoint.
        with self.router(tiny_table) as router:
            views = list(router._semantic_views.values())
            query = queries_for(1)[0]
            views[0].put(query, 42.0)
            assert views[0].get(query) == 42.0
            assert views[1].get(query) is None

    def test_swap_invalidates_only_that_shards_slice(self, tiny_table):
        requests = [ShardRequest(query=q) for q in queries_for(10)]
        with self.router(tiny_table) as router:
            router.serve_batch(requests)
            served = router.serve_batch(requests)
            assert all(s.tier == "semantic-cache" for s in served)
            name = router.route(requests[0])
            router.shards[name].swap_model(
                TensorEstimator(8.0).fit(tiny_table)
            )
            after = router.serve_batch([requests[0]])[0]
            # That shard's slice rolled: the answer comes from the new
            # model, not the stale cached 4.0.
            assert after.estimate == 8.0
