"""Tests for the q-error metric and its summaries."""

import numpy as np
import pytest

from repro.core import QErrorSummary, qerror, qerrors, summarize
from repro.core.metrics import format_qerror, top_fraction, win_lose


class TestQError:
    def test_exact_estimate(self):
        assert qerror(100, 100) == 1.0

    def test_symmetric(self):
        assert qerror(10, 100) == qerror(100, 10) == 10.0

    def test_clamps_zero_actual(self):
        # A zero-cardinality query with estimate 5 -> error 5, not inf.
        assert qerror(5, 0) == 5.0

    def test_clamps_zero_estimate(self):
        assert qerror(0, 50) == 50.0

    def test_both_zero(self):
        assert qerror(0, 0) == 1.0

    def test_vectorised_matches_scalar(self):
        est = np.array([1, 10, 0, 200])
        act = np.array([10, 10, 7, 2])
        expected = [qerror(e, a) for e, a in zip(est, act)]
        np.testing.assert_allclose(qerrors(est, act), expected)

    def test_never_below_one(self, rng):
        est = rng.uniform(0, 1000, 100)
        act = rng.uniform(0, 1000, 100)
        assert (qerrors(est, act) >= 1.0).all()


class TestSummary:
    def test_percentiles(self):
        errors = np.arange(1, 101, dtype=float)
        s = QErrorSummary.from_errors(errors)
        assert s.p50 == pytest.approx(50.5)
        assert s.max == 100.0
        assert s.p95 < s.p99 < s.max

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QErrorSummary.from_errors(np.array([]))

    def test_summarize_end_to_end(self):
        s = summarize(np.array([10.0, 10.0]), np.array([10.0, 100.0]))
        assert s.p50 == pytest.approx(5.5)
        assert s.max == 10.0


class TestTopFraction:
    def test_keeps_largest(self):
        errors = np.array([1, 5, 3, 100, 2], dtype=float)
        np.testing.assert_array_equal(top_fraction(errors, 0.2), [100.0])

    def test_at_least_one(self):
        assert len(top_fraction(np.array([1.0, 2.0]), 0.01)) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction(np.array([1.0]), 0.0)


class TestFormatting:
    def test_small_value(self):
        assert format_qerror(1.234) == "1.23"

    def test_hundreds(self):
        assert format_qerror(384.2) == "384"

    def test_scientific(self):
        assert format_qerror(2.3e5) == "2e5"


class TestWinLose:
    def test_learned_wins_everywhere(self):
        t = {"pg": QErrorSummary(2, 20, 50, 500)}
        l = {"naru": QErrorSummary(1, 10, 40, 400)}
        assert win_lose(t, l) == {
            "p50": "win", "p95": "win", "p99": "win", "max": "win"
        }

    def test_mixed_verdict_uses_best_of_each_group(self):
        t = {
            "pg": QErrorSummary(1.0, 20, 50, 500),
            "bayes": QErrorSummary(1.5, 5, 10, 100),
        }
        l = {"naru": QErrorSummary(1.2, 5, 8, 50)}
        verdict = win_lose(t, l)
        assert verdict["p50"] == "lose"  # 1.2 > best traditional 1.0
        assert verdict["p95"] == "win"  # ties count as win
        assert verdict["p99"] == "win"
        assert verdict["max"] == "win"
