"""Tests for dataset generators: synthetic sweeps, real-world simulators,
and the dynamic-environment update procedure."""

import numpy as np
import pytest

from repro.datasets import (
    apply_update,
    census,
    correlated_append_rows,
    correlation_sweep,
    dataset_names,
    dmv,
    domain_sweep,
    forest,
    generate_synthetic,
    load,
    power,
    skew_sweep,
    skewed_uniform,
)


class TestSkewedUniform:
    def test_uniform_at_zero_skew(self, rng):
        vals = skewed_uniform(20_000, 0.0, rng)
        assert abs(vals.mean() - 0.5) < 0.02
        assert vals.min() >= 0.0 and vals.max() < 1.0

    def test_skew_concentrates_near_zero(self, rng):
        mild = skewed_uniform(20_000, 0.5, rng).mean()
        heavy = skewed_uniform(20_000, 2.0, rng).mean()
        assert heavy < mild < 0.5

    def test_negative_skew_rejected(self, rng):
        with pytest.raises(ValueError):
            skewed_uniform(10, -1.0, rng)


class TestSynthetic:
    def test_shape_and_domain(self, rng):
        t = generate_synthetic(5000, 1.0, 0.5, 100, rng)
        assert t.num_rows == 5000
        assert t.num_columns == 2
        assert t.columns[0].num_distinct <= 100
        assert t.columns[1].num_distinct <= 100

    def test_full_correlation_is_functional_dependency(self, rng):
        t = generate_synthetic(5000, 1.0, 1.0, 100, rng)
        np.testing.assert_array_equal(t.data[:, 0], t.data[:, 1])

    def test_zero_correlation_is_independent(self, rng):
        t = generate_synthetic(30_000, 0.0, 0.0, 10, rng)
        joint = np.corrcoef(t.data[:, 0], t.data[:, 1])[0, 1]
        assert abs(joint) < 0.03

    def test_correlation_monotone_in_c(self, rng):
        def corr(c):
            t = generate_synthetic(20_000, 0.0, c, 50, rng)
            return np.corrcoef(t.data[:, 0], t.data[:, 1])[0, 1]

        assert corr(0.25) < corr(0.75) < corr(1.0) + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_synthetic(0, 1.0, 0.5, 10, rng)
        with pytest.raises(ValueError):
            generate_synthetic(10, 1.0, 2.0, 10, rng)
        with pytest.raises(ValueError):
            generate_synthetic(10, 1.0, 0.5, 1, rng)

    def test_sweeps_have_expected_levels(self, rng):
        assert set(correlation_sweep(500, rng)) == {0.0, 0.25, 0.5, 0.75, 1.0}
        assert set(skew_sweep(500, rng)) == {0.0, 0.5, 1.0, 1.5, 2.0}
        assert set(domain_sweep(500, rng, levels=(10, 100))) == {10, 100}


class TestRealWorldSimulators:
    def test_paper_shapes(self):
        """Column counts and categorical mixes match Table 3."""
        t = census(1000)
        assert (t.num_columns, t.num_categorical) == (13, 8)
        t = forest(1000)
        assert (t.num_columns, t.num_categorical) == (10, 0)
        t = power(1000)
        assert (t.num_columns, t.num_categorical) == (7, 0)
        t = dmv(1000)
        assert (t.num_columns, t.num_categorical) == (11, 10)

    def test_size_ordering_preserved(self):
        sizes = [load(n).num_rows for n in dataset_names()]
        assert sizes == sorted(sizes)

    def test_deterministic(self):
        a = census(800)
        b = census(800)
        np.testing.assert_array_equal(a.data, b.data)

    def test_columns_are_correlated(self):
        """The generators must produce AVI-violating dependence."""
        t = power(5000)
        corr = np.corrcoef(t.data.T)
        off_diag = corr[~np.eye(t.num_columns, dtype=bool)]
        assert np.abs(off_diag).max() > 0.3

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("tpch")

    def test_custom_row_count(self):
        assert dmv(1234).num_rows == 1234


class TestUpdates:
    def test_appended_fraction(self, small_census, rng):
        rows = correlated_append_rows(small_census, 0.2, rng)
        assert len(rows) == round(0.2 * small_census.num_rows)

    def test_appended_rows_from_sorted_copy(self, tiny_table, rng):
        rows = correlated_append_rows(tiny_table, 0.5, rng)
        # Every appended value must exist in the column's domain.
        for d in range(tiny_table.num_columns):
            assert set(rows[:, d]) <= set(tiny_table.columns[d].distinct_values)

    def test_appended_data_maximises_rank_correlation(self, rng):
        t = census(3000)
        rows = correlated_append_rows(t, 1.0, rng)
        # The sorted-copy construction aligns all columns by rank: the
        # rank correlation of any numeric pair is (near) 1.
        a = np.argsort(np.argsort(rows[:, 0]))
        b = np.argsort(np.argsort(rows[:, 3]))
        rho = np.corrcoef(a, b)[0, 1]
        assert rho > 0.95

    def test_apply_update(self, small_census, rng):
        new_table, appended = apply_update(small_census, rng, fraction=0.2)
        assert new_table.num_rows == small_census.num_rows + len(appended)
        assert new_table.name.endswith("_updated")

    def test_fraction_validated(self, small_census, rng):
        with pytest.raises(ValueError):
            correlated_append_rows(small_census, 0.0, rng)
