"""Tests for the deterministic process-pool executor (repro.parallel).

The contract under test: parallel results are bit-identical to serial
ones; a raising task, a dying worker, or an over-budget task is retried
once and then surfaced as a structured :class:`TaskFailure` — never a
hang, never a poisoned pool.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.faults import SimulatedCrash
from repro.obs import get_registry
from repro.obs.metrics import PARALLEL_TASKS
from repro.parallel import (
    ParallelError,
    ParallelExecutor,
    TaskFailure,
    derive_rng,
    derive_seed,
    detect_worker_count,
    worker_seconds,
)

FORK_AVAILABLE = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK_AVAILABLE, reason="no fork on platform")


# ----------------------------------------------------------------------
# Task bodies (module level only for readability; fork needs no pickling)
# ----------------------------------------------------------------------
def _square(item, _rng):
    return item * item


def _draw(item, rng):
    """Consumes the executor-derived rng: the determinism acid test."""
    return float(rng.standard_normal()) + item


def _raise_simulated_crash(item, _rng):
    raise SimulatedCrash(f"injected for item {item}")


def _die_by_signal(item, _rng):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_forever(item, _rng):
    time.sleep(60.0)


def _crash_once_then_succeed(item, _rng):
    """Fails on first attempt, succeeds on retry (flag file in /tmp)."""
    flag, value = item
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("attempted")
        raise SimulatedCrash("first attempt dies")
    return value


class TestSeedDerivation:
    def test_detect_worker_count_positive(self):
        assert detect_worker_count() >= 1

    def test_same_inputs_same_seed(self):
        a = derive_rng(7, 3).standard_normal(4)
        b = derive_rng(7, 3).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_distinct_indices_distinct_streams(self):
        a = derive_rng(7, 0).standard_normal(4)
        b = derive_rng(7, 1).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_seed_independent_of_pool_shape(self):
        # The derivation has no worker/pool inputs at all — the seed for
        # (base, index) is a pure function of those two values.
        s1 = derive_seed(5, 2).generate_state(4)
        s2 = derive_seed(5, 2).generate_state(4)
        np.testing.assert_array_equal(s1, s2)


class TestMapTasks:
    def test_serial_results_in_order(self):
        ex = ParallelExecutor(max_workers=1, mode="serial")
        assert ex.map_tasks(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    @needs_fork
    def test_fork_results_in_order(self):
        ex = ParallelExecutor(max_workers=4, mode="fork")
        assert ex.map_tasks(_square, list(range(8))) == [i * i for i in range(8)]

    @needs_fork
    def test_fork_bit_identical_to_serial(self):
        serial = ParallelExecutor(max_workers=1, base_seed=11, mode="serial")
        forked = ParallelExecutor(max_workers=4, base_seed=11, mode="fork")
        items = list(range(6))
        assert serial.map_tasks(_draw, items) == forked.map_tasks(_draw, items)

    def test_empty_items(self):
        ex = ParallelExecutor(max_workers=2, mode="serial")
        assert ex.map_tasks(_square, []) == []
        assert ex.map_tasks(_square, [], reduce=sum) == 0

    def test_reduce_sees_task_order(self):
        ex = ParallelExecutor(max_workers=2, mode="serial")
        assert ex.map_tasks(_square, [3, 1, 2], reduce=tuple) == (9, 1, 4)

    def test_submit_handle(self):
        ex = ParallelExecutor(max_workers=1, mode="serial")
        assert ex.submit(_square, 9).result() == 81

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor(task_timeout=0.0)
        with pytest.raises(ValueError):
            ParallelExecutor(mode="threads")
        with pytest.raises(ValueError):
            ParallelExecutor(mode="serial").map_tasks(_square, [1], on_error="ignore")


class TestFaultContainment:
    def test_serial_raise_becomes_structured_failure(self):
        ex = ParallelExecutor(max_workers=1, mode="serial")
        [failure] = ex.map_tasks(_raise_simulated_crash, ["x"], on_error="return")
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "SimulatedCrash"
        assert failure.attempts == 2  # retried once, then surfaced

    @needs_fork
    def test_fork_raise_becomes_structured_failure(self):
        ex = ParallelExecutor(max_workers=2, mode="fork")
        results = ex.map_tasks(
            _raise_simulated_crash, ["a", "b"], on_error="return"
        )
        assert all(isinstance(r, TaskFailure) for r in results)
        assert {r.error_type for r in results} == {"SimulatedCrash"}

    @needs_fork
    def test_killed_worker_is_contained(self):
        """SIGKILL mid-task must not kill the parent or hang the pool."""
        ex = ParallelExecutor(max_workers=2, mode="fork")
        [ok, failure] = ex.map_tasks(
            lambda item, rng: _die_by_signal(item, rng) if item else _square(3, rng),
            [False, True],
            on_error="return",
        )
        assert ok == 9
        assert isinstance(failure, TaskFailure)
        assert failure.worker_died
        assert failure.attempts == 2

    @needs_fork
    def test_timeout_kills_and_surfaces(self):
        ex = ParallelExecutor(max_workers=1, mode="fork", task_timeout=0.2, retries=0)
        start = time.perf_counter()
        [failure] = ex.map_tasks(_sleep_forever, [0], on_error="return")
        elapsed = time.perf_counter() - start
        assert isinstance(failure, TaskFailure)
        assert failure.timed_out
        assert elapsed < 10.0  # bounded, nowhere near the 60s sleep

    @needs_fork
    def test_retry_once_then_succeed(self, tmp_path):
        flag = str(tmp_path / "attempted.flag")
        ex = ParallelExecutor(max_workers=1, mode="fork")
        assert ex.map_tasks(_crash_once_then_succeed, [(flag, 42)]) == [42]

    def test_on_error_raise(self):
        ex = ParallelExecutor(max_workers=1, mode="serial")
        with pytest.raises(ParallelError) as excinfo:
            ex.map_tasks(_raise_simulated_crash, ["x"])
        assert excinfo.value.failure.error_type == "SimulatedCrash"

    def test_failure_str_mentions_cause(self):
        f = TaskFailure(index=3, error_type="Timeout", message="", attempts=2, timed_out=True)
        assert "task 3" in str(f) and "timed out" in str(f)


class TestTelemetry:
    def test_counters_recorded(self):
        ex = ParallelExecutor(max_workers=1, mode="serial")
        ex.map_tasks(_square, [1, 2, 3])
        ex.map_tasks(_raise_simulated_crash, ["x"], on_error="return")
        counter = get_registry().get(PARALLEL_TASKS)
        assert counter.value(status="ok", mode="serial") == 3
        assert counter.value(status="failed", mode="serial") == 2  # 1 task x 2 attempts
        assert counter.value(status="retried", mode="serial") == 1
        assert worker_seconds(mode="serial") >= 0.0

    @needs_fork
    def test_worker_seconds_accumulate(self):
        before = worker_seconds(mode="fork")
        ex = ParallelExecutor(max_workers=2, mode="fork")
        ex.map_tasks(lambda item, rng: time.sleep(0.05), [0, 1])
        assert worker_seconds(mode="fork") - before >= 0.08
