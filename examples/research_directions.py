"""Prototypes of the paper's research directions (Section 7).

Run::

    python examples/research_directions.py

Three of the paper's proposed remedies, working end to end:

1. **Control the cost** — a hierarchical ensemble routes simple queries
   to a cheap estimator and complex ones to the heavy model, and a
   fallback ensemble serves the cheap model while the heavy one
   retrains (Section 7.1).
2. **Tune cheaply** — successive halving finds a competitive
   architecture at a fraction of grid search's training cost.
3. **Make it trustworthy** — the LogicalGuard wrapper restores
   stability and both fidelity rules around Naru's stochastic
   progressive sampling (Section 7.2).
"""

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator
from repro.core.metrics import qerrors
from repro.datasets import apply_update
from repro.estimators.learned import FallbackEstimator, HierarchicalEstimator
from repro.estimators.traditional import PostgresEstimator, SamplingEstimator
from repro.rules import LogicalGuard, check_all
from repro.tuning import SearchSpace, grid_search, successive_halving


def _geo(errors: np.ndarray) -> float:
    return float(np.exp(np.log(errors).mean()))


def ensembles(scale: Scale, table, train, test) -> None:
    print("1. cost control: ensembles")
    queries = list(test.queries)

    hier = HierarchicalEstimator(
        PostgresEstimator(), make_estimator("naru", scale), predicate_threshold=3
    ).fit(table)
    light_frac, heavy_frac = hier.routing_fractions(queries)
    errors = qerrors(hier.estimate_many(queries), test.cardinalities)
    print(
        f"   hierarchical: {light_frac:.0%} of queries -> postgres, "
        f"{heavy_frac:.0%} -> naru; geo q-error={_geo(errors):.2f}"
    )

    fallback = FallbackEstimator(
        PostgresEstimator(), SamplingEstimator(fraction=0.05)
    ).fit(table)
    rng = np.random.default_rng(0)
    new_table, appended = apply_update(table, rng)
    fallback.update(new_table, appended)
    print(f"   fallback: serving '{fallback.serving}' while heavy model is stale")
    fallback.promote()
    print(f"   fallback: serving '{fallback.serving}' after promote()\n")


def cheap_tuning(scale: Scale, table, train, test) -> None:
    print("2. cheap hyper-parameter tuning")
    from repro.estimators.learned import LwNnEstimator

    valid, _ = test.split(max(2, len(test) // 2))

    def builder(config):
        return LwNnEstimator(
            hidden_units=config["hidden_units"],
            epochs=int(config.get("epochs", scale.nn_epochs)),
        )

    space = SearchSpace({"hidden_units": [(8,), (16,), (32, 32), (64, 64)]})
    rng = np.random.default_rng(1)
    grid = grid_search(builder, space, table, train, valid)
    halving = successive_halving(
        builder, space, table, train, valid, rng,
        num_configs=4, min_epochs=1, max_epochs=scale.nn_epochs,
    )
    print(
        f"   grid search:        best geo q-error={grid.best_score:.2f} "
        f"({grid.total_fit_seconds:.1f}s over {len(grid.trials)} fits)"
    )
    print(
        f"   successive halving: best geo q-error={halving.best_score:.2f} "
        f"({halving.total_fit_seconds:.1f}s over {len(halving.trials)} fits)\n"
    )


def trustworthy(scale: Scale, table, train) -> None:
    print("3. trustworthiness: the LogicalGuard wrapper around Naru")
    rng = np.random.default_rng(2)
    naked = make_estimator("naru", scale).fit(table)
    guarded = LogicalGuard(make_estimator("naru", scale)).fit(table)
    for est in (naked, guarded):
        reports = check_all(est, table, rng, num_checks=20)
        marks = " ".join(
            f"{rule}={'ok' if rep.satisfied else 'VIOLATED'}"
            for rule, rep in reports.items()
        )
        print(f"   {est.name:15s} {marks}")


def main() -> None:
    scale = Scale.ci()
    rng = np.random.default_rng(9)
    table = datasets.census()
    train = generate_workload(table, scale.train_queries, rng)
    test = generate_workload(table, scale.test_queries, rng)
    ensembles(scale, table, train, test)
    cheap_tuning(scale, table, train, test)
    trustworthy(scale, table, train)


if __name__ == "__main__":
    main()
