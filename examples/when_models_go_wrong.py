"""When do learned models go wrong? (a miniature of paper Section 6).

Run::

    python examples/when_models_go_wrong.py

Trains the same model configurations on synthetic datasets with rising
correlation, shows the top-1% q-error blow-up at functional dependency,
and checks the five logical rules of Section 6.3 against each learned
method — reproducing the paper's Table 6 pattern (only DeepDB behaves
logically).
"""

import numpy as np

from repro import Scale, generate_workload
from repro.bench.reporting import render_table
from repro.core import WorkloadConfig
from repro.core.metrics import qerrors, top_fraction
from repro.datasets import generate_synthetic
from repro.registry import LEARNED_NAMES, make_estimator
from repro.rules import check_all


def correlation_blowup(scale: Scale) -> None:
    rng = np.random.default_rng(3)
    config = WorkloadConfig(ood_probability=1.0)  # probe the whole space
    rows = []
    for c in (0.0, 0.5, 1.0):
        table = generate_synthetic(scale.synthetic_rows, 1.0, c, 1000, rng)
        train = generate_workload(table, scale.train_queries, rng, config)
        test = generate_workload(table, scale.test_queries, rng, config)
        row = [f"c={c:g}"]
        for name in ("naru", "deepdb", "lw-xgb"):
            est = make_estimator(name, scale)
            est.fit(table, train if est.requires_workload else None)
            errors = qerrors(
                est.estimate_many(list(test.queries)), test.cardinalities
            )
            row.append(f"{np.median(top_fraction(errors)):.0f}")
        rows.append(row)
    print(
        render_table(
            ["Correlation", "naru", "deepdb", "lw-xgb"],
            rows,
            title="Top-1% q-error (median) vs correlation (paper Figure 9a)",
        )
    )
    print()


def rule_check(scale: Scale) -> None:
    rng = np.random.default_rng(4)
    table = generate_synthetic(scale.synthetic_rows, 1.0, 0.8, 100, rng)
    train = generate_workload(table, scale.train_queries, rng)
    rows = []
    for name in LEARNED_NAMES:
        est = make_estimator(name, scale)
        est.fit(table, train if est.requires_workload else None)
        reports = check_all(est, table, rng, num_checks=25)
        rows.append(
            [name]
            + ["/" if reports[r].satisfied else "x"
               for r in ("monotonicity", "consistency", "stability",
                         "fidelity-a", "fidelity-b")]
        )
    print(
        render_table(
            ["Method", "Monotonic", "Consistent", "Stable", "Fid-A", "Fid-B"],
            rows,
            title="Logical rules (paper Table 6): / satisfied, x violated",
        )
    )


def main() -> None:
    scale = Scale.ci()
    correlation_blowup(scale)
    rule_check(scale)


if __name__ == "__main__":
    main()
