"""Plan quality: why cardinality estimation matters (paper Section 1).

Run::

    python examples/plan_quality.py

"A query plan based on a wrongly estimated cardinality can be orders of
magnitude slower than the best plan."  This example quantifies the link
with the miniature single-table optimizer: each estimator's predictions
drive an access-path choice (sequential / index / bitmap scan), and
*plan regret* compares the chosen plan's true cost against the best
plan's.  Accurate estimators (low q-error) should choose near-optimal
plans; estimators with heavy error tails should occasionally pick plans
that are much more expensive.
"""

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator
from repro.bench.reporting import render_table
from repro.core.metrics import qerrors
from repro.planner import SingleTablePlanner

METHODS = ["postgres", "mhist", "lw-xgb", "naru", "deepdb"]


def main() -> None:
    rng = np.random.default_rng(5)
    scale = Scale.ci()
    table = datasets.power()
    train = generate_workload(table, scale.train_queries, rng)
    test = generate_workload(table, scale.test_queries, rng)
    queries = list(test.queries)
    planner = SingleTablePlanner(table)

    rows = []
    for name in METHODS:
        est = make_estimator(name, scale)
        est.fit(table, train if est.requires_workload else None)
        estimates = est.estimate_many(queries)
        errors = qerrors(estimates, test.cardinalities)
        regrets = np.array(
            [
                planner.regret(q, e, a)
                for q, e, a in zip(queries, estimates, test.cardinalities)
            ]
        )
        rows.append(
            [
                name,
                f"{np.median(errors):.2f}",
                f"{np.percentile(errors, 95):.1f}",
                f"{np.mean(regrets > 1.01) * 100:.0f}%",
                f"{np.percentile(regrets, 95):.2f}",
                f"{regrets.max():.1f}",
            ]
        )
    print(
        render_table(
            ["Method", "q-err p50", "q-err p95",
             "wrong plans", "regret p95", "regret max"],
            rows,
            title=f"Plan regret on {table.name} "
                  "(chosen plan's true cost / best plan's true cost)",
        )
    )
    print("\nLower q-error -> fewer wrong access-path choices -> lower regret")
    print("(the Moerkotte et al. link the paper uses to justify q-error).")


if __name__ == "__main__":
    main()
