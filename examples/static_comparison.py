"""Static-environment shoot-out (a miniature of the paper's Table 4).

Run::

    python examples/static_comparison.py [dataset]

Fits all thirteen estimators on one dataset under the same workload and
prints the 50th/95th/99th/max q-error table with the learned-vs-
traditional verdict, plus model sizes and costs.
"""

import sys

import numpy as np

from repro import (
    LEARNED_NAMES,
    TRADITIONAL_NAMES,
    Scale,
    datasets,
    generate_workload,
    make_estimator,
    summarize,
)
from repro.bench.reporting import format_seconds, render_table
from repro.core.metrics import format_qerror, win_lose


def main(dataset: str = "census") -> None:
    rng = np.random.default_rng(1)
    scale = Scale.ci()
    table = datasets.load(dataset)
    train = generate_workload(table, scale.train_queries, rng)
    test = generate_workload(table, scale.test_queries, rng)
    queries = list(test.queries)

    rows = []
    summaries: dict[str, object] = {}
    for name in TRADITIONAL_NAMES + LEARNED_NAMES:
        est = make_estimator(name, scale)
        est.fit(table, train if est.requires_workload else None)
        summary = summarize(est.estimate_many(queries), test.cardinalities)
        summaries[name] = summary
        rows.append(
            [
                name,
                "learned" if name in LEARNED_NAMES else "traditional",
                *[format_qerror(v) for v in summary.as_tuple()],
                format_seconds(est.timing.fit_seconds),
                f"{est.timing.mean_inference_ms:.2f}ms",
                f"{est.model_size_bytes() / 1024:.0f}KB",
            ]
        )

    verdict = win_lose(
        {n: summaries[n] for n in TRADITIONAL_NAMES},
        {n: summaries[n] for n in LEARNED_NAMES},
    )
    rows.append(
        ["L v.s. T", "", verdict["p50"], verdict["p95"], verdict["p99"],
         verdict["max"], "", "", ""]
    )
    print(
        render_table(
            ["Estimator", "Group", "50th", "95th", "99th", "Max",
             "Train", "Infer", "Size"],
            rows,
            title=f"Static comparison on {dataset} ({table.num_rows} rows)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "census")
