"""Observability demo: watch a training run and a serving replay through
the telemetry layer.

Run::

    python examples/observability_demo.py

Installs a span collector and a training monitor, trains LW-NN and
LW-XGB while streaming their per-epoch losses, then serves a workload
through a fallback chain whose primary goes down mid-replay.  Afterwards
it prints the span tree for one serve call, the breaker's transition
narrative from the event log, and the Prometheus exposition of the
metrics every layer reported into — the same text a scrape endpoint or
dashboard would consume.
"""

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator
from repro.faults import ExceptionFault
from repro.obs import (
    get_events,
    get_registry,
    install_collector,
    monitored_training,
    reset_for_tests,
)
from repro.serve import BreakerConfig, EstimatorService


def sparkline(values, width: int = 40) -> str:
    """Tiny unicode chart of a loss curve."""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    return "".join(blocks[int(7 * (v - lo) / spread)] for v in values)


def main() -> None:
    reset_for_tests()
    rng = np.random.default_rng(0)
    scale = Scale.ci()
    table = datasets.census()
    train = generate_workload(table, 400, rng)
    test = generate_workload(table, 120, rng)

    collector = install_collector()

    print("=== training under a TrainingMonitor ===")
    with monitored_training() as monitor:
        lw_nn = make_estimator("lw-nn", scale).fit(table, train)
        lw_xgb = make_estimator("lw-xgb", scale).fit(table, train)
    for model in monitor.models():
        losses = monitor.losses(model)
        print(f"{model:>7}: {len(losses):3d} epochs  "
              f"loss {losses[0]:.3f} -> {losses[-1]:.3f}  {sparkline(losses)}")
    print()

    print("=== serving while the primary fails mid-replay ===")
    flaky = ExceptionFault(lw_nn, probability=0.0, seed=7)
    service = EstimatorService(
        [flaky, lw_xgb, make_estimator("sampling", scale).fit(table)],
        deadline_ms=250.0,
        breaker=BreakerConfig(failure_threshold=5, recovery_seconds=30.0),
    )
    queries = list(test.queries)
    half = len(queries) // 2
    service.serve_many(queries[:half])
    flaky.probability = 1.0  # the primary goes down
    service.serve_many(queries[half:])
    print(service.health().to_text())
    print()

    print("=== span tree of the last serve call ===")
    last_serve = collector.spans("serve")[-1]
    print(f"serve ({1000 * last_serve.duration_seconds:.2f}ms) "
          f"tier={last_serve.attrs.get('tier')}")
    for child in collector.children(last_serve):
        print(f"  └─ {child.name} tier={child.attrs.get('tier')} "
              f"outcome={child.attrs.get('outcome')} "
              f"({1000 * child.duration_seconds:.2f}ms)")
    print()

    print("=== breaker narrative from the event log ===")
    for event in get_events().events("breaker.transition"):
        print(f"  {event['breaker']}: {event['old']} -> {event['new']}")
    fallbacks = get_events().events("serve.fallback")
    print(f"  ({len(fallbacks)} queries served by a fallback tier)")
    print()

    print("=== Prometheus exposition (first 25 lines) ===")
    for line in get_registry().render_text().splitlines()[:25]:
        print(f"  {line}")
    print("  ...")


if __name__ == "__main__":
    main()
