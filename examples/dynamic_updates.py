"""Dynamic environment demo (a miniature of the paper's Figure 6).

Run::

    python examples/dynamic_updates.py [dataset]

Appends 20% correlation-shifted rows to a dataset, updates each
estimator the way its original paper prescribes, and shows how the
99th-percentile q-error depends on the update frequency T — including
the "cannot finish within T" failures the paper highlights.
"""

import sys

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator
from repro.bench.reporting import format_seconds, render_table
from repro.datasets import apply_update
from repro.dynamic import measure_update, mix_for_horizon

METHODS = ["postgres", "deepdb", "naru", "lw-xgb", "mscn"]


def main(dataset: str = "census") -> None:
    rng = np.random.default_rng(2)
    scale = Scale.ci()
    old_table = datasets.load(dataset)
    new_table, appended = apply_update(old_table, rng)
    test = generate_workload(new_table, scale.test_queries, rng)
    print(
        f"{old_table.name}: {old_table.num_rows} rows + "
        f"{len(appended)} correlation-shifted rows appended\n"
    )

    measurements = {}
    train = generate_workload(old_table, scale.train_queries, rng)
    for name in METHODS:
        est = make_estimator(name, scale)
        est.fit(old_table, train if est.requires_workload else None)
        measurements[name] = measure_update(
            est, new_table, appended, test, rng, scale.update_queries
        )

    slowest = max(m.effective_update_seconds() for m in measurements.values())
    horizons = {"high": 0.35 * slowest, "medium": 1.2 * slowest, "low": 5 * slowest}

    rows = []
    for name, meas in measurements.items():
        row = [name, format_seconds(meas.effective_update_seconds())]
        for horizon in horizons.values():
            res = mix_for_horizon(meas, horizon)
            row.append("x (missed)" if not res.finished else f"{res.p99:.1f}")
        rows.append(row)
    headers = ["Method", "t_u"] + [
        f"T={freq} ({format_seconds(h)})" for freq, h in horizons.items()
    ]
    print(render_table(headers, rows,
                       title="99th-percentile q-error by update frequency"))
    print("\nx = the model update could not finish within the window, so all")
    print("queries were answered by the stale model (paper Figure 6).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "census")
