"""Serving demo: inject faults live and watch the service degrade gracefully.

Run::

    python examples/serving_demo.py

Builds a fallback chain (naru -> sampling -> postgres -> heuristic),
then replays the same workload three times while the primary misbehaves
in a different way each time — NaN storm, exceptions, then a corrupted
model artifact — and prints the health snapshot after each phase.  Every
query is answered throughout: the circuit breaker trips, traffic shifts
to the traditional tiers, and estimates stay finite and in-bounds.
"""

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator, summarize
from repro.faults import CorruptionFault, ExceptionFault, NaNFault
from repro.serve import BreakerConfig, EstimatorService


def replay(service, queries, actuals, label):
    served = service.serve_many(queries)
    estimates = np.array([s.estimate for s in served])
    assert np.isfinite(estimates).all(), "the service must never emit garbage"
    print(f"--- {label} ---")
    print(f"q-errors: {summarize(estimates, actuals)}")
    print(service.health().to_text())
    print()


def main() -> None:
    rng = np.random.default_rng(0)
    scale = Scale.ci()
    table = datasets.census()
    test = generate_workload(table, 80, rng)
    queries = list(test.queries)

    print("fitting the fallback chain (naru -> sampling -> postgres -> heuristic)...")
    naru = make_estimator("naru", scale).fit(table)
    fallbacks = [make_estimator(n, scale).fit(table)
                 for n in ("sampling", "postgres", "heuristic")]

    def fresh_service(primary):
        return EstimatorService(
            [primary] + fallbacks,
            deadline_ms=250.0,
            breaker=BreakerConfig(failure_threshold=5, recovery_seconds=30.0),
        )

    replay(fresh_service(naru), queries, test.cardinalities, "healthy primary")
    replay(
        fresh_service(NaNFault(naru, probability=1.0, seed=1)),
        queries,
        test.cardinalities,
        "primary answers NaN (breaker trips, sampling takes over)",
    )
    replay(
        fresh_service(ExceptionFault(naru, probability=0.3, seed=2)),
        queries,
        test.cardinalities,
        "primary raises on 30% of queries (partial degradation)",
    )
    corrupted = CorruptionFault(
        make_estimator("naru", scale).fit(table), probability=1.0, seed=3
    )
    replay(
        fresh_service(corrupted),
        queries,
        test.cardinalities,
        "corrupted model artifact (sanitization + breaker)",
    )


if __name__ == "__main__":
    main()
