"""Quickstart: train a learned estimator and compare it with Postgres.

Run::

    python examples/quickstart.py

Loads the simulated Census dataset, generates the paper's unified
workload, fits Naru (data-driven) and a Postgres-style estimator, and
prints side-by-side q-error summaries plus a few example queries.
"""

import numpy as np

from repro import Scale, datasets, generate_workload, make_estimator, summarize


def main() -> None:
    rng = np.random.default_rng(0)
    scale = Scale.ci()  # seconds, not minutes; try Scale.default() for more

    table = datasets.census()
    print(f"dataset: {table} (joint domain ~10^{table.log10_domain_product():.0f})")

    train = generate_workload(table, scale.train_queries, rng)
    test = generate_workload(table, scale.test_queries, rng)
    print(f"workload: {len(train)} training / {len(test)} test queries\n")

    naru = make_estimator("naru", scale)
    naru.fit(table)  # data-driven: no queries needed
    postgres = make_estimator("postgres", scale)
    postgres.fit(table)

    queries = list(test.queries)
    for est in (postgres, naru):
        estimates = est.estimate_many(queries)
        summary = summarize(estimates, test.cardinalities)
        print(
            f"{est.name:9s} fit={est.timing.fit_seconds:6.2f}s "
            f"infer={est.timing.mean_inference_ms:6.2f}ms/query  {summary}"
        )

    print("\nexample queries:")
    for query in queries[:3]:
        actual = table.cardinality(query)
        print(f"  {query.to_sql(table)}")
        print(
            f"    actual={actual}  postgres={postgres.estimate(query):.0f}"
            f"  naru={naru.estimate(query):.0f}"
        )


if __name__ == "__main__":
    main()
