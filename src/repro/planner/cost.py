"""A miniature cost-based access-path selector.

The paper motivates cardinality estimation through plan quality: "a
query plan based on a wrongly estimated cardinality can be orders of
magnitude slower than the best plan" [Leis et al. 2015], and q-error is
"directly related to the plan quality" [Moerkotte et al. 2009].  This
substrate makes that link measurable: a single-table optimizer chooses
among access paths using a textbook cost model fed by *estimated*
cardinalities, and *plan regret* compares the chosen plan's true cost
against the best plan under the true cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.query import Query
from ..core.table import Table


class AccessPath(Enum):
    """The three access paths of the miniature optimizer."""

    SEQUENTIAL_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"
    BITMAP_SCAN = "bitmap_scan"


@dataclass(frozen=True)
class CostModel:
    """Textbook page/tuple cost constants (Postgres-flavoured)."""

    sequential_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    tuples_per_page: int = 100

    def pages(self, rows: float) -> float:
        return max(1.0, rows / self.tuples_per_page)

    def cost(self, path: AccessPath, matching_rows: float, table_rows: int) -> float:
        """Execution cost of ``path`` when ``matching_rows`` qualify."""
        matching_rows = min(max(matching_rows, 0.0), float(table_rows))
        total_pages = self.pages(table_rows)
        if path is AccessPath.SEQUENTIAL_SCAN:
            return (
                self.sequential_page_cost * total_pages
                + self.cpu_tuple_cost * table_rows
            )
        if path is AccessPath.INDEX_SCAN:
            # B-tree descent (a couple of random pages), then one random
            # page per matching tuple (worst-case clustering) plus index
            # traversal per tuple.
            descent = self.random_page_cost
            return descent + matching_rows * (
                self.random_page_cost / 2.0 + self.cpu_index_tuple_cost
            )
        # Bitmap scan: build a bitmap (startup), then read the touched
        # pages in order; sits between index and sequential scan.
        touched_pages = min(total_pages, self.pages(matching_rows * 3.0))
        startup = 3.0 * self.random_page_cost
        return (
            startup
            + 2.0 * self.sequential_page_cost * touched_pages
            + self.cpu_tuple_cost * matching_rows
            + self.cpu_index_tuple_cost * matching_rows
        )


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision for one query."""

    path: AccessPath
    estimated_rows: float
    estimated_cost: float


class SingleTablePlanner:
    """Chooses the cheapest access path under estimated cardinality."""

    def __init__(self, table: Table, cost_model: CostModel | None = None) -> None:
        self.table = table
        self.cost_model = cost_model or CostModel()

    def choose(self, query: Query, estimated_rows: float) -> PlanChoice:
        """The cheapest path believing ``estimated_rows`` qualify."""
        best_path = AccessPath.SEQUENTIAL_SCAN
        best_cost = float("inf")
        for path in AccessPath:
            cost = self.cost_model.cost(path, estimated_rows, self.table.num_rows)
            if cost < best_cost:
                best_path, best_cost = path, cost
        return PlanChoice(best_path, estimated_rows, best_cost)

    def true_cost(self, path: AccessPath, actual_rows: float) -> float:
        """What the chosen plan actually costs at the true cardinality."""
        return self.cost_model.cost(path, actual_rows, self.table.num_rows)

    def regret(self, query: Query, estimated_rows: float, actual_rows: float) -> float:
        """Chosen plan's true cost over the best plan's true cost (>= 1)."""
        chosen = self.choose(query, estimated_rows)
        optimal = self.choose(query, actual_rows)
        chosen_cost = self.true_cost(chosen.path, actual_rows)
        optimal_cost = self.true_cost(optimal.path, actual_rows)
        return chosen_cost / max(optimal_cost, 1e-12)
