"""Plan-quality substrate: the q-error -> plan-regret link."""

from .cost import AccessPath, CostModel, PlanChoice, SingleTablePlanner

__all__ = ["AccessPath", "CostModel", "PlanChoice", "SingleTablePlanner"]
