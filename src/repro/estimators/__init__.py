"""Cardinality estimators: eight traditional, five learned (the paper's
13-way benchmark) plus the taxonomy extras.

Import from the subpackages, or construct by name through
:func:`repro.registry.make_estimator`.
"""

from . import learned, traditional
from .discretize import ColumnDiscretizer, Discretizer

__all__ = ["ColumnDiscretizer", "Discretizer", "learned", "traditional"]
