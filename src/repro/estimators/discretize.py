"""Column discretisation shared by the distribution-based estimators.

Naru and the Bayesian network operate over per-column categorical
distributions.  Columns whose distinct count fits the bin budget are
dictionary-encoded exactly (one bin per distinct value, as Naru does);
wider columns fall back to equi-depth bins, in which case a range
predicate covers its boundary bins fractionally under a uniform-spread
assumption.
"""

from __future__ import annotations

import numpy as np

from ..core.query import Predicate
from ..core.table import Table


class ColumnDiscretizer:
    """Discretisation of one column."""

    def __init__(self, values: np.ndarray, max_bins: int) -> None:
        distinct = np.unique(np.asarray(values, dtype=np.float64))
        if len(distinct) <= max_bins:
            self.exact = True
            self.values = distinct
            self.edges = None
            self.num_bins = len(distinct)
        else:
            self.exact = False
            qs = np.linspace(0.0, 1.0, max_bins + 1)
            edges = np.unique(np.quantile(values, qs))
            # Guard against duplicate quantiles collapsing edges.
            self.edges = edges
            self.values = None
            self.num_bins = len(edges) - 1
        if self.num_bins < 1:
            raise ValueError("column produced no bins")

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Map raw values to bin indices."""
        values = np.asarray(values, dtype=np.float64)
        if self.exact:
            assert self.values is not None
            idx = np.searchsorted(self.values, values)
            idx = np.clip(idx, 0, self.num_bins - 1)
            return idx
        assert self.edges is not None
        idx = np.searchsorted(self.edges[1:-1], values, side="right")
        return np.clip(idx, 0, self.num_bins - 1)

    def bin_value(self, bin_index: int) -> float:
        """A representative raw value for a bin (used when sampling)."""
        if self.exact:
            assert self.values is not None
            return float(self.values[bin_index])
        assert self.edges is not None
        return float((self.edges[bin_index] + self.edges[bin_index + 1]) / 2.0)

    def predicate_weights(self, predicate: Predicate) -> np.ndarray:
        """Per-bin coverage weights in [0, 1] for a range predicate.

        Exact columns get 0/1 indicator weights; binned columns get
        fractional weights on partially covered boundary bins.
        """
        if predicate.is_empty:
            return np.zeros(self.num_bins)
        if self.exact:
            assert self.values is not None
            w = np.ones(self.num_bins)
            if predicate.lo is not None:
                w[self.values < predicate.lo] = 0.0
            if predicate.hi is not None:
                w[self.values > predicate.hi] = 0.0
            return w
        assert self.edges is not None
        lo = self.edges[0] if predicate.lo is None else predicate.lo
        hi = self.edges[-1] if predicate.hi is None else predicate.hi
        if predicate.is_equality:
            # An equality on a binned column covers one value of the bin.
            w = np.zeros(self.num_bins)
            b = int(np.clip(np.searchsorted(self.edges[1:-1], lo, side="right"), 0, self.num_bins - 1))
            width = self.edges[b + 1] - self.edges[b]
            w[b] = min(1.0, 1.0 / max(width, 1.0))
            return w
        lows = self.edges[:-1]
        highs = self.edges[1:]
        widths = highs - lows
        overlap = np.minimum(hi, highs) - np.maximum(lo, lows)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(
                widths > 0.0,
                overlap / widths,
                # Degenerate bucket: indicator on its single point.
                ((lows >= lo) & (lows <= hi)).astype(np.float64),
            )
        return np.clip(np.nan_to_num(frac, nan=0.0), 0.0, 1.0)


class Discretizer:
    """Discretisation of every column of a table."""

    def __init__(self, table: Table, max_bins: int = 256) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.columns = [
            ColumnDiscretizer(table.data[:, i], max_bins)
            for i in range(table.num_columns)
        ]

    @property
    def cardinalities(self) -> list[int]:
        return [c.num_bins for c in self.columns]

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Bin indices for every cell, shape preserved."""
        data = np.asarray(data, dtype=np.float64)
        out = np.empty(data.shape, dtype=np.int64)
        for i, col in enumerate(self.columns):
            out[:, i] = col.transform(data[:, i])
        return out

    def predicate_weights(self, predicate: Predicate) -> np.ndarray:
        return self.columns[predicate.column].predicate_weights(predicate)
