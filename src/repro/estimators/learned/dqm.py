"""DQM [Hasan et al. 2020]: Deep Quality Models, data- and query-driven.

The paper's taxonomy (Table 1) lists seven new learned methods; DQM-D
and DQM-Q are excluded from its evaluation ("its data driven model has
a similar performance with Naru and its query driven model does not
support our workload"), but we implement both so the full taxonomy is
available:

* :class:`DqmDEstimator` — a deep autoregressive model (the same
  ResMADE substrate as Naru) whose range-query inference uses the
  multi-stage adaptive importance sampling of VEGAS [Lepage 1978]:
  each stage refines a per-column product proposal toward the regions
  that contribute most to the query's probability mass.
* :class:`DqmQEstimator` — a query-driven MLP over one-hot encodings of
  the discretised predicate bounds (DQM's featurization: categorical
  columns one-hot, numerical columns auto-discretised and treated as
  categorical), trained with MSE on the log-transformed label.
"""

from __future__ import annotations

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ...nn import Adam, Linear, ReLU, ResMade, Sequential, mse_loss
from ..discretize import Discretizer
from .featurize import log_cardinality_labels


class DqmDEstimator(CardinalityEstimator):
    """Autoregressive model + VEGAS-style adaptive importance sampling."""

    name = "dqm-d"

    def __init__(
        self,
        hidden_units: int = 64,
        hidden_layers: int = 3,
        max_bins: int = 256,
        epochs: int = 15,
        update_epochs: int = 1,
        batch_size: int = 512,
        learning_rate: float = 2e-3,
        num_samples: int = 128,
        num_stages: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden_units = hidden_units
        self.hidden_layers = hidden_layers
        self.max_bins = max_bins
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.num_samples = num_samples
        self.num_stages = num_stages
        self.seed = seed
        self._disc: Discretizer | None = None
        self._model: ResMade | None = None
        self._optimizer: Adam | None = None
        self._inference_rng = np.random.default_rng(seed + 1)
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        self._disc = Discretizer(table, self.max_bins)
        self._model = ResMade(
            self._disc.cardinalities, self.hidden_units, self.hidden_layers, rng
        )
        self._optimizer = Adam(self._model.parameters(), self.learning_rate)
        self.loss_history = []
        self._train(table, self.epochs, rng)

    def _train(
        self, table: Table, epochs: int, rng: np.random.Generator
    ) -> None:
        assert self._disc is not None and self._model is not None
        assert self._optimizer is not None
        binned = self._disc.transform(table.data)
        n = len(binned)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = binned[order[start : start + self.batch_size]]
                loss, grad = self._model.nll_step(batch)
                self._model.zero_grad()
                self._model.backward(grad)
                self._optimizer.step()
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / n)

    def _update(self, table, appended, workload) -> None:
        self._train(table, self.update_epochs, np.random.default_rng(self.seed + 2))

    # ------------------------------------------------------------------
    # VEGAS-style inference
    # ------------------------------------------------------------------
    def _model_probability(self, samples: np.ndarray) -> np.ndarray:
        """P(x) of each sampled bin-assignment under the AR model."""
        assert self._disc is not None and self._model is not None
        cards = self._disc.cardinalities
        offsets = np.concatenate([[0], np.cumsum(cards)])
        s = samples.shape[0]
        encoded = np.zeros((s, int(offsets[-1])))
        rows = np.arange(s)
        prob = np.ones(s)
        for col in range(len(cards)):
            logits = self._model.forward(encoded)
            dist = self._model.column_distribution(logits, col)
            prob *= dist[rows, samples[:, col]]
            encoded[rows, offsets[col] + samples[:, col]] = 1.0
        return prob

    def estimate_selectivity(self, query: Query) -> float:
        """Multi-stage importance sampling over the query box."""
        assert self._disc is not None
        rng = self._inference_rng
        cards = self._disc.cardinalities
        n_cols = len(cards)
        weights = [np.ones(cards[i]) for i in range(n_cols)]
        for pred in query.predicates:
            weights[pred.column] = self._disc.predicate_weights(pred)
        if any(w.sum() == 0.0 for w in weights):
            return 0.0

        # Stage-0 proposal: uniform over the in-range bins of each column.
        proposals = [np.where(w > 0, w, 0.0) for w in weights]
        proposals = [p / p.sum() for p in proposals]
        estimate = 0.0
        for stage in range(self.num_stages):
            samples = np.column_stack(
                [rng.choice(len(p), size=self.num_samples, p=p) for p in proposals]
            )
            g = np.ones(self.num_samples)
            coverage = np.ones(self.num_samples)
            for col in range(n_cols):
                g *= proposals[col][samples[:, col]]
                coverage *= weights[col][samples[:, col]]
            p = self._model_probability(samples)
            contrib = p * coverage / np.maximum(g, 1e-300)
            estimate = float(np.mean(contrib))
            if stage + 1 < self.num_stages:
                # Refine each column's proposal toward observed mass.
                for col in range(n_cols):
                    refined = np.bincount(
                        samples[:, col], weights=contrib, minlength=cards[col]
                    )
                    refined = refined * (weights[col] > 0)
                    total = refined.sum()
                    if total <= 0.0:
                        continue
                    smoothed = 0.5 * refined / total + 0.5 * proposals[col]
                    proposals[col] = smoothed / smoothed.sum()
        return estimate

    def _estimate(self, query: Query) -> float:
        return self.estimate_selectivity(query) * self.table.num_rows

    def model_size_bytes(self) -> int:
        if self._model is None:
            return 0
        return 8 * self._model.num_parameters()


class DqmQEstimator(CardinalityEstimator):
    """Query-driven MLP over one-hot discretised predicate bounds."""

    name = "dqm-q"
    requires_workload = True

    def __init__(
        self,
        bins_per_column: int = 16,
        hidden_units: tuple[int, ...] = (128, 64),
        epochs: int = 40,
        update_epochs: int = 10,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.bins_per_column = bins_per_column
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._disc: Discretizer | None = None
        self._model: Sequential | None = None
        self._optimizer: Adam | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    @property
    def _feature_dim(self) -> int:
        assert self._disc is not None
        return 2 * sum(self._disc.cardinalities)

    def features(self, query: Query) -> np.ndarray:
        """One-hot of the (lo, hi) bin of every predicated column.

        Unpredicated columns are all-zero in both slots, DQM's way of
        encoding "no constraint".
        """
        assert self._disc is not None
        cards = self._disc.cardinalities
        offsets = np.concatenate([[0], np.cumsum(cards)])
        total = int(offsets[-1])
        out = np.zeros(2 * total)
        for pred in query.predicates:
            col = pred.column
            column_disc = self._disc.columns[col]
            w = column_disc.predicate_weights(pred)
            touched = np.nonzero(w > 0.0)[0]
            if len(touched) == 0:
                continue
            out[offsets[col] + touched[0]] = 1.0
            out[total + offsets[col] + touched[-1]] = 1.0
        return out

    def _features_many(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.features(q) for q in queries])

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        rng = np.random.default_rng(self.seed)
        self._disc = Discretizer(table, self.bins_per_column)
        layers: list = []
        prev = self._feature_dim
        for width in self.hidden_units:
            layers += [Linear(prev, width, rng), ReLU()]
            prev = width
        layers.append(Linear(prev, 1, rng))
        self._model = Sequential(*layers)
        self._optimizer = Adam(self._model.parameters(), self.learning_rate)
        self.loss_history = []
        self._train(workload, self.epochs, rng)

    def _train(
        self, workload: Workload, epochs: int, rng: np.random.Generator
    ) -> None:
        assert self._model is not None and self._optimizer is not None
        features = self._features_many(list(workload.queries))
        labels = log_cardinality_labels(workload.cardinalities)
        n = len(labels)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                pred = self._model.forward(features[batch]).ravel()
                loss, grad = mse_loss(pred, labels[batch])
                self._model.zero_grad()
                self._model.backward(grad[:, None])
                self._optimizer.step()
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / n)

    def _update(self, table, appended, workload) -> None:
        if workload is None:
            raise ValueError("dqm-q update needs a fresh training workload")
        self._train(workload, self.update_epochs, np.random.default_rng(self.seed + 1))

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._model is not None
        log_card = float(self._model.forward(self.features(query)[None, :])[0, 0])
        return float(np.exp(np.clip(log_card, -30.0, 30.0)))

    def model_size_bytes(self) -> int:
        if self._model is None:
            return 0
        return 8 * self._model.num_parameters()
