"""Query featurization for the regression (query-driven) estimators.

* LW-XGB/NN [Dutt et al. 2019] consume *range features* (the normalised
  bounds of every column) plus *CE features* — cheap heuristic estimates
  derivable from DBMS statistics: AVI (attribute-value independence),
  MinSel (minimum single-predicate selectivity) and EBO (exponential
  backoff).
* MSCN [Kipf et al. 2019] consumes a set of per-predicate vectors
  (column one-hot, operator one-hot, normalised literal) plus a bitmap of
  sample tuples satisfying the query.
"""

from __future__ import annotations

import numpy as np

from ...core.query import Predicate, Query
from ...core.table import Table
from ..traditional.dbms import PostgresEstimator

#: Floor applied to selectivities before log-transforming CE features.
_SEL_FLOOR = 1e-9


class RangeFeaturizer:
    """Normalised per-column bounds: 2 features per column in [0, 1]."""

    def __init__(self, table: Table) -> None:
        self.mins = np.array([c.domain_min for c in table.columns])
        self.spans = np.array([max(c.domain_size, 1.0) for c in table.columns])
        self.num_columns = table.num_columns

    def features(self, query: Query) -> np.ndarray:
        out = np.empty(2 * self.num_columns)
        out[0::2] = 0.0
        out[1::2] = 1.0
        for pred in query.predicates:
            d = pred.column
            if pred.lo is not None:
                out[2 * d] = (pred.lo - self.mins[d]) / self.spans[d]
            if pred.hi is not None:
                out[2 * d + 1] = (pred.hi - self.mins[d]) / self.spans[d]
        return out

    def features_many(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.features(q) for q in queries])


class CeFeaturizer:
    """Heuristic-estimator features (AVI, MinSel, EBO), log-transformed.

    Per-predicate selectivities come from a Postgres-style statistics
    object, matching the paper's setup ("use Postgres's estimation result
    on single column to compute the CE features").
    """

    def __init__(self, table: Table) -> None:
        self._base = PostgresEstimator()
        self._base.fit(table)

    def features(self, query: Query) -> np.ndarray:
        sels = np.maximum(
            self._base.per_predicate_selectivities(query), _SEL_FLOOR
        )
        avi = float(np.prod(sels))
        min_sel = float(np.min(sels))
        ordered = np.sort(sels)
        ebo = float(
            np.prod([s ** (0.5**i) for i, s in enumerate(ordered[:4])])
        )
        return np.log(np.maximum([avi, min_sel, ebo], _SEL_FLOOR))

    def features_many(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.features(q) for q in queries])


class LwFeaturizer:
    """Full LW-XGB/NN feature vector: range features + CE features."""

    def __init__(self, table: Table, use_ce_features: bool = True) -> None:
        self.ranges = RangeFeaturizer(table)
        self.ce = CeFeaturizer(table) if use_ce_features else None

    @property
    def dimension(self) -> int:
        return 2 * self.ranges.num_columns + (3 if self.ce is not None else 0)

    def features(self, query: Query) -> np.ndarray:
        parts = [self.ranges.features(query)]
        if self.ce is not None:
            parts.append(self.ce.features(query))
        return np.concatenate(parts)

    def features_many(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.features(q) for q in queries])


class MscnFeaturizer:
    """Per-predicate set features and the materialized-sample bitmap."""

    #: operators: 0 = '>=', 1 = '<=', 2 = '='
    NUM_OPS = 3

    def __init__(
        self,
        table: Table,
        sample_size: int = 200,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_columns = table.num_columns
        self.mins = np.array([c.domain_min for c in table.columns])
        self.spans = np.array([max(c.domain_size, 1.0) for c in table.columns])
        take = min(sample_size, table.num_rows)
        idx = rng.choice(table.num_rows, size=take, replace=False)
        self.sample = table.data[idx]
        #: width of one predicate feature vector
        self.predicate_dim = self.num_columns + self.NUM_OPS + 1
        #: queries can constrain every column from both sides
        self.max_predicates = 2 * self.num_columns

    def refresh_sample(
        self, table: Table, rng: np.random.Generator
    ) -> None:
        """Re-draw the materialized sample (used on data updates)."""
        take = min(len(self.sample), table.num_rows)
        idx = rng.choice(table.num_rows, size=take, replace=False)
        self.sample = table.data[idx]

    # ------------------------------------------------------------------
    def _atomic_predicates(self, query: Query) -> list[tuple[int, int, float]]:
        """Decompose into (column, op, literal); closed ranges split in two."""
        atoms: list[tuple[int, int, float]] = []
        for pred in query.predicates:
            if pred.is_equality:
                atoms.append((pred.column, 2, float(pred.lo)))  # type: ignore[arg-type]
                continue
            if pred.lo is not None:
                atoms.append((pred.column, 0, float(pred.lo)))
            if pred.hi is not None:
                atoms.append((pred.column, 1, float(pred.hi)))
        return atoms

    def predicate_tensor(
        self, queries: list[Query]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(batch, max_preds, predicate_dim) features and a validity mask."""
        batch = len(queries)
        feats = np.zeros((batch, self.max_predicates, self.predicate_dim))
        mask = np.zeros((batch, self.max_predicates))
        for qi, query in enumerate(queries):
            for pi, (col, op, literal) in enumerate(self._atomic_predicates(query)):
                vec = np.zeros(self.predicate_dim)
                vec[col] = 1.0
                vec[self.num_columns + op] = 1.0
                vec[-1] = (literal - self.mins[col]) / self.spans[col]
                feats[qi, pi] = vec
                mask[qi, pi] = 1.0
        return feats, mask

    def bitmaps(self, queries: list[Query]) -> np.ndarray:
        """(batch, sample_size) bitmap of sample tuples satisfying each query."""
        out = np.zeros((len(queries), len(self.sample)))
        for qi, query in enumerate(queries):
            sat = np.ones(len(self.sample), dtype=bool)
            for pred in query.predicates:
                col = self.sample[:, pred.column]
                if pred.lo is not None:
                    sat &= col >= pred.lo
                if pred.hi is not None:
                    sat &= col <= pred.hi
            out[qi] = sat
        return out


def log_cardinality_labels(cardinalities: np.ndarray) -> np.ndarray:
    """Log-transformed labels (cards clamped to one tuple), used by all
    regression methods."""
    return np.log(np.maximum(np.asarray(cardinalities, dtype=np.float64), 1.0))
