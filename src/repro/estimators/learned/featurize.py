"""Query featurization for the regression (query-driven) estimators.

* LW-XGB/NN [Dutt et al. 2019] consume *range features* (the normalised
  bounds of every column) plus *CE features* — cheap heuristic estimates
  derivable from DBMS statistics: AVI (attribute-value independence),
  MinSel (minimum single-predicate selectivity) and EBO (exponential
  backoff).
* MSCN [Kipf et al. 2019] consumes a set of per-predicate vectors
  (column one-hot, operator one-hot, normalised literal) plus a bitmap of
  sample tuples satisfying the query.
"""

from __future__ import annotations

import numpy as np

from ...core.query import Predicate, Query
from ...core.table import Table
from ..traditional.dbms import PostgresEstimator

#: EBO dampening exponents (most selective four predicates).
_EBO_POWERS = np.array([1.0, 0.5, 0.25, 0.125])

#: Floor applied to selectivities before log-transforming CE features.
_SEL_FLOOR = 1e-9


class RangeFeaturizer:
    """Normalised per-column bounds: 2 features per column in [0, 1]."""

    def __init__(self, table: Table) -> None:
        self.mins = np.array([c.domain_min for c in table.columns])
        self.spans = np.array([max(c.domain_size, 1.0) for c in table.columns])
        self.num_columns = table.num_columns

    def features(self, query: Query) -> np.ndarray:
        out = np.empty(2 * self.num_columns)
        out[0::2] = 0.0
        out[1::2] = 1.0
        for pred in query.predicates:
            d = pred.column
            if pred.lo is not None:
                out[2 * d] = (pred.lo - self.mins[d]) / self.spans[d]
            if pred.hi is not None:
                out[2 * d + 1] = (pred.hi - self.mins[d]) / self.spans[d]
        return out

    def features_many(self, queries: list[Query]) -> np.ndarray:
        out = np.empty((len(queries), 2 * self.num_columns))
        out[:, 0::2] = 0.0
        out[:, 1::2] = 1.0
        qi_lo: list[int] = []
        col_lo: list[int] = []
        val_lo: list[float] = []
        qi_hi: list[int] = []
        col_hi: list[int] = []
        val_hi: list[float] = []
        for qi, query in enumerate(queries):
            for pred in query.predicates:
                if pred.lo is not None:
                    qi_lo.append(qi)
                    col_lo.append(pred.column)
                    val_lo.append(pred.lo)
                if pred.hi is not None:
                    qi_hi.append(qi)
                    col_hi.append(pred.column)
                    val_hi.append(pred.hi)
        if qi_lo:
            cols = np.asarray(col_lo)
            out[np.asarray(qi_lo), 2 * cols] = (
                np.asarray(val_lo) - self.mins[cols]
            ) / self.spans[cols]
        if qi_hi:
            cols = np.asarray(col_hi)
            out[np.asarray(qi_hi), 2 * cols + 1] = (
                np.asarray(val_hi) - self.mins[cols]
            ) / self.spans[cols]
        return out


class CeFeaturizer:
    """Heuristic-estimator features (AVI, MinSel, EBO), log-transformed.

    Per-predicate selectivities come from a Postgres-style statistics
    object, matching the paper's setup ("use Postgres's estimation result
    on single column to compute the CE features").
    """

    def __init__(self, table: Table) -> None:
        self._base = PostgresEstimator()
        self._base.fit(table)

    def features(self, query: Query) -> np.ndarray:
        sels = np.maximum(
            self._base.per_predicate_selectivities(query), _SEL_FLOOR
        )
        avi = float(np.prod(sels))
        min_sel = float(np.min(sels))
        ordered = np.sort(sels)
        ebo = float(
            np.prod([s ** (0.5**i) for i, s in enumerate(ordered[:4])])
        )
        return np.log(np.maximum([avi, min_sel, ebo], _SEL_FLOOR))

    def features_many(self, queries: list[Query]) -> np.ndarray:
        """Vectorized AVI/MinSel/EBO over the batch.

        The per-predicate selectivity matrix is padded with 1.0, which is
        exact for every downstream reduction: products absorb trailing
        1.0s, minima are unaffected (real selectivities are capped at
        1.0), and EBO's extra ``1.0 ** w`` factors are identity.
        """
        sels, _ = self._base.per_predicate_selectivities_many(queries)
        sels = np.maximum(sels, _SEL_FLOOR)
        avi = np.prod(sels, axis=1)
        min_sel = np.min(sels, axis=1)
        ordered = np.sort(sels, axis=1)[:, :4]
        powers = _EBO_POWERS[: ordered.shape[1]]
        ebo = np.prod(ordered ** powers[None, :], axis=1)
        feats = np.stack([avi, min_sel, ebo], axis=1)
        return np.log(np.maximum(feats, _SEL_FLOOR))


class LwFeaturizer:
    """Full LW-XGB/NN feature vector: range features + CE features."""

    def __init__(self, table: Table, use_ce_features: bool = True) -> None:
        self.ranges = RangeFeaturizer(table)
        self.ce = CeFeaturizer(table) if use_ce_features else None

    @property
    def dimension(self) -> int:
        return 2 * self.ranges.num_columns + (3 if self.ce is not None else 0)

    def features(self, query: Query) -> np.ndarray:
        parts = [self.ranges.features(query)]
        if self.ce is not None:
            parts.append(self.ce.features(query))
        return np.concatenate(parts)

    def features_many(self, queries: list[Query]) -> np.ndarray:
        parts = [self.ranges.features_many(queries)]
        if self.ce is not None:
            parts.append(self.ce.features_many(queries))
        return np.concatenate(parts, axis=1)


class MscnFeaturizer:
    """Per-predicate set features and the materialized-sample bitmap."""

    #: operators: 0 = '>=', 1 = '<=', 2 = '='
    NUM_OPS = 3

    def __init__(
        self,
        table: Table,
        sample_size: int = 200,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_columns = table.num_columns
        self.mins = np.array([c.domain_min for c in table.columns])
        self.spans = np.array([max(c.domain_size, 1.0) for c in table.columns])
        take = min(sample_size, table.num_rows)
        idx = rng.choice(table.num_rows, size=take, replace=False)
        self.sample = table.data[idx]
        #: width of one predicate feature vector
        self.predicate_dim = self.num_columns + self.NUM_OPS + 1
        #: queries can constrain every column from both sides
        self.max_predicates = 2 * self.num_columns

    def refresh_sample(
        self, table: Table, rng: np.random.Generator
    ) -> None:
        """Re-draw the materialized sample (used on data updates)."""
        take = min(len(self.sample), table.num_rows)
        idx = rng.choice(table.num_rows, size=take, replace=False)
        self.sample = table.data[idx]

    # ------------------------------------------------------------------
    def _atomic_predicates(self, query: Query) -> list[tuple[int, int, float]]:
        """Decompose into (column, op, literal); closed ranges split in two."""
        atoms: list[tuple[int, int, float]] = []
        for pred in query.predicates:
            if pred.is_equality:
                atoms.append((pred.column, 2, float(pred.lo)))  # type: ignore[arg-type]
                continue
            if pred.lo is not None:
                atoms.append((pred.column, 0, float(pred.lo)))
            if pred.hi is not None:
                atoms.append((pred.column, 1, float(pred.hi)))
        return atoms

    def predicate_tensor(
        self, queries: list[Query]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(batch, max_preds, predicate_dim) features and a validity mask."""
        batch = len(queries)
        feats = np.zeros((batch, self.max_predicates, self.predicate_dim))
        mask = np.zeros((batch, self.max_predicates))
        qis: list[int] = []
        pis: list[int] = []
        cols: list[int] = []
        ops: list[int] = []
        lits: list[float] = []
        for qi, query in enumerate(queries):
            for pi, (col, op, literal) in enumerate(self._atomic_predicates(query)):
                qis.append(qi)
                pis.append(pi)
                cols.append(col)
                ops.append(op)
                lits.append(literal)
        if qis:
            qi_a, pi_a, col_a = np.asarray(qis), np.asarray(pis), np.asarray(cols)
            feats[qi_a, pi_a, col_a] = 1.0
            feats[qi_a, pi_a, self.num_columns + np.asarray(ops)] = 1.0
            feats[qi_a, pi_a, -1] = (np.asarray(lits) - self.mins[col_a]) / self.spans[
                col_a
            ]
            mask[qi_a, pi_a] = 1.0
        return feats, mask

    def atoms(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated atom features plus per-query atom counts.

        The padding-free companion of :meth:`predicate_tensor` for the
        batched inference path: identical feature values, laid out as one
        (total_atoms, predicate_dim) matrix in query order.
        """
        counts = np.zeros(len(queries), dtype=np.int64)
        cols: list[int] = []
        ops: list[int] = []
        lits: list[float] = []
        for qi, query in enumerate(queries):
            atoms = self._atomic_predicates(query)
            counts[qi] = len(atoms)
            for col, op, literal in atoms:
                cols.append(col)
                ops.append(op)
                lits.append(literal)
        feats = np.zeros((len(cols), self.predicate_dim))
        if cols:
            rows = np.arange(len(cols))
            col_a = np.asarray(cols)
            feats[rows, col_a] = 1.0
            feats[rows, self.num_columns + np.asarray(ops)] = 1.0
            feats[rows, -1] = (np.asarray(lits) - self.mins[col_a]) / self.spans[
                col_a
            ]
        return feats, counts

    def bitmaps(self, queries: list[Query]) -> np.ndarray:
        """(batch, sample_size) bitmap of sample tuples satisfying each query."""
        n_q = len(queries)
        sat = np.ones((n_q, len(self.sample)), dtype=bool)
        # Group by column: each constrained column tests its sample
        # values against every query bound in one vectorized comparison.
        by_col: dict[int, tuple[list[int], list[float], list[float]]] = {}
        for qi, query in enumerate(queries):
            for pred in query.predicates:
                qis, los, his = by_col.setdefault(pred.column, ([], [], []))
                qis.append(qi)
                los.append(-np.inf if pred.lo is None else pred.lo)
                his.append(np.inf if pred.hi is None else pred.hi)
        for col, (qis, los, his) in by_col.items():
            vals = self.sample[:, col]
            lo = np.asarray(los)[:, None]
            hi = np.asarray(his)[:, None]
            sat[np.asarray(qis)] &= (vals[None, :] >= lo) & (vals[None, :] <= hi)
        return sat.astype(np.float64)


def log_cardinality_labels(cardinalities: np.ndarray) -> np.ndarray:
    """Log-transformed labels (cards clamped to one tuple), used by all
    regression methods."""
    return np.log(np.maximum(np.asarray(cardinalities, dtype=np.float64), 1.0))
