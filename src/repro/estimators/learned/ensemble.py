"""Ensemble estimators (paper Section 7.1, "Control the Cost").

Two of the paper's suggested cost-control strategies:

* :class:`HierarchicalEstimator` — "apply multiple approaches in a
  hierarchical fashion": simple queries (few predicates) go to a
  lightweight estimator; complex ones go to the heavy, accurate model.
* :class:`FallbackEstimator` — "a fast but less accurate method can be
  used as a temporary replacement when the slow but accurate model is
  not ready": during an update the light model answers immediately
  while the heavy model retrains; :meth:`promote` switches back.
"""

from __future__ import annotations

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


class HierarchicalEstimator(CardinalityEstimator):
    """Routes queries by predicate count: light model below the
    threshold, heavy model at or above it."""

    def __init__(
        self,
        light: CardinalityEstimator,
        heavy: CardinalityEstimator,
        predicate_threshold: int = 3,
    ) -> None:
        super().__init__()
        if predicate_threshold < 1:
            raise ValueError("predicate_threshold must be at least 1")
        self.light = light
        self.heavy = heavy
        self.predicate_threshold = predicate_threshold
        self.name = f"hier({light.name}|{heavy.name})"
        self.requires_workload = light.requires_workload or heavy.requires_workload

    def _fit(self, table: Table, workload: Workload | None) -> None:
        self.light.fit(table, workload if self.light.requires_workload else None)
        self.heavy.fit(table, workload if self.heavy.requires_workload else None)

    def _update(self, table, appended, workload) -> None:
        self.light.update(table, appended, workload if self.light.requires_workload else None)
        self.heavy.update(table, appended, workload if self.heavy.requires_workload else None)

    def _estimate(self, query: Query) -> float:
        if query.num_predicates < self.predicate_threshold:
            return self.light.estimate(query)
        return self.heavy.estimate(query)

    def routing_fractions(self, queries: list[Query]) -> tuple[float, float]:
        """(light fraction, heavy fraction) of a workload's routing."""
        light = sum(
            1 for q in queries if q.num_predicates < self.predicate_threshold
        )
        return light / len(queries), 1.0 - light / len(queries)

    def model_size_bytes(self) -> int:
        return self.light.model_size_bytes() + self.heavy.model_size_bytes()


class FallbackEstimator(CardinalityEstimator):
    """Serves the light model while the heavy model is (re)training.

    ``update`` refreshes only the cheap model and marks the heavy model
    stale; call :meth:`promote` (e.g. when the background retrain
    completes) to finish the heavy update and route to it again.
    """

    def __init__(
        self, light: CardinalityEstimator, heavy: CardinalityEstimator
    ) -> None:
        super().__init__()
        self.light = light
        self.heavy = heavy
        self.name = f"fallback({light.name}->{heavy.name})"
        self.requires_workload = light.requires_workload or heavy.requires_workload
        self._heavy_ready = False
        self._pending: tuple[Table, np.ndarray, Workload | None] | None = None

    def _fit(self, table: Table, workload: Workload | None) -> None:
        self.light.fit(table, workload if self.light.requires_workload else None)
        self.heavy.fit(table, workload if self.heavy.requires_workload else None)
        self._heavy_ready = True
        self._pending = None

    def _update(self, table, appended, workload) -> None:
        # Fast path only: the heavy model is now stale.
        self.light.update(
            table, appended, workload if self.light.requires_workload else None
        )
        self._heavy_ready = False
        self._pending = (table, appended, workload)

    def promote(self) -> float:
        """Run the heavy model's (deferred) update; returns its seconds."""
        if self._pending is None:
            return 0.0
        table, appended, workload = self._pending
        seconds = self.heavy.update(
            table, appended, workload if self.heavy.requires_workload else None
        )
        self._heavy_ready = True
        self._pending = None
        return seconds

    @property
    def serving(self) -> str:
        """Which model currently answers queries."""
        return self.heavy.name if self._heavy_ready else self.light.name

    def _estimate(self, query: Query) -> float:
        if self._heavy_ready:
            return self.heavy.estimate(query)
        return self.light.estimate(query)

    def model_size_bytes(self) -> int:
        return self.light.model_size_bytes() + self.heavy.model_size_bytes()
