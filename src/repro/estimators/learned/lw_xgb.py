"""LW-XGB [Dutt et al. 2019]: lightweight gradient-boosted-tree regressor.

Identical features and loss to LW-NN (range + CE features, squared error
on the log-transformed label) with a boosted-tree model instead of a
neural network — the paper's fastest learned method.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ...gbdt import GradientBoostedTrees
from .featurize import LwFeaturizer, log_cardinality_labels


class LwXgbEstimator(CardinalityEstimator):
    """Lightweight GBDT selectivity estimator (query-driven)."""

    name = "lw-xgb"
    requires_workload = True

    def __init__(
        self,
        num_trees: int = 64,
        max_depth: int = 6,
        learning_rate: float = 0.15,
        update_trees: int = 32,
        use_ce_features: bool = True,
    ) -> None:
        super().__init__()
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.update_trees = update_trees
        self.use_ce_features = use_ce_features
        self._featurizer: LwFeaturizer | None = None
        self._model: GradientBoostedTrees | None = None

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        features = self._featurizer.features_many(list(workload.queries))
        labels = log_cardinality_labels(workload.cardinalities)
        self._model = GradientBoostedTrees(
            num_trees=self.num_trees,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            monitor_label=self.name,
        ).fit(features, labels)

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Dynamic-environment update: retrain on freshly labelled queries
        with a reduced tree budget (the paper's fast-update setting)."""
        if workload is None:
            raise ValueError("lw-xgb update needs a fresh training workload")
        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        features = self._featurizer.features_many(list(workload.queries))
        labels = log_cardinality_labels(workload.cardinalities)
        self._model = GradientBoostedTrees(
            num_trees=self.update_trees,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            monitor_label=self.name,
        ).fit(features, labels)

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._featurizer is not None and self._model is not None
        feats = self._featurizer.features(query)[None, :]
        log_card = float(self._model.predict(feats)[0])
        return float(np.exp(np.clip(log_card, -30.0, 30.0)))

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """One batched tree traversal over the stacked feature matrix."""
        assert self._featurizer is not None and self._model is not None
        feats = self._featurizer.features_many(list(queries))
        log_cards = self._model.predict(feats)
        return np.exp(np.clip(log_cards, -30.0, 30.0))

    def model_size_bytes(self) -> int:
        if self._model is None:
            return 0
        # Each node stores a feature id, a threshold and a value.
        return 24 * self._model.num_nodes()
