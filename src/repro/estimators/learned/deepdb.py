"""DeepDB [Hilprecht et al. 2020]: Sum-Product Network estimator.

Structure learning recursively splits the table:

* **column split** — pairwise RDC scores below ``rdc_threshold`` mark
  column groups as independent; independent groups become children of a
  *product* node;
* **row split** — otherwise KMeans (k = 2) clusters the rows and a *sum*
  node combines the clusters with weights proportional to their sizes;
* **leaf** — a single-column histogram once the scope is one column or
  the slice is smaller than ``min_instance_slice``.

Inference computes the probability of the query box bottom-up (leaves
answer per-column coverage, products multiply, sums average), which is
why DeepDB satisfies every logical rule of paper Section 6.3.  Updates
insert a sample of the appended tuples by routing them down the network.
"""

from __future__ import annotations

import numpy as np

from ...cluster import kmeans, rdc_matrix
from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ..discretize import Discretizer


class _Node:
    """Base SPN node; ``scope`` is the set of column indices covered."""

    def __init__(self, scope: tuple[int, ...]) -> None:
        self.scope = scope

    def probability(self, weights: dict[int, np.ndarray]) -> float:
        raise NotImplementedError

    def insert(self, rows_binned: np.ndarray) -> None:
        raise NotImplementedError

    def size_bytes(self) -> int:
        raise NotImplementedError


class _Leaf(_Node):
    """Single-column histogram over the global discretised bins."""

    def __init__(self, column: int, bin_counts: np.ndarray) -> None:
        super().__init__((column,))
        self.column = column
        self.counts = bin_counts.astype(np.float64)
        self.total = float(self.counts.sum())

    def probability(self, weights: dict[int, np.ndarray]) -> float:
        w = weights.get(self.column)
        if w is None:
            return 1.0
        if self.total == 0.0:
            return 0.0
        return float(self.counts @ w) / self.total

    def insert(self, rows_binned: np.ndarray) -> None:
        add = np.bincount(rows_binned[:, self.column], minlength=len(self.counts))
        self.counts += add[: len(self.counts)]
        self.total = float(self.counts.sum())

    def likelihood(self, row_binned: np.ndarray) -> float:
        """Smoothed per-row likelihood (used to route inserted tuples)."""
        if self.total == 0.0:
            return 1e-6
        return float(
            (self.counts[row_binned[self.column]] + 0.1)
            / (self.total + 0.1 * len(self.counts))
        )

    def size_bytes(self) -> int:
        return self.counts.nbytes


class _Product(_Node):
    """Independent column groups: probabilities multiply."""

    def __init__(self, children: list[_Node]) -> None:
        scope = tuple(sorted(c for child in children for c in child.scope))
        super().__init__(scope)
        self.children = children

    def probability(self, weights: dict[int, np.ndarray]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.probability(weights)
            if result == 0.0:
                return 0.0
        return result

    def insert(self, rows_binned: np.ndarray) -> None:
        for child in self.children:
            child.insert(rows_binned)

    def likelihood(self, row_binned: np.ndarray) -> float:
        result = 1.0
        for child in self.children:
            result *= child.likelihood(row_binned)  # type: ignore[attr-defined]
        return result

    def size_bytes(self) -> int:
        return sum(c.size_bytes() for c in self.children)


class _Sum(_Node):
    """Row clusters: probabilities average, weighted by cluster size."""

    def __init__(self, children: list[_Node], counts: list[float]) -> None:
        super().__init__(children[0].scope)
        self.children = children
        self.counts = [float(c) for c in counts]

    def probability(self, weights: dict[int, np.ndarray]) -> float:
        total = sum(self.counts)
        if total == 0.0:
            return 0.0
        return sum(
            cnt / total * child.probability(weights)
            for child, cnt in zip(self.children, self.counts)
        )

    def insert(self, rows_binned: np.ndarray) -> None:
        # Route each tuple to its most likely cluster, as DeepDB does.
        assignments = np.array(
            [
                int(
                    np.argmax(
                        [c.likelihood(row) for c in self.children]  # type: ignore[attr-defined]
                    )
                )
                for row in rows_binned
            ]
        )
        for k, child in enumerate(self.children):
            subset = rows_binned[assignments == k]
            if len(subset):
                self.counts[k] += len(subset)
                child.insert(subset)

    def likelihood(self, row_binned: np.ndarray) -> float:
        total = sum(self.counts)
        return sum(
            cnt / total * child.likelihood(row_binned)  # type: ignore[attr-defined]
            for child, cnt in zip(self.children, self.counts)
        )

    def size_bytes(self) -> int:
        return 8 * len(self.counts) + sum(c.size_bytes() for c in self.children)


def _independent_groups(
    scores: np.ndarray, threshold: float
) -> list[list[int]]:
    """Connected components of the "dependent" graph (RDC >= threshold)."""
    n = scores.shape[0]
    unvisited = set(range(n))
    groups: list[list[int]] = []
    while unvisited:
        start = unvisited.pop()
        component = [start]
        frontier = [start]
        while frontier:
            node = frontier.pop()
            linked = [
                j for j in list(unvisited) if scores[node, j] >= threshold
            ]
            for j in linked:
                unvisited.remove(j)
                component.append(j)
                frontier.append(j)
        groups.append(sorted(component))
    return groups


class DeepDbEstimator(CardinalityEstimator):
    """Sum-Product Network over a single table (data-driven)."""

    name = "deepdb"

    def __init__(
        self,
        rdc_threshold: float = 0.3,
        min_instance_slice_fraction: float = 0.01,
        max_bins: int = 256,
        insert_sample_fraction: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.rdc_threshold = rdc_threshold
        self.min_instance_slice_fraction = min_instance_slice_fraction
        self.max_bins = max_bins
        self.insert_sample_fraction = insert_sample_fraction
        self.seed = seed
        self._disc: Discretizer | None = None
        self._root: _Node | None = None

    # ------------------------------------------------------------------
    # Structure learning
    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        self._disc = Discretizer(table, self.max_bins)
        binned = self._disc.transform(table.data)
        min_slice = max(32, int(table.num_rows * self.min_instance_slice_fraction))
        self._root = self._learn(
            binned, list(range(table.num_columns)), rng, min_slice, row_split_ok=True
        )

    def _learn(
        self,
        binned: np.ndarray,
        scope: list[int],
        rng: np.random.Generator,
        min_slice: int,
        row_split_ok: bool,
    ) -> _Node:
        assert self._disc is not None
        if len(scope) == 1:
            return self._leaf(binned, scope[0])
        if len(binned) < min_slice:
            # Naive factorisation: assume independence on tiny slices.
            return _Product([self._leaf(binned, c) for c in scope])

        # Column split: find independent groups by pairwise RDC.
        scores = rdc_matrix(binned[:, scope].astype(np.float64), rng)
        groups = _independent_groups(scores, self.rdc_threshold)
        if len(groups) > 1:
            children = [
                self._learn(
                    binned,
                    [scope[i] for i in group],
                    rng,
                    min_slice,
                    row_split_ok=True,
                )
                for group in groups
            ]
            return _Product(children)

        if not row_split_ok:
            # A row split just happened and the columns are still
            # dependent: factorise to guarantee termination.
            return _Product([self._leaf(binned, c) for c in scope])

        # Row split: KMeans with k = 2 under a sum node.
        labels, _ = kmeans(binned[:, scope].astype(np.float64), 2, rng)
        children = []
        counts = []
        for k in (0, 1):
            subset = binned[labels == k]
            if len(subset) == 0:
                continue
            children.append(
                self._learn(subset, scope, rng, min_slice, row_split_ok=False)
            )
            counts.append(float(len(subset)))
        if len(children) == 1:
            return children[0]
        return _Sum(children, counts)

    def _leaf(self, binned: np.ndarray, column: int) -> _Leaf:
        assert self._disc is not None
        num_bins = self._disc.cardinalities[column]
        counts = np.bincount(binned[:, column], minlength=num_bins)
        return _Leaf(column, counts[:num_bins])

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._disc is not None and self._root is not None
        weights = {
            p.column: self._disc.predicate_weights(p) for p in query.predicates
        }
        return self._root.probability(weights) * self.table.num_rows

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Insert a small sample of the appended tuples (the paper's
        DeepDB update procedure: 1% of the appended data)."""
        assert self._disc is not None and self._root is not None
        rng = np.random.default_rng(self.seed + 1)
        count = max(1, int(round(len(appended) * self.insert_sample_fraction)))
        idx = rng.choice(len(appended), size=min(count, len(appended)), replace=False)
        sample_binned = self._disc.transform(appended[idx])
        # The SPN answers *selectivities*; inserting the sample shifts the
        # distribution toward the appended data while the row count used
        # to scale estimates comes from the live table.
        self._root.insert(sample_binned)

    def model_size_bytes(self) -> int:
        return self._root.size_bytes() if self._root is not None else 0
