"""LW-NN [Dutt et al. 2019]: lightweight neural-network regressor.

A small MLP over range + CE features minimising the mean squared error
of the log-transformed label, "which equals minimizing the geometric
mean of q-error with more weights on larger errors" (paper Section 2.3).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ...nn import Adam, Linear, ReLU, Sequential, global_grad_norm, mse_loss
from ...obs import get_monitor
from ...obs.clock import perf_counter
from .featurize import LwFeaturizer, log_cardinality_labels


class LwNnEstimator(CardinalityEstimator):
    """Lightweight NN selectivity estimator (query-driven).

    Implements the **resumable-training protocol** consumed by
    :mod:`repro.lifecycle`: :meth:`begin_training` builds the model,
    :meth:`train_epochs` advances it, and :meth:`training_state` /
    :meth:`restore_training` capture and restore *everything* mutable —
    parameters, Adam moments and step count, the training RNG's
    bit-generator state, and the loss history — so a run resumed from a
    checkpoint continues step-for-step identically to one that was never
    interrupted.
    """

    name = "lw-nn"
    requires_workload = True
    supports_resumable_training = True

    def __init__(
        self,
        hidden_units: tuple[int, ...] = (64, 64),
        epochs: int = 60,
        update_epochs: int = 15,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        use_ce_features: bool = True,
        seed: int = 0,
        dtype: str = "float64",
        quantize: str | None = None,
    ) -> None:
        super().__init__()
        if dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be float64 or float32, got {dtype!r}")
        if quantize not in (None, "int8"):
            raise ValueError(f"quantize must be None or 'int8', got {quantize!r}")
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.use_ce_features = use_ce_features
        self.seed = seed
        self.dtype = dtype
        self.quantize = quantize
        self._quantized = False
        self._np_dtype = np.dtype(dtype)
        self._featurizer: LwFeaturizer | None = None
        self._model: Sequential | None = None
        self._optimizer: Adam | None = None
        self._train_rng: np.random.Generator | None = None
        self.epochs_trained = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build_model(self, in_dim: int, rng: np.random.Generator) -> Sequential:
        layers: list = []
        prev = in_dim
        for width in self.hidden_units:
            layers.append(Linear(prev, width, rng, dtype=self._np_dtype))
            layers.append(ReLU())
            prev = width
        layers.append(Linear(prev, 1, rng, dtype=self._np_dtype))
        return Sequential(*layers)

    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        self.begin_training(table, workload)
        self.train_epochs(workload, self.epochs)
        if self.quantize == "int8":
            self.quantize_int8()

    def quantize_int8(self) -> None:
        """Pack the fitted MLP's weights to int8 (inference-only).

        Dense layers are swapped in place for packed
        :class:`~repro.fastpath.quantize.QuantizedLinear` twins.  The
        resumable-training protocol is unavailable afterwards; a fresh
        fit (or :meth:`begin_training`) rebuilds a trainable model.
        """
        # Deferred import: repro.fastpath builds on the estimator layers.
        from ...fastpath.quantize import quantize_sequential

        if self._model is None:
            raise RuntimeError("fit the estimator before quantizing")
        if self._quantized:
            return
        quantize_sequential(self._model)
        self._optimizer = None
        self._quantized = True
        # Packed layers dequantize into float32: cast features to match
        # so the whole batch forward stays out of float64.
        self._np_dtype = np.dtype(np.float32)

    # ------------------------------------------------------------------
    # Resumable-training protocol (driven by repro.lifecycle)
    # ------------------------------------------------------------------
    def begin_training(self, table: Table, workload: Workload) -> None:
        """Initialise a fresh training run (epoch counter at zero)."""
        self._quantized = False
        self._np_dtype = np.dtype(self.dtype)
        self._table = table
        self._train_rng = np.random.default_rng(self.seed)
        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        self._model = self._build_model(self._featurizer.dimension, self._train_rng)
        self._optimizer = Adam(self._model.parameters(), self.learning_rate)
        self.epochs_trained = 0
        self.loss_history = []

    def train_epochs(self, workload: Workload, epochs: int) -> None:
        """Advance the current training run by ``epochs`` epochs."""
        if self._quantized:
            raise RuntimeError(
                "int8-quantized lw-nn is inference-only; begin_training "
                "rebuilds a trainable model"
            )
        assert self._featurizer is not None and self._model is not None
        assert self._optimizer is not None and self._train_rng is not None
        features = self._featurizer.features_many(list(workload.queries)).astype(
            self._np_dtype, copy=False
        )
        labels = log_cardinality_labels(workload.cardinalities).astype(
            self._np_dtype, copy=False
        )
        n = len(labels)
        monitor = get_monitor()
        for _ in range(epochs):
            epoch_start = perf_counter() if monitor is not None else 0.0
            order = self._train_rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                pred = self._model.forward(features[batch]).ravel()
                loss, grad = mse_loss(pred, labels[batch])
                self._optimizer.zero_grad()
                self._model.backward(grad[:, None])
                self._optimizer.step()
                epoch_loss += loss * len(batch)
            self.epochs_trained += 1
            self.loss_history.append(epoch_loss / n)
            if monitor is not None:
                monitor.on_epoch(
                    self.name,
                    epoch=len(self.loss_history) - 1,
                    loss=self.loss_history[-1],
                    grad_norm=global_grad_norm(self._model.parameters()),
                    seconds=perf_counter() - epoch_start,
                )

    @property
    def target_epochs(self) -> int:
        """Epochs a full from-scratch training run comprises."""
        return self.epochs

    def training_state(self) -> dict:
        """Snapshot of all mutable training state, checkpoint-ready."""
        if self._quantized:
            raise RuntimeError(
                "int8-quantized lw-nn has no trainable state to checkpoint"
            )
        assert self._model is not None and self._optimizer is not None
        assert self._train_rng is not None
        return {
            "estimator": self.name,
            "epochs_trained": self.epochs_trained,
            "parameters": [p.value.copy() for p in self._model.parameters()],
            "optimizer": self._optimizer.state_dict(),
            "rng_state": self._train_rng.bit_generator.state,
            "loss_history": list(self.loss_history),
        }

    def restore_training(
        self, table: Table, workload: Workload, state: dict
    ) -> None:
        """Resume a training run from a :meth:`training_state` snapshot.

        The featurizer is rebuilt deterministically from ``table``; the
        model parameters, optimizer moments, and RNG position come from
        the snapshot, so the next :meth:`train_epochs` call continues
        exactly where the snapshot was taken.
        """
        if state.get("estimator") != self.name:
            raise ValueError(
                f"checkpoint belongs to {state.get('estimator')!r}, not {self.name!r}"
            )
        self._quantized = False
        self._table = table
        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        # Construction RNG is throwaway: every weight is overwritten.
        self._model = self._build_model(
            self._featurizer.dimension, np.random.default_rng(0)
        )
        params = self._model.parameters()
        saved = state["parameters"]
        if len(saved) != len(params):
            raise ValueError(
                f"checkpoint holds {len(saved)} parameter tensors, "
                f"model has {len(params)}"
            )
        for p, value in zip(params, saved):
            if p.value.shape != value.shape:
                raise ValueError(
                    f"checkpoint tensor shape {value.shape} does not match "
                    f"model shape {p.value.shape}"
                )
            # The checkpoint's dtype is authoritative: a float32 run must
            # resume in float32, never silently upcast.
            p.value = np.array(value)
            p.grad = np.zeros_like(p.value)
        self._optimizer = Adam(params, self.learning_rate)
        self._optimizer.load_state_dict(state["optimizer"])
        self._train_rng = np.random.default_rng(self.seed)
        self._train_rng.bit_generator.state = state["rng_state"]
        self.epochs_trained = int(state["epochs_trained"])
        self.loss_history = list(state["loss_history"])

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Dynamic-environment update: continue training on fresh labels.

        Dutt et al. refresh the model with newly labelled queries; the
        featurizer's CE statistics are rebuilt on the new table first.
        """
        if workload is None:
            raise ValueError("lw-nn update needs a fresh training workload")
        assert self._model is not None
        self._featurizer = LwFeaturizer(table, self.use_ce_features)
        self._train_rng = np.random.default_rng(self.seed + 1)
        self.train_epochs(workload, self.update_epochs)

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._featurizer is not None and self._model is not None
        feats = self._featurizer.features(query)[None, :].astype(
            self._np_dtype, copy=False
        )
        log_card = float(self._model.forward(feats)[0, 0])
        return float(np.exp(np.clip(log_card, -30.0, 30.0)))

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Stack all feature vectors and run one MLP forward pass."""
        assert self._featurizer is not None and self._model is not None
        feats = self._featurizer.features_many(list(queries)).astype(
            self._np_dtype, copy=False
        )
        log_cards = self._model.forward(feats)[:, 0]
        return np.exp(np.clip(log_cards, -30.0, 30.0))

    def model_size_bytes(self) -> int:
        if self._model is None:
            return 0
        if self._quantized:
            from ...fastpath.quantize import module_size_bytes

            return module_size_bytes(self._model)
        return sum(p.value.nbytes for p in self._model.parameters())
