"""Naru [Yang et al. 2019]: deep autoregressive cardinality estimation.

Naru learns the joint distribution ``P(A_1..A_n)`` with a masked
autoregressive network (ResMADE, the block the paper selects) trained by
maximum likelihood on the raw tuples, and answers range queries with
*progressive sampling*: values are sampled column by column from the
model's conditional distributions restricted to the query ranges, and
the selectivity is the average across samples of the product of the
in-range probability masses.

Progressive sampling is stochastic: repeated estimates of the same query
differ (the Stability-rule violation of paper Section 6.3).  Pass
``inference_seed`` to pin the sampler for reproducible runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ...nn import Adam, ResMade, global_grad_norm
from ...nn.transformer import TransformerAR
from ...obs import get_monitor
from ...obs.clock import perf_counter
from ..discretize import Discretizer


class NaruEstimator(CardinalityEstimator):
    """Autoregressive model + progressive sampling (data-driven).

    ``block`` selects the autoregressive building block: ``"made"``
    (ResMADE, the paper's choice — "both efficient and accurate") or
    ``"transformer"`` (the alternative Naru's paper also evaluates).
    """

    name = "naru"

    def __init__(
        self,
        hidden_units: int = 64,
        hidden_layers: int = 3,
        max_bins: int = 256,
        epochs: int = 15,
        update_epochs: int = 1,
        batch_size: int = 512,
        learning_rate: float = 2e-3,
        num_samples: int = 200,
        block: str = "made",
        wildcard_skipping: bool = False,
        wildcard_rate: float = 0.25,
        seed: int = 0,
        inference_seed: int | None = None,
        dtype: str = "float64",
        quantize: str | None = None,
    ) -> None:
        super().__init__()
        if block not in ("made", "transformer"):
            raise ValueError(f"unknown block {block!r}; use 'made' or 'transformer'")
        if wildcard_skipping and block != "made":
            raise ValueError("wildcard_skipping requires the MADE block")
        if dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be float64 or float32, got {dtype!r}")
        if dtype != "float64" and block != "made":
            raise ValueError("the float32 path requires the MADE block")
        if quantize not in (None, "int8"):
            raise ValueError(f"quantize must be None or 'int8', got {quantize!r}")
        if quantize is not None and block != "made":
            raise ValueError("int8 quantization requires the MADE block")
        self.hidden_units = hidden_units
        self.hidden_layers = hidden_layers
        self.max_bins = max_bins
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.num_samples = num_samples
        self.block = block
        self.wildcard_skipping = wildcard_skipping
        self.wildcard_rate = wildcard_rate
        self.seed = seed
        self.inference_seed = inference_seed
        self.dtype = dtype
        self.quantize = quantize
        self._quantized = False
        self._disc: Discretizer | None = None
        #: ResMade/TransformerAR while trainable; after
        #: :meth:`quantize_int8`, the packed QuantizedResMade twin.
        self._model: ResMade | TransformerAR | None = None
        self._optimizer: Adam | None = None
        self._inference_rng = np.random.default_rng(seed + 1)
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _build_model(self, rng: np.random.Generator) -> ResMade | TransformerAR:
        assert self._disc is not None
        if self.block == "made":
            return ResMade(
                self._disc.cardinalities,
                self.hidden_units,
                self.hidden_layers,
                rng,
                dtype=np.dtype(self.dtype),
            )
        return TransformerAR(
            self._disc.cardinalities,
            dim=self.hidden_units,
            num_heads=max(1, self.hidden_units // 16),
            num_blocks=self.hidden_layers,
            rng=rng,
        )

    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        self._disc = Discretizer(table, self.max_bins)
        self._quantized = False
        self._model = self._build_model(rng)
        self._optimizer = Adam(self._model.parameters(), self.learning_rate)
        self.loss_history = []
        self.train_epochs(table, self.epochs, rng)
        if self.quantize == "int8":
            self.quantize_int8()

    def quantize_int8(self) -> None:
        """Pack the fitted MADE weights to int8 (one-way; inference-only).

        The float model is dropped in favour of its
        :class:`~repro.fastpath.quantize.QuantizedResMade` twin, which
        serves the same two progressive-sampling kernels from packed
        weights.  Further training requires a fresh fit.
        """
        # Deferred import: repro.fastpath builds on the estimator layers.
        from ...fastpath.quantize import QuantizedResMade

        if self._model is None:
            raise RuntimeError("fit the estimator before quantizing")
        if self._quantized:
            return
        if self.block != "made":
            raise ValueError("int8 quantization requires the MADE block")
        self._model = QuantizedResMade.from_resmade(self._model)
        self._optimizer = None
        self._quantized = True

    def train_epochs(
        self, table: Table, epochs: int, rng: np.random.Generator | None = None
    ) -> None:
        """Run additional likelihood-training epochs on ``table``."""
        if self._quantized:
            raise RuntimeError(
                "int8-quantized naru is inference-only; fit a fresh "
                "estimator to train further"
            )
        assert self._disc is not None and self._model is not None
        assert self._optimizer is not None
        rng = rng or np.random.default_rng(self.seed + 2)
        binned = self._disc.transform(table.data)
        n = len(binned)
        n_cols = binned.shape[1]
        monitor = get_monitor()
        for _ in range(epochs):
            epoch_start = perf_counter() if monitor is not None else 0.0
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = binned[order[start : start + self.batch_size]]
                if self.wildcard_skipping:
                    # Hide a random subset of input columns so the model
                    # learns to marginalise absent ("wildcard") inputs.
                    mask = rng.random((len(batch), n_cols)) < self.wildcard_rate
                    loss, grad = self._model.nll_step(batch, mask)  # type: ignore[call-arg]
                else:
                    loss, grad = self._model.nll_step(batch)
                self._model.zero_grad()
                self._model.backward(grad)
                self._optimizer.step()
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / n)
            if monitor is not None:
                monitor.on_epoch(
                    self.name,
                    epoch=len(self.loss_history) - 1,
                    loss=self.loss_history[-1],
                    grad_norm=global_grad_norm(self._model.parameters()),
                    seconds=perf_counter() - epoch_start,
                )

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Dynamic-environment update: one more epoch over the updated
        data (the procedure described in Naru's paper)."""
        self.train_epochs(table, self.update_epochs)

    # ------------------------------------------------------------------
    # Progressive sampling inference
    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        sel = self.estimate_selectivity(query)
        return sel * self.table.num_rows

    def estimate_selectivity(self, query: Query) -> float:
        """Progressive-sampling estimate of the query's selectivity."""
        assert self._disc is not None and self._model is not None
        rng = (
            np.random.default_rng(self.inference_seed)
            if self.inference_seed is not None
            else self._inference_rng
        )
        cards = self._disc.cardinalities
        n_cols = len(cards)
        weights = [np.ones(cards[i]) for i in range(n_cols)]
        for pred in query.predicates:
            weights[pred.column] = self._disc.predicate_weights(pred)

        s = self.num_samples
        samples = np.zeros((s, n_cols), dtype=np.int64)
        p_total = np.ones(s)
        predicated = np.zeros(n_cols, dtype=bool)
        for p in query.predicates:
            predicated[p.column] = True
        # Columns after the last predicated one have full mass (q = 1)
        # and cannot change the estimate, so sampling stops there.
        last_predicated = max(p.column for p in query.predicates)
        sampled = np.zeros(n_cols, dtype=bool)
        for col in range(last_predicated + 1):
            if self.wildcard_skipping and not predicated[col]:
                # Wildcard-trained models marginalise absent columns in
                # one shot: skip sampling them entirely.
                continue
            if self.wildcard_skipping:
                dist = self._model.conditional_from_bins(  # type: ignore[call-arg]
                    samples, col, present=sampled
                )
            else:
                dist = self._model.conditional_from_bins(samples, col)
            masked = dist * weights[col][None, :]
            q = masked.sum(axis=1)
            p_total *= q
            # Sample the next value among in-range bins; rows whose mass
            # is zero contribute zero probability and sample uniformly to
            # keep the batch shape.
            safe = np.where(q[:, None] > 0.0, masked, np.ones_like(masked))
            safe = safe / safe.sum(axis=1, keepdims=True)
            cum = np.cumsum(safe, axis=1)
            draws = rng.random(s)
            samples[:, col] = (draws[:, None] < cum).argmax(axis=1)
            sampled[col] = True
        return float(np.mean(p_total))

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        assert self._disc is not None
        queries = list(queries)
        # Keep the per-column scratch arrays (chunk * samples * max
        # cardinality float64s each) around 10 MB: big enough that prefix
        # dedup shares forward passes across many queries, small enough
        # to stay cache-resident — both smaller and larger chunks measure
        # slower.  Chunks run in query order, preserving the
        # inference-RNG stream.
        max_card = max(self._disc.cardinalities)
        # Int8 models run their scratch in float32 (half the bytes), so
        # the same cache budget fits twice the queries per chunk.
        budget = 2_500_000 if self._quantized else 1_250_000
        chunk = max(1, int(budget // max(1, self.num_samples * max_card)))
        out = np.empty(len(queries))
        for start in range(0, len(queries), chunk):
            out[start : start + chunk] = self.estimate_selectivities(
                queries[start : start + chunk]
            )
        return out * self.table.num_rows

    def _conditional_deduped(
        self, flat: np.ndarray, col: int, present: np.ndarray | None = None
    ) -> np.ndarray:
        """``conditional_from_bins`` over only the *distinct* prefixes.

        Progressive-sampling inputs repeat heavily across a batch: every
        row shares the empty prefix at column 0, and selective predicates
        confine later samples to a handful of bins.  The network output
        depends only on ``flat[:, :col]``, so one forward pass over the
        unique prefixes plus a gather replaces per-row computation — the
        cross-query sharing a scalar loop can never exploit.
        """
        assert self._model is not None
        cards = self._disc.cardinalities  # type: ignore[union-attr]
        space = 1
        for j in range(col):
            space *= int(cards[j])
        if space < 2**62:
            # Mixed-radix prefix code: one cheap 1-D unique.
            code = np.zeros(len(flat), dtype=np.int64)
            for j in range(col):
                code = code * int(cards[j]) + flat[:, j]
            _, first, inverse = np.unique(
                code, return_index=True, return_inverse=True
            )
        else:
            _, first, inverse = np.unique(
                flat[:, :col], axis=0, return_index=True, return_inverse=True
            )
        cond = getattr(self._model, "conditional_sparse", None)
        if cond is not None:
            dist = cond(flat[first], col, present=present)
        elif present is not None:
            dist = self._model.conditional_from_bins(  # type: ignore[call-arg]
                flat[first], col, present=present
            )
        else:
            dist = self._model.conditional_from_bins(flat[first], col)
        return dist[inverse]

    def estimate_selectivities(self, queries: Sequence[Query]) -> np.ndarray:
        """Progressive sampling over a whole batch of queries.

        Runs the same column-by-column procedure as
        :meth:`estimate_selectivity` but folds every query's sample set
        into a single MADE forward pass per column — the per-column
        network cost is amortised over the batch instead of being paid
        once per query.

        The random draws are pre-generated in the exact order the scalar
        loop would consume them (query by query, non-skipped column by
        column), so the shared stateful inference RNG — or a fixed
        ``inference_seed`` — yields the same sampling trajectory and the
        batch result matches the scalar loop (to floating-point rounding:
        the batch path runs the sparse MADE kernel, whose summation order
        differs from the dense one-hot matmul).
        """
        assert self._disc is not None and self._model is not None
        queries = list(queries)
        n_q = len(queries)
        if n_q == 0:
            return np.zeros(0)
        cards = self._disc.cardinalities
        n_cols = len(cards)
        s = self.num_samples

        # Quantized models dequantize into float32; keeping the whole
        # per-column scratch (dist / weights / cumsums) in float32 halves
        # the kernel's memory traffic.  The fp64 teacher keeps fp64
        # scratch, and ``draws`` stays float64 on both paths so the
        # shared inference-RNG stream is identical bit-for-bit.
        work_dtype = np.float32 if self._quantized else np.float64
        predicated = np.zeros((n_q, n_cols), dtype=bool)
        weights: list[dict[int, np.ndarray]] = []
        last = np.zeros(n_q, dtype=np.int64)
        for qi, query in enumerate(queries):
            w: dict[int, np.ndarray] = {}
            for pred in query.predicates:
                predicated[qi, pred.column] = True
                w[pred.column] = self._disc.predicate_weights(pred)
            weights.append(w)
            last[qi] = max(p.column for p in query.predicates)

        draws = np.zeros((n_q, n_cols, s))
        for qi in range(n_q):
            rng = (
                np.random.default_rng(self.inference_seed)
                if self.inference_seed is not None
                else self._inference_rng
            )
            for col in range(int(last[qi]) + 1):
                if self.wildcard_skipping and not predicated[qi, col]:
                    continue
                draws[qi, col] = rng.random(s)

        samples = np.zeros((n_q, s, n_cols), dtype=np.int64)
        p_total = np.ones((n_q, s), dtype=work_dtype)
        for col in range(int(last.max()) + 1):
            active_mask = last >= col
            if self.wildcard_skipping:
                active_mask &= predicated[:, col]
            active = np.flatnonzero(active_mask)
            if active.size == 0:
                continue
            card = cards[col]
            dist = np.empty((active.size, s, card), dtype=work_dtype)
            if self.wildcard_skipping:
                # ``present`` is shared across a conditional_from_bins
                # call, so group the active queries by which earlier
                # columns they have actually sampled.
                groups: dict[bytes, list[int]] = {}
                for pos, qi in enumerate(active):
                    groups.setdefault(
                        predicated[qi, :col].tobytes(), []
                    ).append(pos)
                for positions in groups.values():
                    idx = active[np.asarray(positions)]
                    flat = samples[idx].reshape(idx.size * s, n_cols)
                    present = np.zeros(n_cols, dtype=bool)
                    present[:col] = predicated[idx[0], :col]
                    dist[positions] = self._conditional_deduped(
                        flat, col, present=present
                    ).reshape(idx.size, s, card)
            else:
                flat = samples[active].reshape(active.size * s, n_cols)
                dist = self._conditional_deduped(flat, col).reshape(
                    active.size, s, card
                )
            w_col = np.ones((active.size, card), dtype=work_dtype)
            for pos, qi in enumerate(active):
                if col in weights[qi]:
                    w_col[pos] = weights[qi][col]
            masked = dist * w_col[:, None, :]
            q = masked.sum(axis=2)
            p_total[active] *= q
            safe = np.where(q[:, :, None] > 0.0, masked, np.ones_like(masked))
            safe = safe / safe.sum(axis=2, keepdims=True)
            cum = np.cumsum(safe, axis=2)
            samples[active, :, col] = (draws[active, col][:, :, None] < cum).argmax(
                axis=2
            )
        return p_total.mean(axis=1, dtype=np.float64)

    # ------------------------------------------------------------------
    def model_size_bytes(self) -> int:
        if self._model is None:
            return 0
        if self._quantized:
            # Packed int8 codes + per-channel scales/zero-points + biases.
            return int(self._model.size_bytes())
        return sum(p.value.nbytes for p in self._model.parameters())
