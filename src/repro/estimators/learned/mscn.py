"""MSCN [Kipf et al. 2019]: multi-set convolutional network.

The single-table variant used by the paper: the join module is dropped
and the feature vector keeps the predicate module (a per-predicate MLP
followed by average pooling over the predicate set) and the qualifying
materialized-sample bitmap module.  The model minimises the mean q-error
(representable in log space as ``exp(|log est - log act|)``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ...nn import Adam, Linear, ReLU, Sequential, global_grad_norm, qerror_loss
from ...obs import get_monitor
from ...obs.clock import perf_counter
from .featurize import MscnFeaturizer, log_cardinality_labels


class _MscnNetwork:
    """The three-module MSCN architecture with manual backprop."""

    def __init__(
        self,
        predicate_dim: int,
        sample_size: int,
        hidden: int,
        rng: np.random.Generator,
        use_sample: bool,
    ) -> None:
        self.use_sample = use_sample
        self.predicate_mlp = Sequential(
            Linear(predicate_dim, hidden, rng), ReLU(),
            Linear(hidden, hidden, rng), ReLU(),
        )
        self.sample_mlp = (
            Sequential(
                Linear(sample_size, hidden, rng), ReLU(),
                Linear(hidden, hidden, rng), ReLU(),
            )
            if use_sample
            else None
        )
        merged = hidden * (2 if use_sample else 1)
        self.output_mlp = Sequential(
            Linear(merged, hidden, rng), ReLU(), Linear(hidden, 1, rng)
        )
        self.hidden = hidden
        self._cache: dict[str, np.ndarray] = {}

    def parameters(self) -> list:
        params = self.predicate_mlp.parameters() + self.output_mlp.parameters()
        if self.sample_mlp is not None:
            params += self.sample_mlp.parameters()
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def forward(
        self, pred_feats: np.ndarray, pred_mask: np.ndarray, bitmaps: np.ndarray
    ) -> np.ndarray:
        batch, max_preds, dim = pred_feats.shape
        flat = pred_feats.reshape(batch * max_preds, dim)
        hidden_flat = self.predicate_mlp.forward(flat)
        hidden = hidden_flat.reshape(batch, max_preds, self.hidden)
        counts = np.maximum(pred_mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (hidden * pred_mask[:, :, None]).sum(axis=1) / counts
        self._cache = {"mask": pred_mask, "counts": counts, "shape": np.array([batch, max_preds])}
        if self.sample_mlp is not None:
            sample_hidden = self.sample_mlp.forward(bitmaps)
            merged = np.concatenate([pooled, sample_hidden], axis=1)
        else:
            merged = pooled
        return self.output_mlp.forward(merged).ravel()

    def forward_atoms(
        self, flat_feats: np.ndarray, counts: np.ndarray, bitmaps: np.ndarray
    ) -> np.ndarray:
        """Inference-only forward over the concatenated valid atoms.

        Skips the padded predicate slots entirely: the MLP runs on the
        real atoms and segment sums replace the masked pooling.  Matches
        :meth:`forward` bit-for-bit — padded slots are zeroed before the
        pooling sum there, and adding trailing zeros is exact.  Not
        usable for training (no activations are cached for backward).
        """
        counts = np.asarray(counts, dtype=np.int64)
        hidden = self.predicate_mlp.forward(flat_feats)
        # Inherit the MLP's dtype: int8 layers emit float32, and a
        # float64 pool here would silently upcast the rest of the net.
        pooled = np.zeros((len(counts), self.hidden), dtype=hidden.dtype)
        nonzero = np.flatnonzero(counts)
        if nonzero.size and len(hidden):
            ends = np.cumsum(counts)
            starts = ends[nonzero] - counts[nonzero]
            pooled[nonzero] = np.add.reduceat(hidden, starts, axis=0)
            pooled[nonzero] /= counts[nonzero][:, None]
        if self.sample_mlp is not None:
            sample_hidden = self.sample_mlp.forward(bitmaps)
            merged = np.concatenate([pooled, sample_hidden], axis=1)
        else:
            merged = pooled
        return self.output_mlp.forward(merged).ravel()

    def backward(self, grad_out: np.ndarray) -> None:
        grad_merged = self.output_mlp.backward(grad_out[:, None])
        if self.sample_mlp is not None:
            grad_pooled = grad_merged[:, : self.hidden]
            grad_sample = grad_merged[:, self.hidden :]
            self.sample_mlp.backward(grad_sample)
        else:
            grad_pooled = grad_merged
        mask = self._cache["mask"]
        counts = self._cache["counts"]
        batch, max_preds = map(int, self._cache["shape"])
        # Distribute the pooled gradient back onto each valid predicate.
        grad_hidden = (
            grad_pooled[:, None, :] * (mask / counts)[:, :, None]
        ).reshape(batch * max_preds, self.hidden)
        self.predicate_mlp.backward(grad_hidden)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


class MscnEstimator(CardinalityEstimator):
    """Multi-set convolutional network (query-driven)."""

    name = "mscn"
    requires_workload = True

    def __init__(
        self,
        hidden_units: int = 64,
        sample_size: int = 200,
        epochs: int = 60,
        update_epochs: int = 15,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        use_sample: bool = True,
        seed: int = 0,
        quantize: str | None = None,
    ) -> None:
        super().__init__()
        if quantize not in (None, "int8"):
            raise ValueError(f"quantize must be None or 'int8', got {quantize!r}")
        self.hidden_units = hidden_units
        self.sample_size = sample_size
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.use_sample = use_sample
        self.seed = seed
        self.quantize = quantize
        self._quantized = False
        self._featurizer: MscnFeaturizer | None = None
        self._network: _MscnNetwork | None = None
        self._optimizer: Adam | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        rng = np.random.default_rng(self.seed)
        self._featurizer = MscnFeaturizer(table, self.sample_size, rng)
        self._network = _MscnNetwork(
            self._featurizer.predicate_dim,
            len(self._featurizer.sample),
            self.hidden_units,
            rng,
            self.use_sample,
        )
        self._quantized = False
        self._optimizer = Adam(self._network.parameters(), self.learning_rate)
        self.loss_history = []
        self._train(workload, self.epochs, rng)
        if self.quantize == "int8":
            self.quantize_int8()

    def quantize_int8(self) -> None:
        """Pack the three fitted MLPs' weights to int8 (inference-only).

        Every dense layer is swapped for its packed
        :class:`~repro.fastpath.quantize.QuantizedLinear` twin in place;
        the float weights are dropped.  Further training (``update``)
        requires a fresh fit.
        """
        # Deferred import: repro.fastpath builds on the estimator layers.
        from ...fastpath.quantize import quantize_sequential

        if self._network is None:
            raise RuntimeError("fit the estimator before quantizing")
        if self._quantized:
            return
        quantize_sequential(self._network.predicate_mlp)
        if self._network.sample_mlp is not None:
            quantize_sequential(self._network.sample_mlp)
        quantize_sequential(self._network.output_mlp)
        self._optimizer = None
        self._quantized = True

    def _train(
        self, workload: Workload, epochs: int, rng: np.random.Generator
    ) -> None:
        assert self._featurizer is not None and self._network is not None
        assert self._optimizer is not None
        queries = list(workload.queries)
        pred_feats, pred_mask = self._featurizer.predicate_tensor(queries)
        bitmaps = self._featurizer.bitmaps(queries)
        labels = log_cardinality_labels(workload.cardinalities)
        n = len(labels)
        monitor = get_monitor()
        for _ in range(epochs):
            epoch_start = perf_counter() if monitor is not None else 0.0
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                pred = self._network.forward(
                    pred_feats[batch], pred_mask[batch], bitmaps[batch]
                )
                loss, grad = qerror_loss(pred, labels[batch])
                self._network.zero_grad()
                self._network.backward(grad)
                self._optimizer.step()
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / n)
            if monitor is not None:
                monitor.on_epoch(
                    self.name,
                    epoch=len(self.loss_history) - 1,
                    loss=self.loss_history[-1],
                    grad_norm=global_grad_norm(self._network.parameters()),
                    seconds=perf_counter() - epoch_start,
                )

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Dynamic update (the paper adopts LW's procedure for MSCN):
        refresh the materialized sample and continue training on freshly
        labelled queries for a few epochs."""
        if self._quantized:
            raise RuntimeError(
                "int8-quantized mscn is inference-only; fit a fresh "
                "estimator to train further"
            )
        if workload is None:
            raise ValueError("mscn update needs a fresh training workload")
        assert self._featurizer is not None
        rng = np.random.default_rng(self.seed + 1)
        self._featurizer.refresh_sample(table, rng)
        self._train(workload, self.update_epochs, rng)

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._featurizer is not None and self._network is not None
        pred_feats, pred_mask = self._featurizer.predicate_tensor([query])
        bitmaps = self._featurizer.bitmaps([query])
        log_card = float(self._network.forward(pred_feats, pred_mask, bitmaps)[0])
        return float(np.exp(np.clip(log_card, -30.0, 30.0)))

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """One network forward over the batch's concatenated atoms.

        The padding-free atom layout plus segment-sum pooling produces
        the same per-query output as featurizing each query alone (see
        :meth:`MscnNetwork.forward_atoms`), without spending predicate-MLP
        work on empty padded slots.
        """
        assert self._featurizer is not None and self._network is not None
        queries = list(queries)
        flat_feats, counts = self._featurizer.atoms(queries)
        bitmaps = self._featurizer.bitmaps(queries)
        log_cards = self._network.forward_atoms(flat_feats, counts, bitmaps)
        return np.exp(np.clip(log_cards, -30.0, 30.0))

    def model_size_bytes(self) -> int:
        if self._network is None:
            return 0
        if self._quantized:
            from ...fastpath.quantize import module_size_bytes

            parts = [self._network.predicate_mlp, self._network.output_mlp]
            if self._network.sample_mlp is not None:
                parts.append(self._network.sample_mlp)
            return sum(module_size_bytes(m) for m in parts)
        return sum(p.value.nbytes for p in self._network.parameters())
