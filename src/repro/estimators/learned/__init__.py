"""The learned estimators of the paper's Table 1 taxonomy.

The five evaluated in the paper's benchmark (MSCN, LW-XGB, LW-NN, Naru,
DeepDB) plus the two it surveys but excludes (DQM-D, DQM-Q), plus the
Section 7.1 ensemble prototypes.
"""

from .deepdb import DeepDbEstimator
from .dqm import DqmDEstimator, DqmQEstimator
from .ensemble import FallbackEstimator, HierarchicalEstimator
from .featurize import (
    CeFeaturizer,
    LwFeaturizer,
    MscnFeaturizer,
    RangeFeaturizer,
    log_cardinality_labels,
)
from .lw_nn import LwNnEstimator
from .lw_xgb import LwXgbEstimator
from .mscn import MscnEstimator
from .naru import NaruEstimator

__all__ = [
    "CeFeaturizer",
    "DeepDbEstimator",
    "DqmDEstimator",
    "DqmQEstimator",
    "FallbackEstimator",
    "HierarchicalEstimator",
    "LwFeaturizer",
    "LwNnEstimator",
    "LwXgbEstimator",
    "MscnEstimator",
    "MscnFeaturizer",
    "NaruEstimator",
    "RangeFeaturizer",
    "log_cardinality_labels",
]
