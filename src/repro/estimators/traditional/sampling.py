"""Uniform-random-sample estimator (paper Section 4.1).

The paper samples 1.5% of the tuples so the space budget matches the
learned models.  Estimation evaluates the query exactly on the sample and
scales up by the sampling fraction.
"""

from __future__ import annotations

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


class SamplingEstimator(CardinalityEstimator):
    """COUNT on a uniform sample, scaled by the sampling rate."""

    name = "sampling"

    def __init__(self, fraction: float = 0.015, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed
        self._sample: Table | None = None

    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        self._sample = table.sample(self.fraction, rng)

    def _estimate(self, query: Query) -> float:
        assert self._sample is not None
        matched = self._sample.cardinality(query)
        scale = self.table.num_rows / self._sample.num_rows
        return matched * scale

    def model_size_bytes(self) -> int:
        return self._sample.size_bytes() if self._sample is not None else 0
