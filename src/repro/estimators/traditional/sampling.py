"""Uniform-random-sample estimator (paper Section 4.1).

The paper samples 1.5% of the tuples so the space budget matches the
learned models.  Estimation evaluates the query exactly on the sample and
scales up by the sampling fraction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


class SamplingEstimator(CardinalityEstimator):
    """COUNT on a uniform sample, scaled by the sampling rate."""

    name = "sampling"

    def __init__(self, fraction: float = 0.015, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed
        self._sample: Table | None = None

    def _fit(self, table: Table, workload: Workload | None) -> None:
        rng = np.random.default_rng(self.seed)
        self._sample = table.sample(self.fraction, rng)

    def _estimate(self, query: Query) -> float:
        assert self._sample is not None
        matched = self._sample.cardinality(query)
        scale = self.table.num_rows / self._sample.num_rows
        return matched * scale

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """All predicate masks evaluated as one boolean tensor.

        Every query's bounds are broadcast against the sample at once;
        an unconstrained side becomes +-inf, which matches every row
        exactly like the scalar path's skipped comparison.  Matched
        counts are integers, so the result is bit-identical to the
        scalar loop.
        """
        assert self._sample is not None
        queries = list(queries)
        data = self._sample.data
        n_q, n_cols = len(queries), data.shape[1]
        lo = np.full((n_q, n_cols), -np.inf)
        hi = np.full((n_q, n_cols), np.inf)
        for qi, query in enumerate(queries):
            for pred in query.predicates:
                if pred.lo is not None:
                    lo[qi, pred.column] = pred.lo
                if pred.hi is not None:
                    hi[qi, pred.column] = pred.hi
        matched = np.empty(n_q)
        # Chunk so the (chunk, rows, cols) comparison tensor stays small.
        chunk = max(1, int(4_000_000 // max(1, data.size)))
        for start in range(0, n_q, chunk):
            sl = slice(start, start + chunk)
            sat = (data[None, :, :] >= lo[sl, None, :]) & (
                data[None, :, :] <= hi[sl, None, :]
            )
            matched[sl] = sat.all(axis=2).sum(axis=1)
        return matched * (self.table.num_rows / self._sample.num_rows)

    def model_size_bytes(self) -> int:
        return self._sample.size_bytes() if self._sample is not None else 0
