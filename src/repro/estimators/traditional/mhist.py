"""MHIST-2 multi-dimensional MaxDiff histogram [Poosala & Ioannidis 1997].

The paper runs MHIST-2 with the MaxDiff partition constraint, Value as
the sort parameter and Area as the source parameter, iterating until the
histogram reaches 1.5% of the data size.

MHIST-2 greedily finds, over all current buckets and all dimensions, the
largest adjacent difference in *area* (frequency x spread of a distinct
value) and splits that bucket at that boundary.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


@dataclass(frozen=True)
class _Bucket:
    """A hyper-rectangular bucket: bounds, row count, per-dim distincts."""

    count: int
    lows: np.ndarray = field(repr=False)
    highs: np.ndarray = field(repr=False)
    distincts: np.ndarray = field(repr=False)


def _best_split(values_by_dim: np.ndarray) -> tuple[float, int, float] | None:
    """(maxdiff score, dimension, split value) for one bucket's rows."""
    best: tuple[float, int, float] | None = None
    for dim in range(values_by_dim.shape[1]):
        uniq, counts = np.unique(values_by_dim[:, dim], return_counts=True)
        if len(uniq) < 2:
            continue
        spreads = np.empty(len(uniq))
        spreads[:-1] = np.diff(uniq)
        spreads[-1] = spreads[-2]
        area = counts * spreads
        diffs = np.abs(np.diff(area))
        k = int(np.argmax(diffs))
        score = float(diffs[k])
        if best is None or score > best[0]:
            best = (score, dim, float(uniq[k]))
    return best


class MhistEstimator(CardinalityEstimator):
    """Multi-dimensional MaxDiff(V, A) histogram built with MHIST-2."""

    name = "mhist"

    def __init__(
        self, budget_fraction: float = 0.015, max_buckets: int | None = None
    ) -> None:
        super().__init__()
        self.budget_fraction = budget_fraction
        self.max_buckets = max_buckets
        self._buckets: list[_Bucket] = []

    # ------------------------------------------------------------------
    def _target_buckets(self, table: Table) -> int:
        # Each bucket stores 2 bounds + 1 distinct count per dim + a row
        # count, 8 bytes each.
        per_bucket = 8 * (3 * table.num_columns + 1)
        budget = table.size_bytes() * self.budget_fraction
        target = max(8, int(budget / per_bucket))
        if self.max_buckets is not None:
            target = min(target, self.max_buckets)
        return target

    def _fit(self, table: Table, workload: Workload | None) -> None:
        data = table.data
        target = self._target_buckets(table)
        row_sets: list[np.ndarray] = [np.arange(table.num_rows)]
        # Max-heap of candidate splits keyed by maxdiff score.
        heap: list[tuple[float, int, int, float]] = []

        def push(idx: int) -> None:
            cand = _best_split(data[row_sets[idx]])
            if cand is not None:
                score, dim, value = cand
                heapq.heappush(heap, (-score, idx, dim, value))

        push(0)
        while len(row_sets) < target and heap:
            _, idx, dim, value = heapq.heappop(heap)
            rows = row_sets[idx]
            go_left = data[rows, dim] <= value
            row_sets[idx] = rows[go_left]
            row_sets.append(rows[~go_left])
            push(idx)
            push(len(row_sets) - 1)

        self._buckets = [self._make_bucket(data, rows) for rows in row_sets]
        # Stacked per-bucket arrays for the vectorized batch path.
        self._lows = np.stack([b.lows for b in self._buckets])
        self._highs = np.stack([b.highs for b in self._buckets])
        self._distincts = np.stack([b.distincts for b in self._buckets])
        self._counts = np.array(
            [b.count for b in self._buckets], dtype=np.float64
        )

    @staticmethod
    def _make_bucket(data: np.ndarray, rows: np.ndarray) -> _Bucket:
        sub = data[rows]
        distincts = np.array(
            [max(1, len(np.unique(sub[:, d]))) for d in range(data.shape[1])],
            dtype=np.float64,
        )
        return _Bucket(
            count=len(rows),
            lows=sub.min(axis=0),
            highs=sub.max(axis=0),
            distincts=distincts,
        )

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        total = 0.0
        for bucket in self._buckets:
            frac = self._bucket_fraction(bucket, query)
            if frac > 0.0:
                total += bucket.count * frac
        return total

    @staticmethod
    def _bucket_fraction(bucket: _Bucket, query: Query) -> float:
        frac = 1.0
        for pred in query.predicates:
            d = pred.column
            b_lo, b_hi = bucket.lows[d], bucket.highs[d]
            lo = b_lo if pred.lo is None else pred.lo
            hi = b_hi if pred.hi is None else pred.hi
            if hi < lo or hi < b_lo or lo > b_hi:
                return 0.0
            if pred.is_equality:
                # Uniform over the distinct values inside the bucket.
                frac *= 1.0 / bucket.distincts[d]
            elif b_hi == b_lo:
                frac *= 1.0
            else:
                overlap = min(hi, b_hi) - max(lo, b_lo)
                frac *= max(0.0, overlap) / (b_hi - b_lo)
            if frac == 0.0:
                return 0.0
        return frac

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Bucket fractions computed as arrays over all buckets at once.

        The per-bucket Python loop of the scalar path becomes one
        vectorized pass per predicate; the per-bucket arithmetic is
        applied in the same predicate order, so fractions match the
        scalar path bit for bit.
        """
        out = np.empty(len(queries))
        for qi, query in enumerate(queries):
            frac = np.ones(len(self._counts))
            for pred in query.predicates:
                d = pred.column
                b_lo, b_hi = self._lows[:, d], self._highs[:, d]
                lo = b_lo if pred.lo is None else pred.lo
                hi = b_hi if pred.hi is None else pred.hi
                dead = (hi < lo) | (hi < b_lo) | (lo > b_hi)
                if pred.is_equality:
                    piece = 1.0 / self._distincts[:, d]
                else:
                    degenerate = b_hi == b_lo
                    width = np.where(degenerate, 1.0, b_hi - b_lo)
                    overlap = np.minimum(hi, b_hi) - np.maximum(lo, b_lo)
                    piece = np.where(
                        degenerate, 1.0, np.maximum(0.0, overlap) / width
                    )
                frac *= np.where(dead, 0.0, piece)
            out[qi] = (self._counts * frac).sum()
        return out

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def model_size_bytes(self) -> int:
        if not self._buckets:
            return 0
        dims = len(self._buckets[0].lows)
        return len(self._buckets) * 8 * (3 * dims + 1)
