"""Per-column statistics primitives shared by the DBMS-style estimators.

These mirror what production systems actually keep per column:

* an equi-depth (equal-frequency) histogram with per-bucket distinct
  counts, used with continuous interpolation for range predicates;
* an optional most-common-values (MCV) list, which Postgres consults
  before the histogram.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.query import Predicate


class EquiDepthHistogram:
    """Equal-frequency histogram with per-bucket distinct-value counts."""

    def __init__(self, values: np.ndarray, num_buckets: int) -> None:
        values = np.sort(np.asarray(values, dtype=np.float64))
        if values.size == 0:
            raise ValueError("cannot build a histogram over no values")
        num_buckets = max(1, min(num_buckets, values.size))
        # Bucket bounds at evenly spaced quantiles of the sorted data.
        positions = np.linspace(0, values.size - 1, num_buckets + 1).astype(np.int64)
        self.bounds = values[positions]
        self.total = int(values.size)
        # Row counts and distinct counts per bucket.
        self.counts = np.empty(num_buckets, dtype=np.float64)
        self.distincts = np.empty(num_buckets, dtype=np.float64)
        for b in range(num_buckets):
            lo_idx = positions[b]
            hi_idx = positions[b + 1]
            chunk = values[lo_idx : hi_idx + 1] if b == num_buckets - 1 else values[lo_idx:hi_idx]
            self.counts[b] = len(chunk)
            self.distincts[b] = max(1, len(np.unique(chunk)))

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    def range_fraction(self, lo: float | None, hi: float | None) -> float:
        """Fraction of rows with value in ``[lo, hi]`` (uniform-in-bucket)."""
        lo_v = self.bounds[0] if lo is None else lo
        hi_v = self.bounds[-1] if hi is None else hi
        if hi_v < lo_v:
            return 0.0
        covered = 0.0
        for b in range(self.num_buckets):
            b_lo, b_hi = self.bounds[b], self.bounds[b + 1]
            if b_hi < lo_v or b_lo > hi_v:
                continue
            if b_hi == b_lo:
                covered += self.counts[b]
                continue
            overlap = min(hi_v, b_hi) - max(lo_v, b_lo)
            covered += self.counts[b] * max(0.0, overlap) / (b_hi - b_lo)
        return min(1.0, covered / self.total)

    def equality_fraction(self, value: float) -> float:
        """Fraction of rows equal to ``value``.

        A frequent value can span several equal-frequency buckets, so all
        buckets whose range contains the value contribute: singleton
        buckets (``lo == hi == value``) contribute their full count, the
        rest contribute ``count / ndv`` (uniform over distinct values).
        """
        if value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        first = int(np.searchsorted(self.bounds[:-1], value, side="left"))
        first = max(0, first - 1)
        covered = 0.0
        for b in range(first, self.num_buckets):
            b_lo, b_hi = self.bounds[b], self.bounds[b + 1]
            if b_lo > value:
                break
            if b_hi < value:
                continue
            if b_lo == b_hi:
                covered += self.counts[b]
            else:
                covered += self.counts[b] / self.distincts[b]
        return float(covered / self.total)

    # ------------------------------------------------------------------
    # Batched variants: one (queries, buckets) matrix instead of a
    # Python loop per query.  Unbounded sides are passed as +-inf.
    # ------------------------------------------------------------------
    def range_fraction_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_fraction` over arrays of bounds."""
        lo = np.where(np.isneginf(lo), self.bounds[0], lo)[:, None]
        hi = np.where(np.isposinf(hi), self.bounds[-1], hi)[:, None]
        b_lo = self.bounds[:-1][None, :]
        b_hi = self.bounds[1:][None, :]
        degenerate = b_hi == b_lo
        inside = ~((b_hi < lo) | (b_lo > hi))
        width = np.where(degenerate, 1.0, b_hi - b_lo)
        overlap = np.maximum(0.0, np.minimum(hi, b_hi) - np.maximum(lo, b_lo))
        frac = np.where(degenerate, 1.0, overlap / width)
        covered = (np.where(inside, frac, 0.0) * self.counts[None, :]).sum(axis=1)
        return np.where(
            hi[:, 0] < lo[:, 0], 0.0, np.minimum(1.0, covered / self.total)
        )

    def equality_fraction_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`equality_fraction` over an array of values."""
        v = np.asarray(values, dtype=np.float64)[:, None]
        b_lo = self.bounds[:-1][None, :]
        b_hi = self.bounds[1:][None, :]
        contrib = np.where(
            b_lo == b_hi, self.counts[None, :], self.counts[None, :] / self.distincts[None, :]
        )
        covered = (((b_lo <= v) & (v <= b_hi)) * contrib).sum(axis=1)
        outside = (v[:, 0] < self.bounds[0]) | (v[:, 0] > self.bounds[-1])
        return np.where(outside, 0.0, covered / self.total)


class McvList:
    """Most-common-values list: exact fractions for heavy hitters."""

    def __init__(self, values: np.ndarray, limit: int) -> None:
        uniq, counts = np.unique(np.asarray(values, dtype=np.float64), return_counts=True)
        order = np.argsort(counts)[::-1]
        take = min(limit, len(uniq))
        # Postgres only stores values that are genuinely common: more
        # frequent than the average value.
        avg = counts.mean()
        chosen = [i for i in order[:take] if counts[i] > avg]
        self.values = uniq[chosen]
        self.fractions = counts[chosen] / values.size
        self.total_fraction = float(self.fractions.sum())
        self._index = {float(v): float(f) for v, f in zip(self.values, self.fractions)}

    def __len__(self) -> int:
        return len(self.values)

    def equality_fraction(self, value: float) -> float | None:
        """Fraction if ``value`` is an MCV, else None."""
        return self._index.get(float(value))

    def range_fraction(self, lo: float | None, hi: float | None) -> float:
        """Summed fraction of MCVs inside ``[lo, hi]``."""
        mask = np.ones(len(self.values), dtype=bool)
        if lo is not None:
            mask &= self.values >= lo
        if hi is not None:
            mask &= self.values <= hi
        return float(self.fractions[mask].sum())

    def range_fraction_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_fraction`; unbounded sides are +-inf."""
        if len(self.values) == 0:
            return np.zeros(len(lo))
        mask = (self.values[None, :] >= lo[:, None]) & (
            self.values[None, :] <= hi[:, None]
        )
        return (mask * self.fractions[None, :]).sum(axis=1)


class ColumnStatistics:
    """Postgres-style per-column statistics: MCVs + equi-depth histogram."""

    def __init__(
        self, values: np.ndarray, num_buckets: int, mcv_limit: int = 100
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.num_rows = int(values.size)
        self.num_distinct = int(len(np.unique(values)))
        self.mcvs = McvList(values, mcv_limit) if mcv_limit > 0 else None
        if self.mcvs is not None and len(self.mcvs) > 0:
            rest = values[~np.isin(values, self.mcvs.values)]
        else:
            rest = values
        self.histogram = EquiDepthHistogram(rest, num_buckets) if rest.size else None
        self._rest_fraction = rest.size / values.size

    def selectivity(self, predicate: Predicate) -> float:
        """Selectivity of one predicate under these statistics."""
        if predicate.is_empty:
            return 0.0
        if predicate.is_equality:
            return self._equality_selectivity(float(predicate.lo))  # type: ignore[arg-type]
        return self._range_selectivity(predicate.lo, predicate.hi)

    def _equality_selectivity(self, value: float) -> float:
        if self.mcvs is not None:
            hit = self.mcvs.equality_fraction(value)
            if hit is not None:
                return hit
            remaining_distinct = max(1, self.num_distinct - len(self.mcvs))
            leftover = max(0.0, 1.0 - self.mcvs.total_fraction)
            return leftover / remaining_distinct
        if self.histogram is not None:
            return self.histogram.equality_fraction(value)
        return 1.0 / max(1, self.num_distinct)

    def _range_selectivity(self, lo: float | None, hi: float | None) -> float:
        frac = 0.0
        if self.mcvs is not None:
            frac += self.mcvs.range_fraction(lo, hi)
        if self.histogram is not None:
            frac += self.histogram.range_fraction(lo, hi) * self._rest_fraction
        return min(1.0, frac)

    def selectivity_batch(self, predicates: Sequence[Predicate]) -> np.ndarray:
        """Vectorized :meth:`selectivity` over predicates on this column.

        Mirrors the scalar branch structure exactly: empty predicates are
        zero, equalities go through the MCV list (falling back to the
        leftover-mass estimate or the histogram), ranges sum the MCV and
        histogram contributions.
        """
        preds = list(predicates)
        out = np.zeros(len(preds))
        eq_idx: list[int] = []
        rg_idx: list[int] = []
        for i, pred in enumerate(preds):
            if pred.is_empty:
                continue
            (eq_idx if pred.is_equality else rg_idx).append(i)

        if eq_idx:
            values = np.array([float(preds[i].lo) for i in eq_idx])
            if self.mcvs is not None:
                remaining_distinct = max(1, self.num_distinct - len(self.mcvs))
                leftover = max(0.0, 1.0 - self.mcvs.total_fraction)
                miss = leftover / remaining_distinct
                sels = np.array(
                    [
                        hit if (hit := self.mcvs.equality_fraction(v)) is not None
                        else miss
                        for v in values
                    ]
                )
            elif self.histogram is not None:
                sels = self.histogram.equality_fraction_batch(values)
            else:
                sels = np.full(len(eq_idx), 1.0 / max(1, self.num_distinct))
            out[eq_idx] = sels

        if rg_idx:
            lo = np.array(
                [-np.inf if preds[i].lo is None else preds[i].lo for i in rg_idx]
            )
            hi = np.array(
                [np.inf if preds[i].hi is None else preds[i].hi for i in rg_idx]
            )
            frac = np.zeros(len(rg_idx))
            if self.mcvs is not None:
                frac += self.mcvs.range_fraction_batch(lo, hi)
            if self.histogram is not None:
                frac += self.histogram.range_fraction_batch(lo, hi) * self._rest_fraction
            out[rg_idx] = np.minimum(1.0, frac)
        return out
