"""Per-column statistics primitives shared by the DBMS-style estimators.

These mirror what production systems actually keep per column:

* an equi-depth (equal-frequency) histogram with per-bucket distinct
  counts, used with continuous interpolation for range predicates;
* an optional most-common-values (MCV) list, which Postgres consults
  before the histogram.
"""

from __future__ import annotations

import numpy as np

from ...core.query import Predicate


class EquiDepthHistogram:
    """Equal-frequency histogram with per-bucket distinct-value counts."""

    def __init__(self, values: np.ndarray, num_buckets: int) -> None:
        values = np.sort(np.asarray(values, dtype=np.float64))
        if values.size == 0:
            raise ValueError("cannot build a histogram over no values")
        num_buckets = max(1, min(num_buckets, values.size))
        # Bucket bounds at evenly spaced quantiles of the sorted data.
        positions = np.linspace(0, values.size - 1, num_buckets + 1).astype(np.int64)
        self.bounds = values[positions]
        self.total = int(values.size)
        # Row counts and distinct counts per bucket.
        self.counts = np.empty(num_buckets, dtype=np.float64)
        self.distincts = np.empty(num_buckets, dtype=np.float64)
        for b in range(num_buckets):
            lo_idx = positions[b]
            hi_idx = positions[b + 1]
            chunk = values[lo_idx : hi_idx + 1] if b == num_buckets - 1 else values[lo_idx:hi_idx]
            self.counts[b] = len(chunk)
            self.distincts[b] = max(1, len(np.unique(chunk)))

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    def range_fraction(self, lo: float | None, hi: float | None) -> float:
        """Fraction of rows with value in ``[lo, hi]`` (uniform-in-bucket)."""
        lo_v = self.bounds[0] if lo is None else lo
        hi_v = self.bounds[-1] if hi is None else hi
        if hi_v < lo_v:
            return 0.0
        covered = 0.0
        for b in range(self.num_buckets):
            b_lo, b_hi = self.bounds[b], self.bounds[b + 1]
            if b_hi < lo_v or b_lo > hi_v:
                continue
            if b_hi == b_lo:
                covered += self.counts[b]
                continue
            overlap = min(hi_v, b_hi) - max(lo_v, b_lo)
            covered += self.counts[b] * max(0.0, overlap) / (b_hi - b_lo)
        return min(1.0, covered / self.total)

    def equality_fraction(self, value: float) -> float:
        """Fraction of rows equal to ``value``.

        A frequent value can span several equal-frequency buckets, so all
        buckets whose range contains the value contribute: singleton
        buckets (``lo == hi == value``) contribute their full count, the
        rest contribute ``count / ndv`` (uniform over distinct values).
        """
        if value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        first = int(np.searchsorted(self.bounds[:-1], value, side="left"))
        first = max(0, first - 1)
        covered = 0.0
        for b in range(first, self.num_buckets):
            b_lo, b_hi = self.bounds[b], self.bounds[b + 1]
            if b_lo > value:
                break
            if b_hi < value:
                continue
            if b_lo == b_hi:
                covered += self.counts[b]
            else:
                covered += self.counts[b] / self.distincts[b]
        return float(covered / self.total)


class McvList:
    """Most-common-values list: exact fractions for heavy hitters."""

    def __init__(self, values: np.ndarray, limit: int) -> None:
        uniq, counts = np.unique(np.asarray(values, dtype=np.float64), return_counts=True)
        order = np.argsort(counts)[::-1]
        take = min(limit, len(uniq))
        # Postgres only stores values that are genuinely common: more
        # frequent than the average value.
        avg = counts.mean()
        chosen = [i for i in order[:take] if counts[i] > avg]
        self.values = uniq[chosen]
        self.fractions = counts[chosen] / values.size
        self.total_fraction = float(self.fractions.sum())
        self._index = {float(v): float(f) for v, f in zip(self.values, self.fractions)}

    def __len__(self) -> int:
        return len(self.values)

    def equality_fraction(self, value: float) -> float | None:
        """Fraction if ``value`` is an MCV, else None."""
        return self._index.get(float(value))

    def range_fraction(self, lo: float | None, hi: float | None) -> float:
        """Summed fraction of MCVs inside ``[lo, hi]``."""
        mask = np.ones(len(self.values), dtype=bool)
        if lo is not None:
            mask &= self.values >= lo
        if hi is not None:
            mask &= self.values <= hi
        return float(self.fractions[mask].sum())


class ColumnStatistics:
    """Postgres-style per-column statistics: MCVs + equi-depth histogram."""

    def __init__(
        self, values: np.ndarray, num_buckets: int, mcv_limit: int = 100
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.num_rows = int(values.size)
        self.num_distinct = int(len(np.unique(values)))
        self.mcvs = McvList(values, mcv_limit) if mcv_limit > 0 else None
        if self.mcvs is not None and len(self.mcvs) > 0:
            rest = values[~np.isin(values, self.mcvs.values)]
        else:
            rest = values
        self.histogram = EquiDepthHistogram(rest, num_buckets) if rest.size else None
        self._rest_fraction = rest.size / values.size

    def selectivity(self, predicate: Predicate) -> float:
        """Selectivity of one predicate under these statistics."""
        if predicate.is_empty:
            return 0.0
        if predicate.is_equality:
            return self._equality_selectivity(float(predicate.lo))  # type: ignore[arg-type]
        return self._range_selectivity(predicate.lo, predicate.hi)

    def _equality_selectivity(self, value: float) -> float:
        if self.mcvs is not None:
            hit = self.mcvs.equality_fraction(value)
            if hit is not None:
                return hit
            remaining_distinct = max(1, self.num_distinct - len(self.mcvs))
            leftover = max(0.0, 1.0 - self.mcvs.total_fraction)
            return leftover / remaining_distinct
        if self.histogram is not None:
            return self.histogram.equality_fraction(value)
        return 1.0 / max(1, self.num_distinct)

    def _range_selectivity(self, lo: float | None, hi: float | None) -> float:
        frac = 0.0
        if self.mcvs is not None:
            frac += self.mcvs.range_fraction(lo, hi)
        if self.histogram is not None:
            frac += self.histogram.range_fraction(lo, hi) * self._rest_fraction
        return min(1.0, frac)
