"""Re-implementations of the three production-DBMS estimators.

The paper benchmarks PostgreSQL 11.5 (statistics target 10,000), MySQL
8.0.21 (histograms with 1,024 buckets) and a commercial "DBMS-A" with
multi-column statistics.  There are no database servers in this offline
environment, so the estimation pipelines themselves are re-implemented
(see DESIGN.md):

* :class:`PostgresEstimator` — per-column MCV list + equi-depth histogram,
  combined under the attribute-value-independence (AVI) assumption.
* :class:`MySQLEstimator` — per-column equi-height histogram (no MCVs),
  AVI combination.
* :class:`DbmsAEstimator` — per-column histograms plus two-column joint
  histograms over the most correlated column pairs, combined with the
  exponential-backoff formula used by leading commercial optimizers
  (``s1 * s2^(1/2) * s3^(1/4) * s4^(1/8)``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Predicate, Query
from ...core.table import Table
from ...core.workload import Workload
from .histograms import ColumnStatistics, EquiDepthHistogram


class _AviDbmsEstimator(CardinalityEstimator):
    """Shared machinery: per-column stats + AVI product combination."""

    def __init__(self, num_buckets: int, mcv_limit: int) -> None:
        super().__init__()
        self.num_buckets = num_buckets
        self.mcv_limit = mcv_limit
        self._stats: list[ColumnStatistics] = []

    def _fit(self, table: Table, workload: Workload | None) -> None:
        self._stats = [
            ColumnStatistics(table.data[:, i], self.num_buckets, self.mcv_limit)
            for i in range(table.num_columns)
        ]

    def per_predicate_selectivities(self, query: Query) -> np.ndarray:
        """Single-predicate selectivities (also feeds LW's CE features)."""
        return np.array(
            [self._stats[p.column].selectivity(p) for p in query.predicates]
        )

    def per_predicate_selectivities_many(
        self, queries: Sequence[Query]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-predicate selectivities for a whole batch at once.

        Returns ``(sels, counts)``: ``sels[qi, pi]`` is the selectivity
        of query ``qi``'s ``pi``-th predicate (in query order), padded
        with 1.0 past ``counts[qi]`` predicates.  Predicates are grouped
        by column so each column's statistics run vectorized over the
        batch (the LW featurizer's hot path).
        """
        queries = list(queries)
        counts = np.array([len(q.predicates) for q in queries], dtype=np.int64)
        width = max(1, int(counts.max(initial=0)))
        sels = np.ones((len(queries), width))
        by_col: dict[int, tuple[list[int], list[int], list[Predicate]]] = {}
        for qi, query in enumerate(queries):
            for pi, pred in enumerate(query.predicates):
                qis, pis, preds = by_col.setdefault(pred.column, ([], [], []))
                qis.append(qi)
                pis.append(pi)
                preds.append(pred)
        for col, (qis, pis, preds) in by_col.items():
            sels[np.asarray(qis), np.asarray(pis)] = self._stats[
                col
            ].selectivity_batch(preds)
        return sels, counts

    def _estimate(self, query: Query) -> float:
        sels = self.per_predicate_selectivities(query)
        return float(np.prod(sels)) * self.table.num_rows

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """AVI products computed column by column over the whole batch.

        All predicates touching one column are pushed through that
        column's vectorized statistics in a single call; the per-query
        product then multiplies the grouped selectivities back in
        (multiplication is commutative, so grouping by column instead of
        by query changes only floating-point rounding order).
        """
        queries = list(queries)
        # Bound the (queries, buckets) matrices the histogram batch path
        # materialises; chunks of queries keep peak memory flat.
        buckets = max(
            (s.histogram.num_buckets for s in self._stats if s.histogram is not None),
            default=1,
        )
        chunk = max(1, int(4_000_000 // max(1, buckets)))
        if len(queries) > chunk:
            return np.concatenate(
                [
                    self._estimate_batch(queries[start : start + chunk])
                    for start in range(0, len(queries), chunk)
                ]
            )
        by_col: dict[int, tuple[list[int], list[Predicate]]] = {}
        for qi, query in enumerate(queries):
            for pred in query.predicates:
                idx, preds = by_col.setdefault(pred.column, ([], []))
                idx.append(qi)
                preds.append(pred)
        product = np.ones(len(queries))
        for col, (idx, preds) in by_col.items():
            sels = self._stats[col].selectivity_batch(preds)
            # A query never has two predicates on one column, so the
            # indices within a group are unique and plain fancy-indexed
            # multiplication is safe.
            product[np.asarray(idx)] *= sels
        return product * self.table.num_rows

    def model_size_bytes(self) -> int:
        total = 0
        for st in self._stats:
            if st.histogram is not None:
                total += st.histogram.bounds.nbytes + st.histogram.counts.nbytes
            if st.mcvs is not None:
                total += st.mcvs.values.nbytes * 2
        return total


class PostgresEstimator(_AviDbmsEstimator):
    """PostgreSQL-style estimator at the maximum statistics target."""

    name = "postgres"

    def __init__(self, statistics_target: int = 10_000) -> None:
        # Postgres keeps up to `statistics_target` histogram bounds and up
        # to 100 MCVs at any target above the default.
        super().__init__(num_buckets=statistics_target, mcv_limit=100)


class MySQLEstimator(_AviDbmsEstimator):
    """MySQL-style estimator: equi-height histograms, 1,024 buckets."""

    name = "mysql"

    def __init__(self, num_buckets: int = 1024) -> None:
        super().__init__(num_buckets=num_buckets, mcv_limit=0)


class _JointHistogram2D:
    """Equi-depth grid histogram over a pair of columns (DBMS-A stats)."""

    def __init__(self, x: np.ndarray, y: np.ndarray, grid: int = 32) -> None:
        self.x_hist = EquiDepthHistogram(x, grid)
        self.y_hist = EquiDepthHistogram(y, grid)
        x_bins = np.clip(
            np.searchsorted(self.x_hist.bounds[1:-1], x, side="right"),
            0,
            self.x_hist.num_buckets - 1,
        )
        y_bins = np.clip(
            np.searchsorted(self.y_hist.bounds[1:-1], y, side="right"),
            0,
            self.y_hist.num_buckets - 1,
        )
        flat = x_bins * self.y_hist.num_buckets + y_bins
        counts = np.bincount(flat, minlength=self.x_hist.num_buckets * self.y_hist.num_buckets)
        self.grid_fractions = counts.reshape(
            self.x_hist.num_buckets, self.y_hist.num_buckets
        ) / len(x)

    @staticmethod
    def _weights(hist: EquiDepthHistogram, pred: Predicate | None) -> np.ndarray:
        """Per-bucket coverage weights for a predicate on one dimension."""
        if pred is None:
            return np.ones(hist.num_buckets)
        out = np.zeros(hist.num_buckets)
        if pred.is_equality:
            value = float(pred.lo)  # type: ignore[arg-type]
            for b in range(hist.num_buckets):
                b_lo, b_hi = hist.bounds[b], hist.bounds[b + 1]
                if b_lo <= value <= b_hi:
                    out[b] = 1.0 if b_lo == b_hi else 1.0 / hist.distincts[b]
            return out
        lo_v = hist.bounds[0] if pred.lo is None else pred.lo
        hi_v = hist.bounds[-1] if pred.hi is None else pred.hi
        if hi_v < lo_v:
            return out
        for b in range(hist.num_buckets):
            b_lo, b_hi = hist.bounds[b], hist.bounds[b + 1]
            if b_hi < lo_v or b_lo > hi_v:
                continue
            if b_hi == b_lo:
                out[b] = 1.0
            else:
                out[b] = max(0.0, min(hi_v, b_hi) - max(lo_v, b_lo)) / (b_hi - b_lo)
        return out

    def selectivity(self, x_pred: Predicate | None, y_pred: Predicate | None) -> float:
        wx = self._weights(self.x_hist, x_pred)
        wy = self._weights(self.y_hist, y_pred)
        return float(wx @ self.grid_fractions @ wy)


class DbmsAEstimator(CardinalityEstimator):
    """Commercial-style estimator: multi-column stats + exponential backoff."""

    name = "dbms-a"

    def __init__(self, num_buckets: int = 200, grid: int = 32) -> None:
        super().__init__()
        self.num_buckets = num_buckets
        self.grid = grid
        self._singles: list[ColumnStatistics] = []
        self._pairs: dict[tuple[int, int], _JointHistogram2D] = {}

    def _fit(self, table: Table, workload: Workload | None) -> None:
        self._singles = [
            ColumnStatistics(table.data[:, i], self.num_buckets, mcv_limit=100)
            for i in range(table.num_columns)
        ]
        self._pairs = {}
        for i, j in self._correlated_pairs(table):
            self._pairs[(i, j)] = _JointHistogram2D(
                table.data[:, i], table.data[:, j], self.grid
            )

    @staticmethod
    def _correlated_pairs(table: Table) -> list[tuple[int, int]]:
        """Greedy disjoint pairing of the most rank-correlated columns."""
        n = table.num_columns
        sample = table.data[: min(table.num_rows, 5000)]
        ranks = np.argsort(np.argsort(sample, axis=0), axis=0).astype(np.float64)
        with np.errstate(invalid="ignore"):
            corr = np.abs(np.corrcoef(ranks.T))
        corr = np.nan_to_num(corr, nan=0.0)
        scored = [
            (corr[i, j], i, j) for i in range(n) for j in range(i + 1, n)
        ]
        scored.sort(reverse=True)
        used: set[int] = set()
        pairs = []
        for score, i, j in scored:
            if score < 0.3 or i in used or j in used:
                continue
            pairs.append((i, j))
            used.update((i, j))
        return pairs

    def _estimate(self, query: Query) -> float:
        sels: list[float] = []
        consumed: set[int] = set()
        # Joint statistics first: each pair histogram absorbs the
        # predicates on both of its columns.
        for (i, j), hist in self._pairs.items():
            pi, pj = query.predicate_on(i), query.predicate_on(j)
            if pi is None and pj is None:
                continue
            if (pi is not None and pi.is_empty) or (pj is not None and pj.is_empty):
                return 0.0
            sels.append(hist.selectivity(pi, pj))
            consumed.update(c for c, p in ((i, pi), (j, pj)) if p is not None)
        for pred in query.predicates:
            if pred.column in consumed:
                continue
            if pred.is_empty:
                return 0.0
            sels.append(self._singles[pred.column].selectivity(pred))
        return self._backoff(sels) * self.table.num_rows

    @staticmethod
    def _backoff(selectivities: list[float]) -> float:
        """Exponential backoff: most selective four predicates, damped."""
        if not selectivities:
            return 1.0
        ordered = sorted(selectivities)
        result = 1.0
        for rank, sel in enumerate(ordered[:4]):
            result *= sel ** (0.5**rank)
        return result

    def model_size_bytes(self) -> int:
        total = sum(
            s.histogram.counts.nbytes if s.histogram else 0 for s in self._singles
        )
        total += sum(p.grid_fractions.nbytes for p in self._pairs.values())
        return total
