"""The eight traditional estimators of the paper's Section 4."""

from .bayes import BayesEstimator
from .dbms import DbmsAEstimator, MySQLEstimator, PostgresEstimator
from .histograms import ColumnStatistics, EquiDepthHistogram, McvList
from .kde import KdeFeedbackEstimator
from .mhist import MhistEstimator
from .quicksel import QuickSelEstimator
from .sampling import SamplingEstimator
from .stholes import StHolesEstimator

__all__ = [
    "BayesEstimator",
    "ColumnStatistics",
    "DbmsAEstimator",
    "EquiDepthHistogram",
    "KdeFeedbackEstimator",
    "McvList",
    "MhistEstimator",
    "MySQLEstimator",
    "PostgresEstimator",
    "QuickSelEstimator",
    "SamplingEstimator",
    "StHolesEstimator",
]
