"""QuickSel [Park et al. 2020]: selectivity learning with uniform mixtures.

QuickSel models the data distribution as a mixture of uniform
distributions whose support boxes are placed at observed (training)
query predicates, and fits the mixture weights so that the model's
answers match the observed selectivities.  We solve the weight fit as a
non-negative least-squares problem with a sum-to-one penalty, which is
the quadratic program of the original paper in penalty form.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


class _Box:
    """An axis-aligned box in the normalised [0, 1]^n domain."""

    __slots__ = ("lows", "highs")

    def __init__(self, lows: np.ndarray, highs: np.ndarray) -> None:
        self.lows = lows
        self.highs = highs

    def volume(self) -> float:
        return float(np.prod(np.maximum(self.highs - self.lows, 0.0)))

    def overlap_volume(self, other: "_Box") -> float:
        lo = np.maximum(self.lows, other.lows)
        hi = np.minimum(self.highs, other.highs)
        return float(np.prod(np.maximum(hi - lo, 0.0)))


class QuickSelEstimator(CardinalityEstimator):
    """Query-driven uniform mixture model."""

    name = "quicksel"
    requires_workload = True

    def __init__(self, num_kernels: int = 300, seed: int = 0) -> None:
        super().__init__()
        if num_kernels < 1:
            raise ValueError("need at least one kernel")
        self.num_kernels = num_kernels
        self.seed = seed
        self._kernels: list[_Box] = []
        self._weights: np.ndarray | None = None
        self._mins: np.ndarray | None = None
        self._spans: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _query_box(self, query: Query) -> _Box:
        """Normalised box of a query; equality predicates get width ~one value."""
        assert self._mins is not None and self._spans is not None
        n = len(self._mins)
        lows = np.zeros(n)
        highs = np.ones(n)
        for pred in query.predicates:
            d = pred.column
            span = self._spans[d]
            lo = self._mins[d] if pred.lo is None else pred.lo
            hi = self._mins[d] + span if pred.hi is None else pred.hi
            if pred.is_equality:
                lo, hi = lo - 0.5, hi + 0.5
            lows[d] = np.clip((lo - self._mins[d]) / span, 0.0, 1.0)
            highs[d] = np.clip((hi - self._mins[d]) / span, 0.0, 1.0)
        return _Box(lows, highs)

    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        self._mins = np.array([c.domain_min for c in table.columns])
        spans = np.array([max(c.domain_size, 1.0) for c in table.columns])
        self._spans = spans

        boxes = [self._query_box(q) for q in workload.queries]
        sels = workload.cardinalities / table.num_rows

        rng = np.random.default_rng(self.seed)
        # Kernel 0 is the uniform distribution over the whole domain; the
        # rest sit on a subset of observed query boxes.
        candidates = [b for b in boxes if b.volume() > 0.0]
        take = min(self.num_kernels - 1, len(candidates))
        chosen = (
            list(rng.choice(len(candidates), size=take, replace=False))
            if take
            else []
        )
        full = _Box(np.zeros(table.num_columns), np.ones(table.num_columns))
        self._kernels = [full] + [candidates[i] for i in chosen]

        k = len(self._kernels)
        a = np.empty((len(boxes), k))
        vols = np.array([max(kern.volume(), 1e-12) for kern in self._kernels])
        for i, box in enumerate(boxes):
            a[i] = [box.overlap_volume(kern) for kern in self._kernels] / vols
        # Penalty row enforcing that mixture weights sum to one.
        penalty = 10.0
        a_aug = np.vstack([a, penalty * np.ones((1, k))])
        b_aug = np.concatenate([sels, [penalty]])
        weights, _ = optimize.nnls(a_aug, b_aug, maxiter=10 * k)
        total = weights.sum()
        self._weights = weights / total if total > 0 else np.full(k, 1.0 / k)

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._weights is not None
        box = self._query_box(query)
        vols = np.array([max(kern.volume(), 1e-12) for kern in self._kernels])
        overlaps = np.array([box.overlap_volume(kern) for kern in self._kernels])
        sel = float(self._weights @ (overlaps / vols))
        return sel * self.table.num_rows

    def model_size_bytes(self) -> int:
        if self._weights is None:
            return 0
        per_kernel = 8 * (2 * len(self._mins) + 1)  # type: ignore[arg-type]
        return len(self._kernels) * per_kernel
