"""Chow-Liu tree Bayesian network estimator [Chow & Liu 1968].

The paper's "Bayes" baseline builds a tree-structured probabilistic
graphical model: the maximum spanning tree of pairwise mutual
information, with conditional probability tables on the edges.  Range
queries are answered *exactly* by dynamic programming over the tree
(sum-product message passing with per-column indicator weights), which
is at least as accurate as the progressive-sampling inference of the
implementation the paper adopted.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload
from ..discretize import Discretizer


def mutual_information(
    x: np.ndarray, y: np.ndarray, kx: int, ky: int
) -> float:
    """Mutual information (nats) between two discretised columns."""
    joint = np.bincount(x * ky + y, minlength=kx * ky).astype(np.float64)
    joint = joint.reshape(kx, ky) / len(x)
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    outer = np.outer(px, py)
    mask = joint > 0
    return float(np.sum(joint[mask] * np.log(joint[mask] / outer[mask])))


class BayesEstimator(CardinalityEstimator):
    """Tree-structured Bayesian network with exact range inference."""

    name = "bayes"

    def __init__(self, max_bins: int = 64, smoothing: float = 0.1) -> None:
        super().__init__()
        self.max_bins = max_bins
        self.smoothing = smoothing
        self._disc: Discretizer | None = None
        self._root: int = 0
        self._children: dict[int, list[int]] = {}
        self._root_dist: np.ndarray | None = None
        #: child -> CPT with shape (parent_bins, child_bins)
        self._cpts: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        self._disc = Discretizer(table, self.max_bins)
        binned = self._disc.transform(table.data)
        cards = self._disc.cardinalities
        n = table.num_columns

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                mi = mutual_information(binned[:, i], binned[:, j], cards[i], cards[j])
                graph.add_edge(i, j, weight=mi)
        tree = nx.maximum_spanning_tree(graph) if n > 1 else graph

        self._root = 0
        directed = nx.bfs_tree(tree, self._root) if n > 1 else nx.DiGraph()
        directed.add_node(self._root)
        self._children = {
            v: list(directed.successors(v)) for v in range(n)
        }

        counts = np.bincount(binned[:, self._root], minlength=cards[self._root])
        dist = counts + self.smoothing
        self._root_dist = dist / dist.sum()

        self._cpts = {}
        for parent, child in directed.edges:
            kp, kc = cards[parent], cards[child]
            joint = np.bincount(
                binned[:, parent] * kc + binned[:, child], minlength=kp * kc
            ).reshape(kp, kc).astype(np.float64)
            joint += self.smoothing
            self._cpts[child] = joint / joint.sum(axis=1, keepdims=True)
            # Record parenthood implicitly via _children; CPT rows are
            # indexed by the parent's bin.

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._disc is not None and self._root_dist is not None
        weights = {
            p.column: self._disc.predicate_weights(p) for p in query.predicates
        }
        message = self._message(self._root, weights)
        prob = float(self._root_dist @ message)
        return prob * self.table.num_rows

    def _message(self, node: int, weights: dict[int, np.ndarray]) -> np.ndarray:
        """Per-bin factor at ``node``: indicator weight times the product
        of child messages marginalised through the CPTs."""
        assert self._disc is not None
        k = self._disc.cardinalities[node]
        factor = weights.get(node, np.ones(k)).copy()
        for child in self._children.get(node, []):
            child_msg = self._message(child, weights)
            factor *= self._cpts[child] @ child_msg
        return factor

    def model_size_bytes(self) -> int:
        total = self._root_dist.nbytes if self._root_dist is not None else 0
        total += sum(cpt.nbytes for cpt in self._cpts.values())
        return total
