"""KDE-FB [Heimel et al. 2015]: feedback-tuned kernel density estimator.

A Gaussian product-kernel density over a uniform sample.  The probability
mass of a query box factorises per dimension into differences of normal
CDFs, so a batch of queries is evaluated with one vectorised ``erf``
expression.  "FB" = the bandwidths are tuned on a feedback workload of
labelled queries (the original optimises bandwidths by gradient descent
on observed errors; we use coordinate descent over per-dimension scale
factors, which matches its published behaviour at this scale).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload

_SQRT2 = np.sqrt(2.0)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + special.erf(z / _SQRT2))


class KdeFeedbackEstimator(CardinalityEstimator):
    """Gaussian KDE over a sample with feedback-optimised bandwidths."""

    name = "kde-fb"
    requires_workload = True

    def __init__(
        self,
        sample_fraction: float = 0.015,
        max_sample: int = 2000,
        feedback_queries: int = 1000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.sample_fraction = sample_fraction
        self.max_sample = max_sample
        self.feedback_queries = feedback_queries
        self.seed = seed
        self._points: np.ndarray | None = None
        self._bandwidths: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        rng = np.random.default_rng(self.seed)
        count = min(
            self.max_sample, max(2, int(round(table.num_rows * self.sample_fraction)))
        )
        idx = rng.choice(table.num_rows, size=count, replace=False)
        self._points = table.data[idx]

        # Scott's rule as the starting bandwidth per dimension.
        n, d = self._points.shape
        sigma = self._points.std(axis=0)
        sigma[sigma == 0.0] = 1.0
        self._bandwidths = sigma * n ** (-1.0 / (d + 4))

        self._tune_bandwidths(table, workload)

    def _tune_bandwidths(self, table: Table, workload: Workload) -> None:
        assert self._bandwidths is not None
        take = min(self.feedback_queries, len(workload))
        queries = workload.queries[:take]
        actual = np.maximum(workload.cardinalities[:take], 1.0)
        boxes = np.array([self._box(q) for q in queries])  # (Q, d, 2)

        def loss(bandwidths: np.ndarray) -> float:
            sels = self._batch_box_probability(boxes, bandwidths)
            est = np.maximum(sels * table.num_rows, 1.0)
            return float(np.mean(np.log(np.maximum(est / actual, actual / est)) ** 2))

        factors = np.array([0.25, 0.5, 1.0, 2.0, 4.0])
        # Pass 1: one global scale.  Pass 2: per-dimension refinement.
        base = self._bandwidths
        global_losses = [loss(base * f) for f in factors]
        best = base * factors[int(np.argmin(global_losses))]
        for dim in range(len(best)):
            trial_losses = []
            for f in factors:
                trial = best.copy()
                trial[dim] *= f
                trial_losses.append(loss(trial))
            best[dim] *= factors[int(np.argmin(trial_losses))]
        self._bandwidths = best

    # ------------------------------------------------------------------
    def _box(self, query: Query) -> np.ndarray:
        """(d, 2) array of [lo, hi] per dimension; +-inf for open sides."""
        d = self.table.num_columns
        box = np.empty((d, 2))
        box[:, 0] = -np.inf
        box[:, 1] = np.inf
        for pred in query.predicates:
            lo = -np.inf if pred.lo is None else pred.lo
            hi = np.inf if pred.hi is None else pred.hi
            if pred.is_equality:
                lo, hi = lo - 0.5, hi + 0.5
            box[pred.column] = (lo, hi)
        return box

    def _batch_box_probability(
        self, boxes: np.ndarray, bandwidths: np.ndarray
    ) -> np.ndarray:
        """P(box) for each of Q boxes; boxes shape (Q, d, 2)."""
        assert self._points is not None
        pts = self._points  # (S, d)
        h = np.maximum(bandwidths, 1e-9)
        # (Q, S, d) z-scores for both box faces.
        z_hi = (boxes[:, None, :, 1] - pts[None, :, :]) / h
        z_lo = (boxes[:, None, :, 0] - pts[None, :, :]) / h
        per_dim = _normal_cdf(z_hi) - _normal_cdf(z_lo)
        return np.prod(per_dim, axis=2).mean(axis=1)

    def _estimate(self, query: Query) -> float:
        assert self._bandwidths is not None
        boxes = self._box(query)[None]
        sel = float(self._batch_box_probability(boxes, self._bandwidths)[0])
        return sel * self.table.num_rows

    def model_size_bytes(self) -> int:
        return self._points.nbytes if self._points is not None else 0
