"""STHoles [Bruno et al. 2001]: a workload-aware multi-dim histogram.

The paper's QuickSel baseline is motivated by beating query-driven
histograms "including STHoles and ISOMER"; this module provides the
STHoles side of that comparison so the claim can be reproduced.

STHoles maintains a tree of nested buckets.  Each training query
*drills holes*: for every bucket the query box intersects, the
intersection becomes a candidate child bucket whose tuple count is
inferred from the query's true cardinality under a uniformity
assumption, and the parent's count shrinks accordingly.  When the
bucket budget is exceeded, the lowest-frequency leaf is merged back
into its parent.  Estimation sums, over all buckets, the bucket's
*exclusive* frequency times the fractional overlap of the query box
with the bucket's exclusive region.
"""

from __future__ import annotations

import numpy as np

from ...core.estimator import CardinalityEstimator
from ...core.query import Query
from ...core.table import Table
from ...core.workload import Workload


class _Bucket:
    """A box with child holes; ``frequency`` counts tuples in the box
    that are in none of the children."""

    __slots__ = ("lows", "highs", "frequency", "children", "parent")

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        frequency: float,
        parent: "_Bucket | None" = None,
    ) -> None:
        self.lows = lows
        self.highs = highs
        self.frequency = max(0.0, frequency)
        self.children: list[_Bucket] = []
        self.parent = parent

    # -- geometry ------------------------------------------------------
    def volume(self) -> float:
        return float(np.prod(np.maximum(self.highs - self.lows, 1e-12)))

    def intersect(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        lo = np.maximum(self.lows, lows)
        hi = np.minimum(self.highs, highs)
        if np.any(hi <= lo):
            return None
        return lo, hi

    def contains_box(self, lows: np.ndarray, highs: np.ndarray) -> bool:
        return bool(np.all(self.lows <= lows) and np.all(self.highs >= highs))

    def exclusive_volume(self) -> float:
        vol = self.volume() - sum(c.volume() for c in self.children)
        return max(vol, 1e-12)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class StHolesEstimator(CardinalityEstimator):
    """STHoles query-driven histogram (simplified merge policy)."""

    name = "stholes"
    requires_workload = True

    def __init__(self, max_buckets: int = 400) -> None:
        super().__init__()
        if max_buckets < 1:
            raise ValueError("need at least one bucket")
        self.max_buckets = max_buckets
        self._root: _Bucket | None = None
        self._mins: np.ndarray | None = None
        self._maxs: np.ndarray | None = None
        self._num_buckets = 1

    # ------------------------------------------------------------------
    def _query_box(self, query: Query) -> tuple[np.ndarray, np.ndarray]:
        assert self._mins is not None and self._maxs is not None
        lows = self._mins.copy()
        highs = self._maxs.copy()
        for pred in query.predicates:
            d = pred.column
            # Bounds at or beyond the true domain keep the half-tuple
            # margin, so a full-domain predicate covers the whole root.
            if pred.lo is not None and pred.lo > self._mins[d] + 0.5:
                lows[d] = max(lows[d], pred.lo)
            if pred.hi is not None and pred.hi < self._maxs[d] - 0.5:
                highs[d] = min(highs[d], pred.hi)
            if pred.is_equality:
                lows[d], highs[d] = pred.lo - 0.5, pred.hi + 0.5  # type: ignore[operator]
            if pred.is_empty:
                lows[d], highs[d] = self._maxs[d], self._mins[d]
        span = self._maxs - self._mins
        return (lows - self._mins) / span, (highs - self._mins) / span

    def _fit(self, table: Table, workload: Workload | None) -> None:
        assert workload is not None
        self._mins = np.array([c.domain_min for c in table.columns]) - 0.5
        self._maxs = np.array([c.domain_max for c in table.columns]) + 0.5
        # Buckets live in normalised [0, 1]^n coordinates for numeric
        # stability across wildly different column scales.
        self._root = _Bucket(
            np.zeros(table.num_columns),
            np.ones(table.num_columns),
            float(table.num_rows),
        )
        self._num_buckets = 1
        for query, actual in zip(workload.queries, workload.cardinalities):
            self._refine(query, float(actual))

    # ------------------------------------------------------------------
    # Refinement: drill holes, then merge back to budget
    # ------------------------------------------------------------------
    def _refine(self, query: Query, actual: float) -> None:
        assert self._root is not None
        lows, highs = self._query_box(query)
        q_volume = float(np.prod(np.maximum(highs - lows, 1e-12)))
        for bucket in list(self._root.walk()):
            clipped = bucket.intersect(lows, highs)
            if clipped is None:
                continue
            c_lo, c_hi = clipped
            if np.allclose(c_lo, bucket.lows) and np.allclose(c_hi, bucket.highs):
                # The hole would be the whole bucket; drilling it would
                # strand the bucket's leftover mass on a zero-volume
                # region, so leave the bucket as is.
                continue
            # Real STHoles shrinks candidates until they are disjoint
            # from existing holes; we skip overlapping candidates, which
            # keeps children disjoint (exclusive volumes stay valid).
            if any(child.intersect(c_lo, c_hi) is not None
                   for child in bucket.children):
                continue
            hole_volume = float(np.prod(np.maximum(c_hi - c_lo, 1e-12)))
            # Uniformity inside the query box: tuples in the hole.
            hole_count = actual * hole_volume / q_volume
            hole_count = min(hole_count, bucket.frequency)
            if hole_count <= 0.0:
                continue
            hole = _Bucket(c_lo, c_hi, hole_count, parent=bucket)
            bucket.children.append(hole)
            bucket.frequency -= hole_count
            self._num_buckets += 1
        self._shrink_to_budget()

    def _shrink_to_budget(self) -> None:
        assert self._root is not None
        while self._num_buckets > self.max_buckets:
            leaves = [
                b for b in self._root.walk()
                if not b.children and b.parent is not None
            ]
            if not leaves:
                return
            victim = min(leaves, key=lambda b: b.frequency)
            parent = victim.parent
            assert parent is not None
            parent.children.remove(victim)
            parent.frequency += victim.frequency
            self._num_buckets -= 1

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        assert self._root is not None
        lows, highs = self._query_box(query)
        if np.any(highs <= lows):
            return 0.0
        total = 0.0
        for bucket in self._root.walk():
            clipped = bucket.intersect(lows, highs)
            if clipped is None:
                continue
            c_lo, c_hi = clipped
            overlap = float(np.prod(np.maximum(c_hi - c_lo, 1e-12)))
            # Subtract the parts of the overlap that fall into children
            # (they are accounted by the children themselves).
            for child in bucket.children:
                sub = child.intersect(c_lo, c_hi)
                if sub is not None:
                    overlap -= float(
                        np.prod(np.maximum(sub[1] - sub[0], 1e-12))
                    )
            if overlap <= 0.0:
                continue
            total += bucket.frequency * overlap / bucket.exclusive_volume()
        return total

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    def model_size_bytes(self) -> int:
        if self._mins is None:
            return 0
        return self._num_buckets * 8 * (2 * len(self._mins) + 1)
