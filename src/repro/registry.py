"""Estimator registry: name -> configured instance.

Centralises the hyper-parameters each method uses at a given
:class:`~repro.scale.Scale`, so every benchmark and example constructs
estimators the same way (the paper's "models of Table 4").
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from difflib import get_close_matches

from .core.estimator import CardinalityEstimator
from .estimators.learned import (
    DeepDbEstimator,
    DqmDEstimator,
    DqmQEstimator,
    LwNnEstimator,
    LwXgbEstimator,
    MscnEstimator,
    NaruEstimator,
)
from .estimators.traditional import (
    BayesEstimator,
    DbmsAEstimator,
    KdeFeedbackEstimator,
    MhistEstimator,
    MySQLEstimator,
    PostgresEstimator,
    QuickSelEstimator,
    SamplingEstimator,
    StHolesEstimator,
)
from .core.table import Table
from .core.workload import Workload
from .guard import EstimateGuard, QuarantineMonitor
from .lifecycle import DriftDetector, ModelLifecycleManager
from .scale import Scale
from .serve import EstimatorService, HeuristicConstantEstimator

#: Paper ordering of the traditional methods (Table 4, upper half).
TRADITIONAL_NAMES = [
    "postgres",
    "mysql",
    "dbms-a",
    "sampling",
    "mhist",
    "quicksel",
    "bayes",
    "kde-fb",
]

#: Paper ordering of the learned methods (Table 4, lower half).
LEARNED_NAMES = ["mscn", "lw-xgb", "lw-nn", "naru", "deepdb"]

#: The three production systems (Figure 4's baseline group).
DBMS_NAMES = ["postgres", "mysql", "dbms-a"]

#: Methods beyond the paper's 13-way benchmark: the two DQM variants
#: its taxonomy surveys (Table 1) and the STHoles baseline QuickSel's
#: paper compares against.  Available via :func:`make_estimator` but not
#: part of Table 4.
EXTRA_NAMES = [
    "dqm-d",
    "dqm-q",
    "stholes",
    "naru-transformer",
    # Fast-path int8 variants (repro.fastpath): post-training-quantized
    # right after fit, packed weights, inference-only.
    "naru-int8",
    "mscn-int8",
    "lw-nn-int8",
]

#: Default serving fallback chain appended after a primary estimator:
#: cheap, data-driven, and ending in a tier that cannot fail.
DEFAULT_FALLBACK_NAMES = ["sampling", "postgres", "heuristic"]


def _factories(scale: Scale) -> dict[str, Callable[[], CardinalityEstimator]]:
    return {
        "postgres": lambda: PostgresEstimator(),
        "mysql": lambda: MySQLEstimator(),
        "dbms-a": lambda: DbmsAEstimator(),
        "sampling": lambda: SamplingEstimator(),
        "mhist": lambda: MhistEstimator(),
        "quicksel": lambda: QuickSelEstimator(
            num_kernels=min(300, max(50, scale.train_queries // 4))
        ),
        "bayes": lambda: BayesEstimator(),
        "kde-fb": lambda: KdeFeedbackEstimator(
            feedback_queries=min(1000, scale.train_queries)
        ),
        "mscn": lambda: MscnEstimator(
            epochs=scale.nn_epochs, update_epochs=max(2, scale.nn_epochs // 4)
        ),
        "lw-xgb": lambda: LwXgbEstimator(),
        "lw-nn": lambda: LwNnEstimator(
            epochs=scale.nn_epochs, update_epochs=max(2, scale.nn_epochs // 4)
        ),
        "naru": lambda: NaruEstimator(
            epochs=scale.naru_epochs, num_samples=scale.naru_samples
        ),
        "deepdb": lambda: DeepDbEstimator(),
        # Extras beyond the paper's benchmark (see EXTRA_NAMES).
        "dqm-d": lambda: DqmDEstimator(
            epochs=scale.naru_epochs, num_samples=scale.naru_samples
        ),
        "dqm-q": lambda: DqmQEstimator(epochs=scale.nn_epochs),
        "stholes": lambda: StHolesEstimator(),
        "naru-transformer": lambda: NaruEstimator(
            hidden_units=32,
            hidden_layers=2,
            epochs=scale.naru_epochs,
            num_samples=scale.naru_samples,
            block="transformer",
        ),
        "naru-int8": lambda: NaruEstimator(
            epochs=scale.naru_epochs,
            num_samples=scale.naru_samples,
            quantize="int8",
        ),
        "mscn-int8": lambda: MscnEstimator(
            epochs=scale.nn_epochs,
            update_epochs=max(2, scale.nn_epochs // 4),
            quantize="int8",
        ),
        "lw-nn-int8": lambda: LwNnEstimator(
            epochs=scale.nn_epochs,
            update_epochs=max(2, scale.nn_epochs // 4),
            quantize="int8",
        ),
        # Serving-layer last resort (see repro.serve): magic-constant
        # selectivities, cannot fail.
        "heuristic": lambda: HeuristicConstantEstimator(),
    }


def make_estimator(name: str, scale: Scale | None = None) -> CardinalityEstimator:
    """Construct the estimator called ``name`` at the given scale."""
    scale = scale or Scale.default()
    factories = _factories(scale)
    try:
        return factories[name]()
    except KeyError:
        close = get_close_matches(name, factories, n=3, cutoff=0.5)
        hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
        raise KeyError(
            f"unknown estimator {name!r}{hint}; choose from {sorted(factories)}"
        ) from None


def estimator_names() -> list[str]:
    """All thirteen estimator names, traditional first (Table 4 order)."""
    return TRADITIONAL_NAMES + LEARNED_NAMES


def make_traditional(scale: Scale | None = None) -> list[CardinalityEstimator]:
    return [make_estimator(n, scale) for n in TRADITIONAL_NAMES]


def make_learned(scale: Scale | None = None) -> list[CardinalityEstimator]:
    return [make_estimator(n, scale) for n in LEARNED_NAMES]


def make_fallback_chain(
    primary: str | CardinalityEstimator,
    fallbacks: Sequence[str] | None = None,
    scale: Scale | None = None,
) -> list[CardinalityEstimator]:
    """The tier list for a serving chain: ``primary`` then ``fallbacks``.

    ``primary`` may be an estimator name or an already-constructed (even
    already-fitted, even fault-wrapped) instance; fallbacks default to
    :data:`DEFAULT_FALLBACK_NAMES`.
    """
    if isinstance(primary, str):
        primary = make_estimator(primary, scale)
    names = DEFAULT_FALLBACK_NAMES if fallbacks is None else list(fallbacks)
    return [primary] + [make_estimator(n, scale) for n in names]


def make_service(
    primary: str | CardinalityEstimator,
    fallbacks: Sequence[str] | None = None,
    scale: Scale | None = None,
    **service_kwargs,
) -> EstimatorService:
    """A fault-tolerant :class:`EstimatorService` around ``primary``.

    Keyword arguments (``deadline_ms``, ``breaker``, ``clock``, and the
    observability sinks ``registry`` / ``collector`` / ``events``) are
    forwarded to the service; passing a shared
    :class:`~repro.obs.MetricsRegistry` or
    :class:`~repro.obs.SpanCollector` lets several services report into
    one telemetry view, while the default (``None``) uses the
    process-wide instances from :mod:`repro.obs`.  The fallback tiers
    are constructed fresh, so call ``fit`` once on the returned service
    to fit the whole chain (a pre-fitted ``primary`` instance is refit
    along with it).
    """
    return EstimatorService(
        make_fallback_chain(primary, fallbacks, scale), **service_kwargs
    )


def make_guarded_service(
    primary: str | CardinalityEstimator,
    fallbacks: Sequence[str] | None = None,
    scale: Scale | None = None,
    *,
    table: Table | None = None,
    workload: Workload | None = None,
    probe_workload: Workload | None = None,
    guard_kwargs: dict | None = None,
    quarantine_kwargs: dict | None = None,
    **service_kwargs,
) -> EstimatorService:
    """A :func:`make_service` chain with the full guard tier installed.

    Builds an :class:`~repro.guard.EstimateGuard` (provable bounds +
    OOD detection; tune via ``guard_kwargs``) into the service.  When
    ``table`` is given the chain — and the guard — is fitted here
    (pass ``workload`` for query-driven primaries).  When
    ``probe_workload`` is given a
    :class:`~repro.guard.QuarantineMonitor` is attached too (tune via
    ``quarantine_kwargs``), so sustained q-error breaches demote the
    learned primary and its probe queries gate re-admission; reach it
    at ``service.guard.monitor``.
    """
    guard = EstimateGuard(**(guard_kwargs or {}))
    service = EstimatorService(
        make_fallback_chain(primary, fallbacks, scale),
        guard=guard,
        **service_kwargs,
    )
    if table is not None:
        service.fit(table, workload)
    if probe_workload is not None:
        guard.monitor = QuarantineMonitor(
            service, list(probe_workload.queries), **(quarantine_kwargs or {})
        )
    return service


def make_shard_service(
    primary: str | CardinalityEstimator,
    table: Table,
    fallbacks: Sequence[str] | None = None,
    scale: Scale | None = None,
    workload: Workload | None = None,
    **router_kwargs,
) -> "ShardRouter":
    """A fitted :class:`~repro.shard.ShardRouter` around ``primary``.

    ``primary`` may be an estimator name (resolved with the same typo
    hints as :func:`make_estimator`) or an already-fitted instance.
    Fallback tiers default to :data:`DEFAULT_FALLBACK_NAMES`; they and
    an unfitted primary are fitted on ``table`` here, so the returned
    router is ready to ``start()``.  Keyword arguments (``num_shards``,
    ``workers_per_shard``, ``admission``, ``policy``, ``mode``,
    ``worker_estimator``, timeouts, telemetry sinks, ...) are forwarded
    to the router.
    """
    from .shard import ShardRouter  # late: repro.shard imports this module's deps

    if isinstance(primary, str):
        primary = make_estimator(primary, scale)
    names = DEFAULT_FALLBACK_NAMES if fallbacks is None else list(fallbacks)
    tiers = [make_estimator(n, scale) for n in names]
    for estimator in [primary, *tiers]:
        try:
            estimator.table
        except RuntimeError:
            estimator.fit(
                table, workload if estimator.requires_workload else None
            )
    return ShardRouter(primary, tiers, **router_kwargs)


def make_lifecycle_manager(
    primary: str,
    table: Table,
    train_workload: Workload,
    probe_workload: Workload,
    checkpoint_dir,
    fallbacks: Sequence[str] | None = None,
    scale: Scale | None = None,
    service_kwargs: dict | None = None,
    **manager_kwargs,
) -> ModelLifecycleManager:
    """A :class:`~repro.lifecycle.ModelLifecycleManager` wired end to end.

    Builds and fits a :func:`make_service` chain around ``primary`` on
    ``table``, installs a :class:`~repro.lifecycle.DriftDetector` over
    ``probe_workload`` (baselined against the fitted incumbent), and
    makes fresh registry-configured instances of ``primary`` the
    candidate factory for retrains.  Remaining keyword arguments
    (``policy``, ``checkpoint_every``, ``attempt_deadline_seconds``,
    telemetry sinks, ...) are forwarded to the manager.
    """
    scale = scale or Scale.default()
    service = make_service(primary, fallbacks, scale, **(service_kwargs or {}))
    service.fit(table, train_workload)
    return ModelLifecycleManager(
        service,
        lambda: make_estimator(primary, scale),
        DriftDetector(probe_workload),
        checkpoint_dir=checkpoint_dir,
        **manager_kwargs,
    )


#: The factory entry points, for the misspelling hints below.
FACTORY_NAMES = [
    "make_estimator",
    "make_traditional",
    "make_learned",
    "make_fallback_chain",
    "make_service",
    "make_guarded_service",
    "make_shard_service",
    "make_lifecycle_manager",
]


def __getattr__(name: str):
    """Typo hints for factory names, mirroring :func:`make_estimator`.

    ``from repro.registry import make_gaurded_service`` should fail the
    same way ``make_estimator("nauru")`` does: with the close matches
    spelled out, not a bare AttributeError.
    """
    close = get_close_matches(name, FACTORY_NAMES, n=3, cutoff=0.5)
    hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}{hint}")
