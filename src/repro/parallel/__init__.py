"""Parallel execution engine: deterministic process-pool fan-out.

See :mod:`repro.parallel.executor` for the design (seed derivation,
fault containment, fork safety) and DESIGN.md §10 for how the tuning
and benchmark layers use it.
"""

from .executor import (
    ParallelError,
    ParallelExecutor,
    TaskFailure,
    TaskHandle,
    derive_rng,
    derive_seed,
    detect_worker_count,
    worker_seconds,
)

__all__ = [
    "ParallelError",
    "ParallelExecutor",
    "TaskFailure",
    "TaskHandle",
    "derive_rng",
    "derive_seed",
    "detect_worker_count",
    "worker_seconds",
]
