"""Seeded, deterministic process-pool execution.

The paper's cost analysis (Section 6.2, Figure 4) makes training — not
inference — the dominant cost of learned estimators, and the benchmark
harness multiplies that cost: every tuning trial and every
(dataset, method) cell of the static tables trains its own model.  Those
tasks are embarrassingly parallel, so :class:`ParallelExecutor` fans
them across worker *processes* (numpy releases no GIL for us to share;
separate address spaces are the only real concurrency a pure-python
substrate gets).

Design goals, in order:

1. **Determinism.**  Parallel results must be *bit-identical* to serial
   ones.  Every task receives its own :class:`numpy.random.Generator`
   derived from ``(base_seed, task_index)`` via
   :class:`numpy.random.SeedSequence` spawn keys — never a shared
   stream, never time- or pid-dependent state — and results are reduced
   in task order regardless of completion order.  A retried task gets
   the *same* derived seed, so a transient crash cannot change the
   answer.
2. **Fault containment.**  Each task runs in its own forked process; a
   task that raises, a worker killed mid-task, or a task that blows its
   per-task timeout is retried once and then surfaced as a structured
   :class:`TaskFailure` — never a hang, and never a poisoned pool (the
   stdlib ``ProcessPoolExecutor`` marks the whole pool broken when one
   worker dies, which is exactly wrong for a benchmark sweep).
3. **Honest telemetry.**  The parent records ``parallel.tasks`` and
   ``parallel.worker_seconds`` into :mod:`repro.obs` (child-side
   registries die with the fork), so artifacts can report measured
   speedup and parallel efficiency.

Why ``fork`` (and why it is safe here): tasks receive their function
and arguments through fork-inherited memory, so nothing on the *input*
side needs to pickle — closures over tables, workloads and builder
lambdas all work; only results cross a pipe.  Numpy state is safe to
fork because the library holds no global locks between calls and every
worker gets its own derived ``Generator``; the one caveat is a
multi-threaded BLAS pool, whose worker threads would not survive the
fork — run with ``OPENBLAS_NUM_THREADS=1`` (or equivalent) when fanning
out, which is also what you want to avoid oversubscription.  On
platforms without ``fork`` the executor degrades to the serial path,
which produces identical results.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import traceback
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..obs.clock import monotonic, perf_counter
from ..obs import emit, get_registry
from ..obs.metrics import PARALLEL_TASKS, PARALLEL_WORKER_SECONDS, PARALLEL_WORKERS

#: A task takes (item, rng) and returns a picklable result.
Task = Callable[[object, np.random.Generator], object]


def detect_worker_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-linux
        return max(1, os.cpu_count() or 1)


def derive_seed(base_seed: int, index: int) -> np.random.SeedSequence:
    """The per-task seed: ``SeedSequence(base_seed).spawn_key=(index,)``.

    Deterministic in ``(base_seed, index)`` alone — independent of
    worker identity, scheduling order, retries, and pool size — which is
    what makes parallel runs bit-identical to serial ones.
    """
    return np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))


def derive_rng(base_seed: int, index: int) -> np.random.Generator:
    """A fresh generator on the per-task seed (see :func:`derive_seed`)."""
    return np.random.default_rng(derive_seed(base_seed, index))


@dataclass(frozen=True)
class TaskFailure:
    """A task that failed all its attempts, as data (never an exception
    escaping a worker): which task, what happened, and how often."""

    index: int
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False
    worker_died: bool = False

    def __str__(self) -> str:
        cause = (
            "timed out" if self.timed_out
            else "worker died" if self.worker_died
            else f"{self.error_type}: {self.message}"
        )
        return f"task {self.index} failed after {self.attempts} attempts ({cause})"


class ParallelError(RuntimeError):
    """Raised by ``on_error='raise'`` when a task exhausts its retries."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(str(failure))
        self.failure = failure


def _child_main(fn: Task, item: object, seed: np.random.SeedSequence, conn) -> None:
    """Worker body: run one task, ship (status, payload, seconds) back."""
    start = perf_counter()
    try:
        result = fn(item, np.random.default_rng(seed))
        conn.send(("ok", result, perf_counter() - start))
    except BaseException as exc:  # noqa: BLE001 — everything becomes data
        payload = (type(exc).__name__, str(exc), traceback.format_exc())
        try:
            conn.send(("error", payload, perf_counter() - start))
        except Exception:  # lint-ok: parent observes the dead pipe
            pass  # parent will observe the dead pipe as a worker death
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    attempt: int
    process: multiprocessing.process.BaseProcess
    deadline: float | None


class TaskHandle:
    """Future-like handle returned by :meth:`ParallelExecutor.submit`."""

    def __init__(self, executor: "ParallelExecutor", fn: Task, item: object, index: int) -> None:
        self._executor = executor
        self._fn = fn
        self._item = item
        self._index = index
        self._done = False
        self._result: object = None

    def result(self) -> object:
        """Block until the task finishes; raise on structured failure."""
        if not self._done:
            self._result = self._executor.map_tasks(
                self._fn, [self._item], first_index=self._index
            )[0]
            self._done = True
        if isinstance(self._result, TaskFailure):
            raise ParallelError(self._result)
        return self._result


class ParallelExecutor:
    """Deterministic fan-out of tasks over forked worker processes.

    Args:
        max_workers: concurrent worker processes; ``None`` auto-detects
            the CPUs available to this process.
        base_seed: root of the per-task seed derivation.
        task_timeout: per-task wall-clock budget in seconds; an
            over-budget worker is killed (and the task retried once).
        retries: extra attempts after a raise/crash/timeout (default 1:
            "retry once, then surface").
        mode: ``"fork"``, ``"serial"``, or ``"auto"`` (fork when the
            platform supports it and ``max_workers > 1``).  The serial
            mode runs tasks in-process with the same seed derivation and
            ordering, so its results are bit-identical to fork mode.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        base_seed: int = 0,
        task_timeout: float | None = None,
        retries: int = 1,
        mode: str = "auto",
    ) -> None:
        if mode not in ("auto", "fork", "serial"):
            raise ValueError(f"unknown mode {mode!r}; use auto, fork, or serial")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if task_timeout is not None and task_timeout <= 0.0:
            raise ValueError("task_timeout must be positive")
        self.max_workers = max_workers if max_workers is not None else detect_worker_count()
        self.base_seed = base_seed
        self.task_timeout = task_timeout
        self.retries = retries
        fork_available = "fork" in multiprocessing.get_all_start_methods()
        if mode == "fork" and not fork_available:
            raise RuntimeError("fork start method unavailable on this platform")
        if mode == "auto":
            mode = "fork" if fork_available and self.max_workers > 1 else "serial"
        self.mode = mode

    # ------------------------------------------------------------------
    def submit(self, fn: Task, item: object, index: int = 0) -> TaskHandle:
        """One-task variant of :meth:`map_tasks`; ``index`` picks the
        derived seed so independent submissions stay deterministic."""
        return TaskHandle(self, fn, item, index)

    def map_tasks(
        self,
        fn: Task,
        items: Sequence[object],
        on_error: str = "raise",
        reduce: Callable[[list], object] | None = None,
        first_index: int = 0,
    ) -> list | object:
        """Run ``fn(item, rng)`` for every item; results in input order.

        ``on_error='raise'`` raises :class:`ParallelError` on the first
        exhausted task (remaining workers are killed);
        ``on_error='return'`` leaves a :class:`TaskFailure` in that
        task's result slot instead.  ``reduce``, when given, is applied
        to the ordered result list and its value returned — the
        reduction always sees results in task order, independent of
        completion order.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"unknown on_error {on_error!r}; use raise or return")
        items = list(items)
        registry = get_registry()
        registry.gauge(PARALLEL_WORKERS, "Configured parallel worker count").set(
            self.max_workers, mode=self.mode
        )
        if not items:
            return reduce([]) if reduce is not None else []
        # Fork mode forks even for a single task: crash/timeout
        # containment is part of the contract, not an optimisation.
        if self.mode == "serial":
            results = self._run_serial(fn, items, on_error, first_index)
        else:
            results = self._run_forked(fn, items, on_error, first_index)
        return reduce(results) if reduce is not None else results

    # ------------------------------------------------------------------
    # Serial path (also the semantics reference for the forked one)
    # ------------------------------------------------------------------
    def _run_serial(
        self, fn: Task, items: list, on_error: str, first_index: int
    ) -> list:
        results: list = []
        for offset, item in enumerate(items):
            index = first_index + offset
            outcome: object = None
            for attempt in range(1, self.retries + 2):
                start = perf_counter()
                try:
                    outcome = fn(item, derive_rng(self.base_seed, index))
                    self._record(True, perf_counter() - start)
                    break
                except Exception as exc:  # in-process: only raises are catchable
                    self._record(False, perf_counter() - start)
                    outcome = TaskFailure(
                        index=index,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt,
                    )
                    self._emit_retry(outcome, will_retry=attempt <= self.retries)
            if isinstance(outcome, TaskFailure) and on_error == "raise":
                raise ParallelError(outcome)
            results.append(outcome)
        return results

    # ------------------------------------------------------------------
    # Forked path
    # ------------------------------------------------------------------
    def _launch(self, ctx, fn: Task, items: list, index: int, attempt: int, first_index: int):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(fn, items[index - first_index], derive_seed(self.base_seed, index), child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        deadline = (
            monotonic() + self.task_timeout if self.task_timeout is not None else None
        )
        return parent_conn, _Running(index, attempt, process, deadline)

    def _run_forked(
        self, fn: Task, items: list, on_error: str, first_index: int
    ) -> list:
        ctx = multiprocessing.get_context("fork")
        pending: deque[tuple[int, int]] = deque(
            (first_index + i, 1) for i in range(len(items))
        )
        running: dict[object, _Running] = {}
        slots: dict[int, object] = {}
        failure_to_raise: TaskFailure | None = None

        def settle(index: int, attempt: int, failure: TaskFailure) -> None:
            nonlocal failure_to_raise
            if attempt <= self.retries:
                self._emit_retry(failure, will_retry=True)
                pending.append((index, attempt + 1))
            else:
                self._emit_retry(failure, will_retry=False)
                slots[index] = failure
                if on_error == "raise" and failure_to_raise is None:
                    failure_to_raise = failure

        try:
            while pending or running:
                while pending and len(running) < self.max_workers and failure_to_raise is None:
                    index, attempt = pending.popleft()
                    conn, state = self._launch(ctx, fn, items, index, attempt, first_index)
                    running[conn] = state
                if not running:
                    break
                now = monotonic()
                deadlines = [s.deadline for s in running.values() if s.deadline is not None]
                wait_for = min((d - now for d in deadlines), default=None)
                ready = multiprocessing.connection.wait(
                    list(running), timeout=max(wait_for, 0.0) if wait_for is not None else None
                )
                for conn in ready:
                    state = running.pop(conn)
                    try:
                        status, payload, seconds = conn.recv()
                    except (EOFError, OSError):  # died before sending
                        state.process.join()
                        self._record(False, 0.0)
                        settle(
                            state.index,
                            state.attempt,
                            TaskFailure(
                                index=state.index,
                                error_type="WorkerDied",
                                message=f"exitcode {state.process.exitcode}",
                                attempts=state.attempt,
                                worker_died=True,
                            ),
                        )
                    else:
                        state.process.join()
                        self._record(status == "ok", seconds)
                        if status == "ok":
                            slots[state.index] = payload
                        else:
                            error_type, message, _tb = payload
                            settle(
                                state.index,
                                state.attempt,
                                TaskFailure(
                                    index=state.index,
                                    error_type=error_type,
                                    message=message,
                                    attempts=state.attempt,
                                ),
                            )
                    finally:
                        conn.close()
                now = monotonic()
                for conn in [
                    c for c, s in running.items()
                    if s.deadline is not None and now >= s.deadline
                ]:
                    state = running.pop(conn)
                    state.process.kill()
                    state.process.join()
                    conn.close()
                    self._record(False, self.task_timeout or 0.0)
                    settle(
                        state.index,
                        state.attempt,
                        TaskFailure(
                            index=state.index,
                            error_type="Timeout",
                            message=f"exceeded {self.task_timeout:.3g}s",
                            attempts=state.attempt,
                            timed_out=True,
                        ),
                    )
                if failure_to_raise is not None and not running:
                    break
        finally:
            for conn, state in running.items():
                state.process.kill()
                state.process.join()
                conn.close()
        if failure_to_raise is not None:
            raise ParallelError(failure_to_raise)
        return [slots[first_index + i] for i in range(len(items))]

    # ------------------------------------------------------------------
    # Telemetry (recorded in the parent; child registries die with it)
    # ------------------------------------------------------------------
    def _record(self, ok: bool, seconds: float) -> None:
        registry = get_registry()
        registry.counter(
            PARALLEL_TASKS, "Parallel task attempts by status"
        ).inc(status="ok" if ok else "failed", mode=self.mode)
        registry.counter(
            PARALLEL_WORKER_SECONDS,
            "Cumulative wall-clock seconds spent inside parallel tasks",
        ).inc(seconds, mode=self.mode)

    def _emit_retry(self, failure: TaskFailure, will_retry: bool) -> None:
        emit(
            "parallel.retry" if will_retry else "parallel.task_failed",
            index=failure.index,
            attempts=failure.attempts,
            error_type=failure.error_type,
            timed_out=failure.timed_out,
            worker_died=failure.worker_died,
        )
        if will_retry:
            get_registry().counter(
                PARALLEL_TASKS, "Parallel task attempts by status"
            ).inc(status="retried", mode=self.mode)


def worker_seconds(mode: str | None = None) -> float:
    """Cumulative ``parallel.worker_seconds`` recorded so far (sum over
    modes unless one is named) — the numerator of parallel efficiency."""
    metric = get_registry().get(PARALLEL_WORKER_SECONDS)
    if metric is None:
        return 0.0
    if mode is not None:
        return metric.value(mode=mode)  # type: ignore[attr-defined]
    snapshot = metric.snapshot()
    return float(sum(series["value"] for series in snapshot["series"]))
