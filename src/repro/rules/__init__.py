"""Logical-rule checks (paper Section 6.3 / Table 6)."""

from .checks import (
    RuleReport,
    check_all,
    check_consistency,
    check_fidelity_a,
    check_fidelity_b,
    check_monotonicity,
    check_stability,
)
from .enforce import (
    LogicalGuard,
    clamp_to_bounds,
    covers_all_columns,
    is_sane,
    trivial_answer,
)

__all__ = [
    "LogicalGuard",
    "clamp_to_bounds",
    "covers_all_columns",
    "is_sane",
    "trivial_answer",
    "RuleReport",
    "check_all",
    "check_consistency",
    "check_fidelity_a",
    "check_fidelity_b",
    "check_monotonicity",
    "check_stability",
]
