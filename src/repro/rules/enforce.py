"""Rule enforcement wrappers (paper Section 7.2, "Make Learned
Estimators Trustworthy").

The paper proposes enforcing logical rules as constraints around
black-box models.  :class:`LogicalGuard` wraps any estimator and fixes
the cheaply-enforceable rules at inference time:

* **Fidelity-B** — a contradictory predicate answers 0 without invoking
  the model.
* **Fidelity-A** — a query covering every column's full domain answers
  the table size exactly.
* **Bounds** — estimates are clamped to ``[0, num_rows]``.
* **Stability** — per-query memoisation: repeated estimates of the same
  query return the first answer (fixes stochastic inference a la Naru).
* **Monotonicity (partial)** — the memo is consulted for *containing*
  queries seen earlier: an estimate is capped by the cached estimate of
  any query whose box contains this one, and floored by any contained
  one.

Monotonicity across unseen query pairs and consistency cannot be
enforced by a stateless wrapper (the paper's point that constraints
must move into model design), so violations of those remain possible.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..core.table import Table
from ..core.workload import Workload


def clamp_to_bounds(value: float, num_rows: int) -> float:
    """The Bounds rule: an estimate lives in ``[0, num_rows]``."""
    return max(0.0, min(float(value), float(num_rows)))


def is_sane(value: float, num_rows: int) -> bool:
    """True when ``value`` is finite and already within bounds."""
    return math.isfinite(value) and 0.0 <= value <= num_rows


def trivial_answer(query: Query, table: Table) -> float | None:
    """The rule-implied answer that needs no model, or ``None``.

    Fidelity-B: a contradictory predicate matches nothing.  Fidelity-A:
    a query covering every column's full domain matches the whole table.
    Both :class:`LogicalGuard` and the serving layer short-circuit on
    these before invoking any estimator.
    """
    if any(p.is_empty for p in query.predicates):
        return 0.0
    if covers_all_columns(query, table):
        return float(table.num_rows)
    return None


def covers_all_columns(query: Query, table: Table) -> bool:
    """True when every column's full domain is covered (Fidelity-A)."""
    if query.num_predicates < table.num_columns:
        return False
    for pred in query.predicates:
        column = table.columns[pred.column]
        lo_open = pred.lo is None or pred.lo <= column.domain_min
        hi_open = pred.hi is None or pred.hi >= column.domain_max
        if not (lo_open and hi_open):
            return False
    return True


def _query_key(query: Query) -> tuple:
    return tuple((p.column, p.lo, p.hi) for p in query.predicates)


def _contains(outer: Query, inner: Query) -> bool:
    """True when ``outer``'s box contains ``inner``'s box.

    Every predicate of the outer query must exist (same column) in the
    inner query and contain its interval; columns unconstrained in the
    outer query are unbounded and contain anything.
    """
    for pred in outer.predicates:
        inner_pred = inner.predicate_on(pred.column)
        if inner_pred is None or not pred.contains(inner_pred):
            return False
    return True


class LogicalGuard(CardinalityEstimator):
    """Wraps an estimator and enforces the cheap logical rules."""

    requires_workload = False  # set from the inner estimator in __init__

    def __init__(self, inner: CardinalityEstimator, memo_size: int = 4096) -> None:
        super().__init__()
        if memo_size < 0:
            raise ValueError("memo_size must be non-negative")
        self.inner = inner
        self.name = f"guarded-{inner.name}"
        self.requires_workload = inner.requires_workload
        self.memo_size = memo_size
        self._memo: OrderedDict[tuple, tuple[Query, float]] = OrderedDict()

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        self._memo.clear()
        self.inner.fit(table, workload)

    def _update(self, table, appended, workload) -> None:
        self._memo.clear()
        self.inner.update(table, appended, workload)

    # ------------------------------------------------------------------
    def _estimate(self, query: Query) -> float:
        # Fidelity-B / Fidelity-A: rule-implied answers skip the model.
        trivial = trivial_answer(query, self.table)
        if trivial is not None:
            return trivial
        # Stability: repeat queries return the memoised answer.
        key = _query_key(query)
        if key in self._memo:
            self._memo.move_to_end(key)
            return self._memo[key][1]

        estimate = clamp_to_bounds(self.inner.estimate(query), self.table.num_rows)
        estimate = self._monotone_clamp(query, estimate)
        self._remember(key, query, estimate)
        return estimate

    def _monotone_clamp(self, query: Query, estimate: float) -> float:
        """Cap by cached containing queries, floor by contained ones."""
        for cached_query, cached_estimate in self._memo.values():
            if _contains(cached_query, query):
                estimate = min(estimate, cached_estimate)
            elif _contains(query, cached_query):
                estimate = max(estimate, cached_estimate)
        return estimate

    def _remember(self, key: tuple, query: Query, estimate: float) -> None:
        if self.memo_size == 0:
            return
        self._memo[key] = (query, estimate)
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    def model_size_bytes(self) -> int:
        return self.inner.model_size_bytes()
