"""Logical-rule checks for cardinality estimators (paper Section 6.3).

Five simple rules a user would expect any estimator to satisfy:

1. **Monotonicity** — tightening a predicate must not increase the
   estimate.
2. **Consistency** — splitting a range predicate into two disjoint
   halves must preserve the sum of the estimates.
3. **Stability** — the same query must always get the same estimate.
4. **Fidelity-A** — a query covering the entire domain must estimate
   (approximately) the full table.
5. **Fidelity-B** — a contradictory predicate (``100 <= A <= 10``) must
   estimate zero.

The checks probe the *native* model output (no wrapper fix-ups), exactly
as the paper does, and report violation rates; Table 6 marks a rule
violated when any probe fails beyond numeric tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Predicate, Query
from ..core.table import Table
from ..core.workload import WorkloadGenerator

#: Relative slack for comparisons between estimates.
_REL_TOL = 1e-6
#: Absolute slack, in tuples.
_ABS_TOL = 1e-3


@dataclass(frozen=True)
class RuleReport:
    """Outcome of one rule against one estimator."""

    rule: str
    checks: int
    violations: int

    @property
    def violation_rate(self) -> float:
        return self.violations / self.checks if self.checks else 0.0

    @property
    def satisfied(self) -> bool:
        return self.violations == 0

    def __str__(self) -> str:
        mark = "/" if self.satisfied else "x"
        return f"{self.rule}: {mark} ({self.violations}/{self.checks} violations)"


def _range_query(
    table: Table, rng: np.random.Generator, min_width_fraction: float = 0.2
) -> tuple[Query, Predicate] | None:
    """A random query containing a usable closed-range numeric predicate."""
    generator = WorkloadGenerator(table)
    for _ in range(200):
        query = generator.generate_query(rng)
        for pred in query.predicates:
            col = table.columns[pred.column]
            if col.is_categorical or pred.lo is None or pred.hi is None:
                continue
            if pred.hi - pred.lo >= min_width_fraction * max(col.domain_size, 1.0):
                return query, pred
    return None


def check_monotonicity(
    estimator: CardinalityEstimator,
    table: Table,
    rng: np.random.Generator,
    num_checks: int = 50,
) -> RuleReport:
    """Shrinking a range predicate must not increase the estimate."""
    checks = violations = 0
    for _ in range(num_checks):
        found = _range_query(table, rng)
        if found is None:
            continue
        query, pred = found
        width = pred.hi - pred.lo  # type: ignore[operator]
        tighter = Predicate(pred.column, pred.lo + 0.25 * width, pred.hi - 0.25 * width)  # type: ignore[operator]
        wide = estimator.estimate(query)
        narrow = estimator.estimate(query.replace(pred.column, tighter))
        checks += 1
        if narrow > wide * (1.0 + _REL_TOL) + _ABS_TOL:
            violations += 1
    return RuleReport("monotonicity", checks, violations)


def check_consistency(
    estimator: CardinalityEstimator,
    table: Table,
    rng: np.random.Generator,
    num_checks: int = 50,
) -> RuleReport:
    """est(q) must equal est(left half) + est(right half)."""
    checks = violations = 0
    for _ in range(num_checks):
        found = _range_query(table, rng)
        if found is None:
            continue
        query, pred = found
        mid = (pred.lo + pred.hi) / 2.0  # type: ignore[operator]
        left = Predicate(pred.column, pred.lo, mid)
        right = Predicate(pred.column, float(np.nextafter(mid, np.inf)), pred.hi)
        whole = estimator.estimate(query)
        parts = estimator.estimate(
            query.replace(pred.column, left)
        ) + estimator.estimate(query.replace(pred.column, right))
        checks += 1
        # Allow 1% relative slack at the split point (histogram-backed
        # models lose one sliver of a boundary bucket); anything larger
        # is a genuine consistency violation.
        tolerance = max(_ABS_TOL, 0.01 * max(whole, parts, 1.0))
        if abs(whole - parts) > tolerance:
            violations += 1
    return RuleReport("consistency", checks, violations)


def check_stability(
    estimator: CardinalityEstimator,
    table: Table,
    rng: np.random.Generator,
    num_checks: int = 10,
    repeats: int = 5,
) -> RuleReport:
    """Repeated estimates of the same query must be identical."""
    generator = WorkloadGenerator(table)
    checks = violations = 0
    for _ in range(num_checks):
        query = generator.generate_query(rng)
        estimates = [estimator.estimate(query) for _ in range(repeats)]
        checks += 1
        spread = max(estimates) - min(estimates)
        if spread > _REL_TOL * max(estimates) + _ABS_TOL:
            violations += 1
    return RuleReport("stability", checks, violations)


def check_fidelity_a(
    estimator: CardinalityEstimator, table: Table
) -> RuleReport:
    """Querying the whole domain must estimate the full table size."""
    preds = tuple(
        Predicate(i, col.domain_min, col.domain_max)
        for i, col in enumerate(table.columns)
    )
    estimate = estimator.estimate(Query(preds))
    ok = abs(estimate - table.num_rows) <= 0.01 * table.num_rows
    return RuleReport("fidelity-a", 1, 0 if ok else 1)


def check_fidelity_b(
    estimator: CardinalityEstimator, table: Table, rng: np.random.Generator
) -> RuleReport:
    """An invalid predicate (lo > hi) must estimate zero."""
    checks = violations = 0
    for i, col in enumerate(table.columns):
        if col.is_categorical or col.domain_size == 0.0:
            continue
        span = col.domain_size
        lo = col.domain_min + 0.6 * span
        hi = col.domain_min + 0.4 * span
        estimate = estimator.estimate(Query((Predicate(i, lo, hi),)))
        checks += 1
        if estimate > 1.0:  # anything above one tuple is a real answer
            violations += 1
    if checks == 0:
        # All-categorical table: probe with an impossible equality pair
        # encoded as a reversed range on the first column.
        estimate = estimator.estimate(
            Query((Predicate(0, table.columns[0].domain_max + 1.0,
                             table.columns[0].domain_min - 1.0),))
        )
        checks, violations = 1, int(estimate > 1.0)
    return RuleReport("fidelity-b", checks, violations)


def check_all(
    estimator: CardinalityEstimator,
    table: Table,
    rng: np.random.Generator,
    num_checks: int = 50,
) -> dict[str, RuleReport]:
    """Run every rule; the estimator must already be fit on ``table``."""
    return {
        "monotonicity": check_monotonicity(estimator, table, rng, num_checks),
        "consistency": check_consistency(estimator, table, rng, num_checks),
        "stability": check_stability(estimator, table, rng),
        "fidelity-a": check_fidelity_a(estimator, table),
        "fidelity-b": check_fidelity_b(estimator, table, rng),
    }
