"""Supervised fork-based worker pools: heartbeats, restarts, re-dispatch.

Each shard of :class:`~repro.shard.router.ShardRouter` owns a
:class:`WorkerSupervisor` over ``num_workers`` **forked** worker
processes.  Workers inherit the fitted model through fork memory —
zero per-worker load cost, the same trick :mod:`repro.parallel` uses —
and answer query batches over a duplex pipe.  The supervisor is the
robustness boundary:

* **Crash containment.**  A worker that dies mid-batch (OOM kill,
  segfault, :class:`~repro.faults.WorkerCrashFault`) is observed as a
  dead pipe; the in-flight batch is *re-dispatched to a sibling worker*
  and the dead worker is scheduled for restart.  No query is dropped.
* **Hang containment.**  A worker that stops answering within
  ``request_timeout_seconds`` (or misses a heartbeat probe) is killed
  and treated exactly like a crash — a hang is just a crash that wastes
  your deadline first.
* **Bounded restarts.**  Restarts cost forks, and a worker that dies on
  every request would otherwise crash-loop forever.  Each worker has a
  restart budget (:class:`~repro.lifecycle.retrain.RetryPolicy` — the
  same bounded-attempts/exponential-backoff/seeded-jitter policy the
  retraining supervisor uses) and waits out its backoff before the next
  fork.  A worker whose budget is spent is **exhausted**; when every
  worker is exhausted the shard falls back to in-process serving and
  availability still never drops.
* **Graceful drain.**  Shutdown sends every live worker a stop message,
  waits briefly for acknowledgement, then joins — so a rolling model
  swap never kills a worker mid-answer.

``mode="inline"`` runs the pool in-process (no forks) with identical
dispatch semantics — the determinism reference for the bit-identity
check, and the automatic degradation on platforms without ``fork``.

**Transports.**  ``transport="shm"`` (the default under ``fork``) is
the zero-copy data plane: query batches are encoded by
:mod:`repro.shard.codec` into a :class:`~repro.shard.shm.ShmRing`
slot, the pipe carries only a fixed-size ``("serve_slot", id, slot,
nbytes)`` control frame, and the worker overwrites the slot with the
result frame.  Model swaps ride the same plane: the supervisor's
:meth:`~WorkerSupervisor.swap_model` publishes the candidate to a
:class:`~repro.shard.shm.ModelArena` generation and sends each live
worker a tiny ``("swap", generation, segment)`` frame — workers attach
read-only tensor views, so a rolling swap never re-pickles a model and
never reforks a live worker.  ``transport="pipe"`` keeps the original
pickled-object path (also the per-request fallback when a batch
overflows its ring slot), which lets the chaos matrix assert
bit-identical answers across transports.

**Telemetry** (on by default): each worker installs a
:class:`~repro.obs.transport.TelemetryCapture` after the fork and
piggybacks a :class:`~repro.obs.transport.TelemetrySnapshot` delta on
every serve reply; the parent folds replies through a
:class:`~repro.obs.transport.TelemetryMerger` (deduped on
``(worker_pid, seq)``), so worker-side counters, spans and events
survive the pipe boundary.  The request envelope carries the caller's
``(trace_id, parent_span_id)`` so worker spans re-parent under the
dispatching ``serve.batch`` span.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..lifecycle.retrain import RetryPolicy
from ..obs import (
    SHARD_WORKER_RESTARTS,
    SHARD_WORKERS,
    WORKER_QUERIES,
    EventLog,
    MetricsRegistry,
    TelemetryMerger,
    get_events,
    get_registry,
    install_worker_capture,
    set_trace_context,
)
from ..obs.clock import monotonic, perf_counter
from .codec import (
    CodecError,
    pack_queries,
    pack_results,
    unpack_queries,
    unpack_results,
)
from .shm import ArenaError, ArenaGeneration, ModelArena, ShmRing

#: Default byte size of one ring slot; batches that encode larger fall
#: back to the pipe path for that request (counted, never dropped).
DEFAULT_SLOT_BYTES = 1 << 20

#: Worker lifecycle states (the gauge's ``state`` label).
LIVE = "live"
RESTARTING = "restarting"
EXHAUSTED = "exhausted"
STOPPED = "stopped"


def _worker_main(
    estimator: CardinalityEstimator,
    conn,
    shard: str = "",
    worker_name: str = "",
    telemetry: bool = False,
    ring: ShmRing | None = None,
) -> None:
    """Worker body: answer serve/ping/swap messages until told to stop.

    Estimator exceptions are shipped back as data (the worker survives
    them); a crash fault calls ``os._exit`` underneath us and the parent
    observes the dead pipe.

    Under ``transport="shm"`` batches arrive as ``serve_slot`` control
    frames naming a slot of the fork-inherited ``ring``; the worker
    decodes the query frame in place, overwrites the slot with its
    result frame, and acks with another fixed-size control frame.
    ``swap`` frames point the worker at a new
    :class:`~repro.shard.shm.ModelArena` generation: it attaches
    read-only tensor views and drops its previous attachment — the
    model itself never crosses the pipe.

    With ``telemetry`` on, the worker resets its fork-copied telemetry
    singletons, installs a delta capture, and attaches a snapshot to
    every serve reply (and to the stop acknowledgement).  Because the
    capture resets on every take, a reply the parent never accepts loses
    its delta — at-most-once, never double-counted.
    """
    capture = None
    registry = get_registry()
    attachment = None
    if telemetry:
        capture = install_worker_capture(shard=shard, worker=worker_name)

    def answer(request_id: int, queries, trace_ctx, slot: int | None) -> None:
        if trace_ctx is not None:
            set_trace_context(*trace_ctx)
        try:
            values = np.asarray(
                estimator.estimate_many(queries), dtype=np.float64
            )
            if values.shape != (len(queries),):
                raise ValueError(
                    f"worker returned shape {values.shape} "
                    f"for {len(queries)} queries"
                )
            if telemetry:
                registry.counter(
                    WORKER_QUERIES,
                    "Queries answered by worker processes",
                ).inc(len(queries), worker=worker_name)
            snap = capture.take() if capture is not None else None
            if slot is not None:
                nbytes = pack_results(
                    values, np.zeros(len(queries), dtype=np.uint8), ring.slot_view(slot)
                )
                conn.send(("result_slot", request_id, slot, nbytes, snap))
            else:
                conn.send(("result", request_id, values, snap))
        except Exception as exc:  # lint-ok: error shipped to parent
            snap = capture.take() if capture is not None else None
            conn.send(
                ("error", request_id, f"{type(exc).__name__}: {exc}", snap)
            )

    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "serve":
                _, request_id, queries, trace_ctx = message
                answer(request_id, queries, trace_ctx, None)
            elif op == "serve_slot":
                _, request_id, slot, nbytes = message
                try:
                    queries, trace_ctx, _tenants = unpack_queries(
                        ring.slot_view(slot)[:nbytes]
                    )
                except (CodecError, ValueError) as exc:
                    conn.send(
                        (
                            "error",
                            request_id,
                            f"{type(exc).__name__}: {exc}",
                            capture.take() if capture is not None else None,
                        )
                    )
                    continue
                answer(request_id, queries, trace_ctx, slot)
            elif op == "swap":
                _, generation, segment_name = message
                try:
                    fresh = ModelArena.attach(segment_name)
                except ArenaError as exc:
                    conn.send(("swap_failed", generation, str(exc)))
                    continue
                estimator = fresh.model
                if attachment is not None:
                    attachment.close()
                attachment = fresh
                conn.send(("swapped", generation))
            elif op == "ping":
                conn.send(("pong", message[1]))
            elif op == "stop":
                snap = capture.take() if capture is not None else None
                conn.send(("stopped", snap))
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return  # parent went away or is shutting down; nothing to clean


@dataclass
class _Worker:
    """Parent-side handle of one worker slot."""

    name: str
    index: int
    state: str = RESTARTING
    process: multiprocessing.process.BaseProcess | None = None
    conn: object = None
    #: restarts consumed from the budget (the initial fork is free)
    restarts: int = 0
    #: clock() timestamp of the last successful response
    last_heartbeat: float = 0.0
    #: clock() time before which the next restart must not happen
    restart_at: float = 0.0
    #: ring slot currently in flight to this worker (shm transport); the
    #: parent reclaims it on reply — or in ``_fail`` after the kill, so
    #: a dead worker can never leak (or scribble) a recycled slot
    slot: int | None = None


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one batch to the pool."""

    #: answers, or None when no worker could serve the batch
    values: np.ndarray | None
    #: name of the worker that answered; None for a failed dispatch
    worker: str | None
    #: workers tried (>1 means the batch was re-dispatched to a sibling)
    attempts: int
    seconds: float


class WorkerSupervisor:
    """Own, monitor, restart and drain one shard's worker processes."""

    def __init__(
        self,
        shard: str,
        estimator: CardinalityEstimator,
        num_workers: int = 1,
        *,
        policy: RetryPolicy | None = None,
        request_timeout_seconds: float = 5.0,
        heartbeat_timeout_seconds: float = 1.0,
        mode: str = "auto",
        transport: str = "auto",
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        arena: ModelArena | None = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
        telemetry: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if mode not in ("auto", "fork", "inline"):
            raise ValueError(f"unknown mode {mode!r}; use auto, fork, or inline")
        if transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"unknown transport {transport!r}; use auto, shm, or pipe"
            )
        if request_timeout_seconds <= 0.0 or heartbeat_timeout_seconds <= 0.0:
            raise ValueError("timeouts must be positive")
        fork_available = "fork" in multiprocessing.get_all_start_methods()
        if mode == "fork" and not fork_available:
            raise RuntimeError("fork start method unavailable on this platform")
        if mode == "auto":
            mode = "fork" if fork_available else "inline"
        if transport == "auto":
            transport = "shm"
        if mode != "fork":
            transport = "pipe"  # inline dispatch never crosses a process
        self.shard = shard
        self.estimator = estimator
        self.mode = mode
        self.transport = transport
        self.slot_bytes = slot_bytes
        self._ring: ShmRing | None = None
        self._arena = arena
        self._arena_owned = False
        self._generation: ArenaGeneration | None = None
        #: data-plane counters: how batches actually travelled, plus the
        #: slots reclaimed from killed workers (satellite of the chaos
        #: matrix's no-leak invariant)
        self.transport_stats = {
            "shm_batches": 0,
            "pipe_batches": 0,
            "shm_overflows": 0,
            "slots_reclaimed": 0,
        }
        self.policy = policy or RetryPolicy(
            max_attempts=3, backoff_base_seconds=0.05, backoff_cap_seconds=2.0
        )
        self.request_timeout_seconds = request_timeout_seconds
        self.heartbeat_timeout_seconds = heartbeat_timeout_seconds
        self._rng = np.random.default_rng(seed)
        self._clock = clock
        self._events = events
        self._registry = registry
        self.telemetry = telemetry
        #: parent-side fold of worker snapshots (exposed for tests; the
        #: span destination resolves per-merge from the active collector)
        self.merger = TelemetryMerger(registry=registry, events=events)
        self._workers = [
            _Worker(name=f"{shard}/w{i}", index=i) for i in range(num_workers)
        ]
        self._next = 0  # round-robin pointer
        self._request_id = 0
        self.started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork the initial pool (call after the model is fitted)."""
        if self.transport == "shm" and self._ring is None:
            # the ring must exist before the first fork so every worker
            # inherits the mapping
            self._ring = ShmRing(len(self._workers) + 2, self.slot_bytes)
        for worker in self._workers:
            self._fork(worker)
        self.started = True
        self._update_gauge()

    def _fork(self, worker: _Worker) -> None:
        now = self._clock()
        if self.mode == "inline":
            worker.state = LIVE
            worker.last_heartbeat = now
            return
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(
                self.estimator,
                child_conn,
                self.shard,
                worker.name,
                self.telemetry,
                self._ring,
            ),
            name=worker.name,
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end: child death == EOF
        worker.process = process
        worker.conn = parent_conn
        worker.state = LIVE
        worker.last_heartbeat = now
        self._obs_events().emit(
            "shard.worker_start",
            shard=self.shard,
            worker=worker.name,
            restarts=worker.restarts,
        )

    def drain(self, timeout_seconds: float = 1.0) -> None:
        """Graceful shutdown: stop, wait for acknowledgement, join."""
        for worker in self._workers:
            if worker.state != LIVE or self.mode == "inline":
                if worker.state == LIVE:
                    worker.state = STOPPED
                continue
            try:
                worker.conn.send(("stop",))
                deadline = monotonic() + timeout_seconds
                while monotonic() < deadline:
                    if not worker.conn.poll(deadline - monotonic()):
                        break
                    message = worker.conn.recv()
                    if message[0] == "stopped":
                        # the stop acknowledgement carries the worker's
                        # final telemetry delta
                        if len(message) > 1 and message[1] is not None:
                            self.merger.merge(message[1])
                        break
            except (BrokenPipeError, EOFError, OSError):
                pass  # already dead; join below reaps it
            worker.process.join(timeout_seconds)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()
            worker.state = STOPPED
        self.started = False
        if self._ring is not None:
            self._ring.close(unlink=True)
            self._ring = None
        if self._generation is not None and self._arena is not None:
            self._arena.release(self._generation)
            self._generation = None
        if self._arena_owned and self._arena is not None:
            self._arena.close()
        self._obs_events().emit("shard.drain", shard=self.shard)
        self._update_gauge()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self,
        queries: Sequence[Query],
        trace_ctx: tuple[int, int] | None = None,
    ) -> DispatchResult:
        """Send one batch to a live worker; re-dispatch on crash/hang.

        Tries each currently-live worker at most once (round-robin from
        the last dispatch point).  Returns ``values=None`` when no
        worker could answer — the caller degrades to in-process serving,
        so a dispatch failure is never an unanswered query.

        ``trace_ctx`` is the dispatching span's ``(trace_id, span_id)``;
        the worker adopts it so its spans re-parent under the caller's
        ``serve.batch`` span in the merged trace.
        """
        start = perf_counter()
        self.restart_due()
        queries = list(queries)
        attempts = 0
        tried: set[int] = set()
        while True:
            worker = self._pick(tried)
            if worker is None:
                return DispatchResult(
                    values=None,
                    worker=None,
                    attempts=attempts,
                    seconds=perf_counter() - start,
                )
            tried.add(worker.index)
            attempts += 1
            values = self._call(worker, queries, trace_ctx)
            if values is not None:
                if attempts > 1:
                    self._obs_events().emit(
                        "shard.redispatch",
                        shard=self.shard,
                        worker=worker.name,
                        batch=len(queries),
                        attempts=attempts,
                    )
                return DispatchResult(
                    values=values,
                    worker=worker.name,
                    attempts=attempts,
                    seconds=perf_counter() - start,
                )

    def _pick(self, tried: set[int]) -> _Worker | None:
        n = len(self._workers)
        for offset in range(n):
            worker = self._workers[(self._next + offset) % n]
            if worker.state == LIVE and worker.index not in tried:
                self._next = (worker.index + 1) % n
                return worker
        return None

    def _call(
        self,
        worker: _Worker,
        queries: list[Query],
        trace_ctx: tuple[int, int] | None = None,
    ) -> np.ndarray | None:
        if self.mode == "inline":
            try:
                values = np.asarray(
                    self.estimator.estimate_many(queries), dtype=np.float64
                )
                if values.shape != (len(queries),):
                    raise ValueError(f"bad result shape {values.shape}")
            except Exception as exc:
                self._fail(worker, "error", detail=f"{type(exc).__name__}: {exc}")
                return None
            worker.last_heartbeat = self._clock()
            if self.telemetry:
                # inline workers share the parent's registry; write the
                # per-worker counter directly with the labels the merge
                # path would have added
                self._obs_registry().counter(
                    WORKER_QUERIES, "Queries answered by worker processes"
                ).inc(
                    len(queries),
                    worker=worker.name,
                    shard=self.shard,
                    worker_pid=os.getpid(),
                )
            return values

        self._request_id += 1
        request_id = self._request_id

        slot = None
        if self.transport == "shm" and self._ring is not None:
            slot = self._ring.acquire()
            if slot is not None:
                try:
                    nbytes = pack_queries(
                        queries, self._ring.slot_view(slot), trace_ctx=trace_ctx
                    )
                except CodecError:
                    # batch too large for a slot (or unencodable ids):
                    # this request rides the pickle path instead
                    self._ring.release(slot)
                    slot = None
                    self.transport_stats["shm_overflows"] += 1
        try:
            if slot is not None:
                worker.slot = slot
                worker.conn.send(("serve_slot", request_id, slot, nbytes))
                self.transport_stats["shm_batches"] += 1
            else:
                worker.conn.send(("serve", request_id, queries, trace_ctx))
                self.transport_stats["pipe_batches"] += 1
        except (BrokenPipeError, EOFError, OSError):
            self._fail(worker, "crash", detail="pipe closed on send")
            return None
        deadline = monotonic() + self.request_timeout_seconds
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0.0:
                self._fail(worker, "hang", detail="request timeout")
                return None
            try:
                if not worker.conn.poll(remaining):
                    continue  # loop re-checks the deadline
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._fail(worker, "crash", detail="pipe closed mid-request")
                return None
            kind = message[0]
            if kind == "result" and message[1] == request_id:
                worker.last_heartbeat = self._clock()
                self._merge_snapshot(message)
                return message[2]
            if kind == "result_slot" and message[1] == request_id:
                worker.last_heartbeat = self._clock()
                self._merge_snapshot(message, index=4)
                values, _codes = unpack_results(
                    self._ring.slot_view(slot)[: message[3]]
                )
                worker.slot = None
                self._ring.release(slot)
                return values
            if kind == "error" and message[1] == request_id:
                # The worker survived; its estimator raised.  The worker
                # stays live (the model is broken, not the process) and
                # the caller degrades this batch.
                if slot is not None:
                    worker.slot = None
                    self._ring.release(slot)
                worker.last_heartbeat = self._clock()
                self._merge_snapshot(message, index=3)
                self._obs_events().emit(
                    "shard.worker_error",
                    shard=self.shard,
                    worker=worker.name,
                    error=message[2],
                )
                return None
            # Stale response from a request we already abandoned: skip it
            # *without* merging its snapshot — the request was already
            # failed over, so accepting late telemetry would let a
            # retried batch count twice.

    def _merge_snapshot(self, message: tuple, index: int = 3) -> None:
        if len(message) > index and message[index] is not None:
            self.merger.merge(message[index])

    # ------------------------------------------------------------------
    # Zero-copy model swap
    # ------------------------------------------------------------------
    def swap_model(
        self, candidate: CardinalityEstimator, *, generation: ArenaGeneration | None = None
    ) -> bool:
        """Point live workers at ``candidate`` without reforking them.

        Publishes the candidate to the arena (unless the caller — the
        shard router — already did, publishing once for all shards) and
        sends each live worker a control-frame ``swap``.  Workers attach
        read-only tensor views; the model itself never crosses a pipe.
        A worker that cannot swap is failed and its restart refork
        inherits the candidate from parent memory.

        Returns ``False`` when this pool cannot live-swap (inline mode,
        pipe transport, or not started) — the caller falls back to the
        drain-and-refork path.
        """
        if not self.started or self.mode != "fork" or self.transport != "shm":
            return False
        if generation is not None and self._arena is None:
            raise ValueError(
                "a pre-published generation needs the publishing arena "
                "wired into this supervisor"
            )
        if self._arena is None:
            self._arena = ModelArena()
            self._arena_owned = True
        if generation is None:
            generation = self._arena.publish(candidate)
        self._arena.acquire(generation)
        # Reforks from here on inherit the candidate through fork memory.
        self.estimator = candidate
        swapped = 0
        for worker in self._workers:
            if worker.state == LIVE and self._swap_worker(worker, generation):
                swapped += 1
        previous = self._generation
        self._generation = generation
        if previous is not None:
            self._arena.release(previous)
        self._obs_events().emit(
            "shard.arena_swap",
            shard=self.shard,
            generation=generation.generation,
            workers=swapped,
        )
        return True

    def _swap_worker(self, worker: _Worker, generation: ArenaGeneration) -> bool:
        try:
            worker.conn.send(("swap", generation.generation, generation.name))
        except (BrokenPipeError, EOFError, OSError):
            self._fail(worker, "crash", detail="pipe closed on swap")
            return False
        deadline = monotonic() + self.request_timeout_seconds
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0.0:
                self._fail(worker, "hang", detail="swap timeout")
                return False
            try:
                if not worker.conn.poll(remaining):
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._fail(worker, "crash", detail="pipe closed mid-swap")
                return False
            if message[0] == "swapped" and message[1] == generation.generation:
                worker.last_heartbeat = self._clock()
                return True
            if message[0] == "swap_failed" and message[1] == generation.generation:
                self._fail(
                    worker, "error", detail=f"arena attach failed: {message[2]}"
                )
                return False
            # Stale frame from an abandoned request: skip it.

    # ------------------------------------------------------------------
    # Supervision: heartbeats, restarts, budget
    # ------------------------------------------------------------------
    def check_health(self) -> None:
        """Heartbeat probe: ping idle workers, reap the unresponsive."""
        if self.mode == "inline":
            return
        for worker in list(self._workers):
            if worker.state != LIVE:
                continue
            if worker.process is not None and not worker.process.is_alive():
                self._fail(worker, "crash", detail="found dead by heartbeat")
                continue
            self._request_id += 1
            ping_id = self._request_id
            try:
                worker.conn.send(("ping", ping_id))
                deadline = monotonic() + self.heartbeat_timeout_seconds
                while True:
                    remaining = deadline - monotonic()
                    if remaining <= 0.0:
                        self._fail(worker, "hang", detail="missed heartbeat")
                        break
                    if not worker.conn.poll(remaining):
                        continue
                    message = worker.conn.recv()
                    if message[0] == "pong" and message[1] == ping_id:
                        worker.last_heartbeat = self._clock()
                        break
                    # Stale message from an abandoned request: keep reading.
            except (BrokenPipeError, EOFError, OSError):
                self._fail(worker, "crash", detail="pipe closed on heartbeat")
        self.restart_due()

    def restart_due(self) -> int:
        """Refork every worker whose backoff window has passed."""
        restarted = 0
        now = self._clock()
        for worker in self._workers:
            if worker.state == RESTARTING and self.started and now >= worker.restart_at:
                self._fork(worker)
                restarted += 1
                self._obs_events().emit(
                    "shard.worker_restart",
                    shard=self.shard,
                    worker=worker.name,
                    restarts=worker.restarts,
                )
        if restarted:
            self._update_gauge()
        return restarted

    def _fail(self, worker: _Worker, reason: str, detail: str = "") -> None:
        """Kill/reap a misbehaving worker and schedule (or deny) a restart."""
        if self.mode != "inline" and worker.process is not None:
            worker.process.kill()
            worker.process.join()
            worker.conn.close()
            worker.process = None
            worker.conn = None
        if worker.slot is not None:
            # The worker is dead (killed and reaped above), so it can
            # never scribble this slot again — recycle it instead of
            # leaking ring capacity on every crash.
            if self._ring is not None:
                self._ring.release(worker.slot)
                self.transport_stats["slots_reclaimed"] += 1
            worker.slot = None
        self._obs_events().emit(
            f"shard.worker_{reason}",
            shard=self.shard,
            worker=worker.name,
            detail=detail,
        )
        self._obs_registry().counter(
            SHARD_WORKER_RESTARTS, "Worker deaths by cause"
        ).inc(shard=self.shard, reason=reason)
        if worker.restarts >= self.policy.max_attempts:
            worker.state = EXHAUSTED
            self._obs_events().emit(
                "shard.worker_exhausted",
                shard=self.shard,
                worker=worker.name,
                restarts=worker.restarts,
            )
        else:
            backoff = self.policy.backoff_seconds(worker.restarts, self._rng)
            worker.restarts += 1
            worker.state = RESTARTING
            worker.restart_at = self._clock() + backoff
        self._update_gauge()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return sum(1 for w in self._workers if w.state == LIVE)

    @property
    def ring_free_count(self) -> int | None:
        """Free ring slots (``None`` when the pipe transport is active)."""
        return None if self._ring is None else self._ring.free_count

    @property
    def generation(self) -> ArenaGeneration | None:
        """The arena generation the pool is attached to (None = fork)."""
        return self._generation

    @property
    def arena(self) -> ModelArena | None:
        return self._arena

    @property
    def exhausted(self) -> bool:
        """True when every worker has spent its restart budget."""
        return all(w.state == EXHAUSTED for w in self._workers)

    @property
    def total_restarts(self) -> int:
        """Restarts consumed across all workers (budget spent so far)."""
        return sum(w.restarts for w in self._workers)

    def worker_states(self) -> dict[str, str]:
        return {w.name: w.state for w in self._workers}

    def _update_gauge(self) -> None:
        gauge = self._obs_registry().gauge(
            SHARD_WORKERS, "Worker slots by lifecycle state"
        )
        for state in (LIVE, RESTARTING, EXHAUSTED, STOPPED):
            gauge.set(
                sum(1 for w in self._workers if w.state == state),
                shard=self.shard,
                state=state,
            )

    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()
