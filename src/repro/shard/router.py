"""Sharded serving: consistent-hash routing over supervised worker pools.

The top of the :mod:`repro.shard` stack.  A :class:`ShardRouter` splits
million-query traffic across ``num_shards`` independent shards; each
:class:`Shard` owns

* a :class:`~repro.shard.supervisor.WorkerSupervisor` over forked
  workers that inherit the fitted model (the fast path),
* an :class:`~repro.shard.admission.AdmissionController` deciding who
  gets a worker slot and who sheds to the heuristic tier,
* an in-process :class:`~repro.serve.EstimatorService` fallback chain
  (the clean parent copy of the model, then the heuristics) that
  answers whenever the worker path cannot — corrupt worker results,
  dispatch failure, or a fully exhausted restart budget.

Every request admitted to the router gets an answer — worker, fallback,
or shed-to-heuristic — which is what the chaos matrix's availability
== 1.0 gate measures.

Rolling model swaps (:meth:`ShardRouter.rolling_swap`) are driven by
the :mod:`repro.lifecycle` promotion machinery: the candidate must pass
the :class:`~repro.lifecycle.gate.PromotionGate`, shards are swapped
one at a time, and a candidate that fails its post-swap probe is rolled
back shard-by-shard to the incumbent.  With the shared-memory transport
a swap is zero-copy: the router publishes the candidate **once** into
its :class:`~repro.shard.shm.ModelArena` and every shard's workers
attach read-only tensor views off that one segment — no drain, no
refork, and the model is never re-pickled to a live worker (the
``swap_stats["model_pickles"]`` counter asserts this).  Pools that
cannot live-swap (inline mode, pipe transport) fall back to the
original drain → ``replace_primary`` → refork path.

The router can also share one
:class:`~repro.fastpath.semantic.SemanticEstimateCache` across all its
shards: each shard probes a generation-namespaced slice of the shared
cache *before* worker dispatch, so a semantic hit skips the IPC round
trip entirely (counted under ``repro_fastpath_semantic_total{shard}``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..fastpath.semantic import SemanticEstimateCache
from ..lifecycle.gate import GateReport, PromotionGate
from ..lifecycle.retrain import RetryPolicy
from ..obs import (
    FASTPATH_SEMANTIC,
    GUARD_CLAMPED,
    SHARD_REQUESTS,
    SHARD_SWAPS,
    EventLog,
    Exemplar,
    ExemplarStore,
    MetricsRegistry,
    SloRegistry,
    get_events,
    get_exemplars,
    get_registry,
    get_slos,
    span,
)
from ..rules.enforce import clamp_to_bounds, is_sane
from ..serve.heuristic import HeuristicConstantEstimator
from ..serve.service import EstimatorService, ServedEstimate
from .admission import AdmissionConfig, AdmissionController, ShardRequest
from .hashing import HashRing
from .shm import ArenaError, ArenaGeneration, ModelArena
from .supervisor import WorkerSupervisor


class _SemanticShardView:
    """One shard's generation-namespaced slice of the shared cache.

    The shared :class:`SemanticEstimateCache` namespaces entries by its
    ``generation`` attribute, so interleaving shards on a single cache
    is just arithmetic: the view sets ``generation = epoch * num_shards
    + shard_index`` before every probe/put.  Shards never see each
    other's entries, and a shard-local model swap (:meth:`bump`)
    invalidates only that shard's slice.
    """

    def __init__(
        self, cache: SemanticEstimateCache, index: int, stride: int
    ) -> None:
        self.cache = cache
        self._index = index
        self._stride = stride
        self._epoch = 0

    def _focus(self) -> None:
        self.cache.generation = self._epoch * self._stride + self._index

    def get(self, query: Query) -> float | None:
        self._focus()
        return self.cache.get(query)

    def put(self, query: Query, estimate: float) -> None:
        self._focus()
        self.cache.put(query, estimate)

    @property
    def last_hit_kind(self) -> str | None:
        return self.cache.last_hit_kind

    def bump(self) -> None:
        """Roll this shard's slice to a fresh epoch after a model swap."""
        self._epoch += 1


def routing_key(request: ShardRequest) -> str:
    """Stable routing key: tenant plus query identity.

    ``Query`` is a frozen dataclass, so its ``repr`` is deterministic
    across processes — unlike ``hash()``, which is salted.  Keeping the
    tenant in the key gives per-tenant affinity; keeping the query in
    it keeps shard-local caches hot for repeated queries.
    """
    return f"{request.tenant}|{request.query!r}"


@dataclass(frozen=True)
class RollingSwapReport:
    """Outcome of one rolling model swap across the shard fleet."""

    promoted: bool
    rolled_back: bool
    #: shards that were swapped (and stayed swapped, when promoted)
    swapped: tuple[str, ...] = ()
    gate_report: GateReport | None = None
    reason: str = ""


@dataclass
class ShardStats:
    """Per-shard serving counters (summed by ``ShardRouter.stats``)."""

    requests: int = 0
    worker_served: int = 0
    #: queries in worker replies the parent *accepted* (pre-validation);
    #: the parent-side quantity the merged per-worker serve counters sum
    #: to — unlike ``worker_served`` it still counts NaN-corrupted
    #: answers that the fallback chain re-served
    worker_answered: int = 0
    fallback_served: int = 0
    shed: int = 0
    redispatches: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)


class Shard:
    """One shard: supervised worker pool + admission + fallback chain."""

    def __init__(
        self,
        name: str,
        estimator: CardinalityEstimator,
        fallback_tiers: Sequence[CardinalityEstimator],
        *,
        worker_estimator: CardinalityEstimator | None = None,
        num_workers: int = 1,
        admission: AdmissionConfig | None = None,
        policy: RetryPolicy | None = None,
        mode: str = "auto",
        transport: str = "auto",
        arena: ModelArena | None = None,
        semantic_view: _SemanticShardView | None = None,
        request_timeout_seconds: float = 5.0,
        heartbeat_timeout_seconds: float = 1.0,
        seed: int = 0,
        cache_capacity: int | None = None,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
        telemetry: bool = True,
        slos: SloRegistry | None = None,
        exemplars: ExemplarStore | None = None,
        guard=None,
    ) -> None:
        self.name = name
        self.estimator = estimator
        self.table = estimator.table  # raises if unfitted, by design
        self._fallback_tiers = list(fallback_tiers)
        self.guard = guard
        self._events = events
        self._registry = registry
        self.telemetry = telemetry
        self._slos = slos
        self._exemplars = exemplars
        self._num_workers = num_workers
        self._mode = mode
        self._transport = transport
        self._arena = arena
        self.semantic_view = semantic_view
        self._policy = policy
        self._timeouts = (request_timeout_seconds, heartbeat_timeout_seconds)
        self._seed = seed
        self._cache_capacity = cache_capacity
        #: swap-path counters, persistent across supervisor replacement.
        #: ``model_pickles`` counts model re-serializations sent to a
        #: *live* worker — zero by construction on both swap paths (the
        #: arena path ships a control frame, the refork path inherits
        #: the model through fork memory); the chaos matrix asserts it.
        self.swap_stats = {
            "arena_swaps": 0,
            "refork_swaps": 0,
            "model_pickles": 0,
        }
        #: the estimator forked into workers; may be a fault wrapper
        #: around ``estimator`` so chaos lives only in worker processes
        self.worker_estimator = worker_estimator or estimator
        # In-process fallback chain: the *clean* parent model first,
        # then the caller's degradation tiers.  Per-shard instance so
        # breakers, cache generations and stats stay shard-local.
        self.fallback_service = EstimatorService(
            [estimator, *self._fallback_tiers],
            deadline_ms=None,
            cache=cache_capacity,
            events=events,
            registry=registry,
            slos=slos,
            exemplars=exemplars,
            guard=guard,
        )
        # Shed answers come straight from the magic-constant tier: it
        # cannot fail and costs microseconds, which is the whole point
        # of shedding.
        self._shed_estimator = HeuristicConstantEstimator()
        self._shed_estimator.fit(self.table)
        self.admission = AdmissionController(
            admission, shard=name, events=events, registry=registry
        )
        self.supervisor = self._make_supervisor(self.worker_estimator)
        self.fallback_mode = False
        self.stats = ShardStats()

    def _make_supervisor(
        self, estimator: CardinalityEstimator
    ) -> WorkerSupervisor:
        request_timeout, heartbeat_timeout = self._timeouts
        return WorkerSupervisor(
            self.name,
            estimator,
            self._num_workers,
            policy=self._policy,
            request_timeout_seconds=request_timeout,
            heartbeat_timeout_seconds=heartbeat_timeout,
            mode=self._mode,
            transport=self._transport,
            arena=self._arena,
            seed=self._seed,
            events=self._events,
            registry=self._registry,
            telemetry=self.telemetry,
        )

    def start(self) -> None:
        self.supervisor.start()

    def drain(self) -> None:
        self.supervisor.drain()

    # ------------------------------------------------------------------
    def serve_batch(self, requests: list[ShardRequest]) -> list[ServedEstimate]:
        """Answer every request: worker path, fallback chain, or shed.

        The whole batch is served under a ``serve.batch`` root span
        whose ``(trace_id, span_id)`` ride the worker request envelope,
        so worker-originated spans re-parent under it in the merged
        trace.  Per-request latencies feed the per-tenant SLO engine and
        the slowest-estimate exemplar board.
        """
        with span(
            "serve.batch", shard=self.name, batch=len(requests)
        ) as root:
            trace_ctx = (
                (root.trace_id, root.span_id) if root is not None else None
            )
            trace_id = root.trace_id if root is not None else None
            results: list[ServedEstimate | None] = [None] * len(requests)
            decision = self.admission.admit(requests)

            if decision.shed:
                shed_queries = [requests[i].query for i, _ in decision.shed]
                values = self._shed_estimator.estimate_many(shed_queries)
                for (index, reason), value in zip(decision.shed, values):
                    results[index] = ServedEstimate(
                        estimate=float(value),
                        tier="shed:heuristic",
                        tier_index=-1,
                        degraded=True,
                        latency_seconds=0.0,
                        attempts=(("admission", f"shed-{reason}"),),
                        trace_id=trace_id,
                    )
                self.stats.shed += len(decision.shed)
                for reason, count in decision.shed_reasons.items():
                    self.stats.shed_reasons[reason] = (
                        self.stats.shed_reasons.get(reason, 0) + count
                    )

            admitted = list(decision.admitted)
            if admitted:
                queries = [requests[i].query for i in admitted]
                served_admitted = self._serve_admitted(
                    queries, trace_ctx, trace_id
                )
                for index, served in zip(admitted, served_admitted):
                    results[index] = served

            self.stats.requests += len(requests)
            self._obs_registry().counter(
                SHARD_REQUESTS, "Requests served, by path"
            ).inc(len(requests), shard=self.name, path="total")
            assert all(r is not None for r in results)
            self._observe_slo(requests, results)
            return results  # type: ignore[return-value]

    def _observe_slo(
        self,
        requests: list[ShardRequest],
        results: list[ServedEstimate | None],
    ) -> None:
        """Feed per-tenant latency SLOs and the slowest-exemplar board."""
        slos = self._slos if self._slos is not None else get_slos()
        exemplars = (
            self._exemplars if self._exemplars is not None else get_exemplars()
        )
        for request, served in zip(requests, results):
            slos.record_latency(request.tenant, served.latency_seconds)
            if exemplars.would_record_latency(
                request.tenant, served.latency_seconds
            ):
                exemplars.record_latency(
                    Exemplar(
                        tenant=request.tenant,
                        estimator=served.tier,
                        query=repr(request.query),
                        estimate=served.estimate,
                        latency_seconds=served.latency_seconds,
                        trace_id=served.trace_id,
                    )
                )

    def _serve_admitted(
        self,
        queries: list[Query],
        trace_ctx: tuple[int, int] | None = None,
        trace_id: int | None = None,
    ) -> list[ServedEstimate]:
        """Worker dispatch with validation; fallback chain on any miss.

        Out-of-distribution queries never reach the worker path: the
        guard's domain snapshot flags them and they go straight to the
        in-process fallback chain, whose own guard hook skips the
        learned primary (the chain owns the reroute telemetry, so the
        split here stays silent to avoid double counting).
        """
        if self.guard is not None and not self.fallback_mode:
            verdicts = [self.guard.ood_verdict(q) for q in queries]
            ood = [
                i
                for i, v in enumerate(verdicts)
                if v is not None and v.is_ood
            ]
            if ood:
                results: list[ServedEstimate | None] = [None] * len(queries)
                ood_set = set(ood)
                keep = [i for i in range(len(queries)) if i not in ood_set]
                rerouted = self.fallback_service.serve_batch(
                    [queries[i] for i in ood]
                )
                for i, served in zip(ood, rerouted):
                    results[i] = served
                self.stats.fallback_served += len(ood)
                if keep:
                    kept = self._serve_admitted(
                        [queries[i] for i in keep], trace_ctx, trace_id
                    )
                    for i, served in zip(keep, kept):
                        results[i] = served
                assert all(r is not None for r in results)
                return results  # type: ignore[return-value]
        if not self.fallback_mode:
            dispatch = self.supervisor.dispatch(queries, trace_ctx)
            if dispatch.attempts > 1:
                self.stats.redispatches += dispatch.attempts - 1
            if dispatch.values is not None:
                self.stats.worker_answered += len(queries)
                self.admission.observe_service(len(queries), dispatch.seconds)
                return self._validate_worker_values(
                    queries, dispatch.values, dispatch.seconds, trace_id
                )
            if self.supervisor.exhausted:
                # Restart budget spent everywhere: stop paying the
                # dispatch tax and serve in-process from here on.
                self.fallback_mode = True
                self._obs_events().emit(
                    "shard.fallback_mode", shard=self.name
                )
        served = self.fallback_service.serve_batch(queries)
        self.stats.fallback_served += len(served)
        return served

    def _validate_worker_values(
        self,
        queries: list[Query],
        values: np.ndarray,
        seconds: float,
        trace_id: int | None = None,
    ) -> list[ServedEstimate]:
        """Accept sane worker answers; re-serve the rest in-process.

        Finite but out-of-bounds values are clamped exactly like the
        serving chain's "sanitized" outcome (raw model estimates may
        legitimately overshoot the row count by a little), then pulled
        into the guard's provable per-query interval when a guard is
        installed.  NaN/inf — the signature of a corrupted worker model
        — sends those queries to the parent's clean fallback chain
        instead of surfacing garbage to the optimizer.
        """
        num_rows = self.table.num_rows
        latency = seconds / max(len(queries), 1)
        results: list[ServedEstimate | None] = [None] * len(queries)
        bad: list[int] = []
        for i, raw in enumerate(values):
            value = float(raw)
            if math.isfinite(value):
                outcome = "served"
                if not is_sane(value, num_rows):
                    value = clamp_to_bounds(value, num_rows)
                    outcome = "sanitized"
                if self.guard is not None:
                    clamped, reason = self.guard.clamp(queries[i], value)
                    if reason is not None:
                        self._obs_registry().counter(
                            GUARD_CLAMPED,
                            "Estimates clamped to provable bounds",
                        ).inc(1, reason=reason)
                        self._obs_events().emit(
                            "guard.clamp",
                            shard=self.name,
                            tier="worker",
                            raw=value,
                            served=clamped,
                            reason=reason,
                        )
                        value = clamped
                        outcome = "guard-clamped"
                results[i] = ServedEstimate(
                    estimate=value,
                    tier="worker",
                    tier_index=0,
                    degraded=False,
                    latency_seconds=latency,
                    attempts=(("worker", outcome),),
                    trace_id=trace_id,
                )
            else:
                bad.append(i)
        if bad:
            self._obs_events().emit(
                "shard.worker_invalid",
                shard=self.name,
                batch=len(queries),
                invalid=len(bad),
            )
            reserved = self.fallback_service.serve_batch(
                [queries[i] for i in bad]
            )
            for i, served in zip(bad, reserved):
                results[i] = served
            self.stats.fallback_served += len(bad)
        self.stats.worker_served += len(queries) - len(bad)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def swap_model(
        self,
        candidate: CardinalityEstimator,
        *,
        generation: ArenaGeneration | None = None,
    ) -> None:
        """Hot-swap this shard to ``candidate``, zero-copy when possible.

        The live path publishes nothing and reforks nothing: the
        supervisor points its running workers at an arena generation
        (pre-published by the router, or published here) with a tiny
        control frame.  Pools that cannot live-swap — inline mode, pipe
        transport, a drained supervisor — fall back to the original
        drain → refork path.  Either way ``replace_primary`` bumps the
        shard's cache generation (no stale estimate from the old model
        can be served under the new one) and the shard's semantic-cache
        slice rolls to a fresh epoch.
        """
        if self.supervisor.swap_model(candidate, generation=generation):
            self.swap_stats["arena_swaps"] += 1
        else:
            self.supervisor.drain()
            self.supervisor = self._make_supervisor(candidate)
            self.supervisor.start()
            self.swap_stats["refork_swaps"] += 1
        self.fallback_service.replace_primary(candidate)
        self.estimator = candidate
        self.fallback_mode = False
        if self.semantic_view is not None:
            self.semantic_view.bump()

    def probe(self, queries: Sequence[Query]) -> bool:
        """Post-swap smoke check: do the new workers answer sanely?"""
        dispatch = self.supervisor.dispatch(list(queries))
        if dispatch.values is None:
            return False
        # probes are accepted worker replies too: count them so the
        # merged per-worker serve counters still sum to worker_answered
        self.stats.worker_answered += len(queries)
        num_rows = self.table.num_rows
        return bool(
            np.all(np.isfinite(dispatch.values))
            and np.all(dispatch.values >= 0.0)
            and np.all(dispatch.values <= num_rows)
        )

    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()


class ShardRouter:
    """Route requests to shards by consistent hash; swap models safely."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        fallback_tiers: Sequence[CardinalityEstimator],
        *,
        num_shards: int = 4,
        workers_per_shard: int = 1,
        worker_estimator: CardinalityEstimator | None = None,
        admission: AdmissionConfig | None = None,
        policy: RetryPolicy | None = None,
        mode: str = "auto",
        transport: str = "auto",
        semantic_cache: SemanticEstimateCache | int | None = None,
        request_timeout_seconds: float = 5.0,
        heartbeat_timeout_seconds: float = 1.0,
        ring_replicas: int = 64,
        seed: int = 0,
        cache_capacity: int | None = None,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
        telemetry: bool = True,
        slos: SloRegistry | None = None,
        exemplars: ExemplarStore | None = None,
        guard=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.estimator = estimator
        self.guard = guard
        self._events = events
        self._registry = registry
        self.telemetry = telemetry
        self._slos = slos
        self._exemplars = exemplars
        self.transport = transport
        #: one arena for the whole fleet: ``rolling_swap`` publishes a
        #: candidate once and every shard's workers attach the same
        #: segment.  Construction allocates nothing until the first
        #: publish, so pipe/inline configurations pay nothing for it.
        self.arena = ModelArena()
        if isinstance(semantic_cache, int):
            semantic_cache = SemanticEstimateCache(semantic_cache)
        self.semantic_cache = semantic_cache
        self._semantic_views: dict[str, _SemanticShardView] = {}
        self.shards: dict[str, Shard] = {}
        for i in range(num_shards):
            name = f"shard-{i}"
            view = (
                _SemanticShardView(semantic_cache, i, num_shards)
                if semantic_cache is not None
                else None
            )
            if view is not None:
                self._semantic_views[name] = view
            self.shards[name] = Shard(
                name,
                estimator,
                fallback_tiers,
                worker_estimator=worker_estimator,
                num_workers=workers_per_shard,
                admission=admission,
                policy=policy,
                mode=mode,
                transport=transport,
                arena=self.arena,
                semantic_view=view,
                request_timeout_seconds=request_timeout_seconds,
                heartbeat_timeout_seconds=heartbeat_timeout_seconds,
                seed=seed + i,
                cache_capacity=cache_capacity,
                events=events,
                registry=registry,
                telemetry=telemetry,
                slos=slos,
                exemplars=exemplars,
                guard=guard,
            )
        self.ring = HashRing(self.shards, replicas=ring_replicas)
        self.started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        for shard in self.shards.values():
            shard.start()
        self.started = True

    def drain(self) -> None:
        for shard in self.shards.values():
            shard.drain()
        # Shard supervisors released their generation refs above; close
        # unlinks whatever segments remain so /dev/shm ends empty.
        self.arena.close()
        self.started = False

    def __enter__(self) -> "ShardRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    def check_health(self) -> None:
        for shard in self.shards.values():
            shard.supervisor.check_health()

    # ------------------------------------------------------------------
    def route(self, request: ShardRequest) -> str:
        """Name of the shard owning ``request`` (stable across runs)."""
        return self.ring.node_for(routing_key(request))

    def serve_batch(self, requests: Sequence[ShardRequest]) -> list[ServedEstimate]:
        """Answer a request batch, preserving input order."""
        requests = list(requests)
        by_shard: dict[str, list[int]] = {}
        for index, request in enumerate(requests):
            by_shard.setdefault(self.route(request), []).append(index)
        results: list[ServedEstimate | None] = [None] * len(requests)
        for name, indices in by_shard.items():
            shard = self.shards[name]
            view = self._semantic_views.get(name)
            pending = indices
            if view is not None:
                # Probe the shared semantic cache before dispatch: an
                # exact or semantic hit skips the worker IPC round trip.
                pending = []
                counter = self._obs_registry().counter(
                    FASTPATH_SEMANTIC,
                    "Shared semantic-cache probes before shard dispatch",
                )
                for index in indices:
                    value = view.get(requests[index].query)
                    if value is None:
                        counter.inc(shard=name, outcome="miss")
                        pending.append(index)
                        continue
                    kind = view.last_hit_kind or "hit"
                    counter.inc(shard=name, outcome=kind)
                    results[index] = ServedEstimate(
                        estimate=float(value),
                        tier="semantic-cache",
                        tier_index=-1,
                        degraded=False,
                        latency_seconds=0.0,
                        attempts=(("semantic-cache", kind),),
                        trace_id=None,
                    )
            if not pending:
                continue
            shard_results = shard.serve_batch([requests[i] for i in pending])
            for index, served in zip(pending, shard_results):
                results[index] = served
                if view is not None and not served.degraded:
                    view.put(requests[index].query, served.estimate)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def serve_queries(self, queries: Sequence[Query]) -> list[ServedEstimate]:
        """Convenience: serve plain queries with default metadata."""
        return self.serve_batch([ShardRequest(query=q) for q in queries])

    def record_actual(
        self,
        request: ShardRequest,
        served: ServedEstimate,
        actual: float,
    ) -> float:
        """Feed back the true cardinality for an earlier served estimate.

        Routes the q-error sample to the owning shard's fallback
        service, which updates the tenant's accuracy SLO and the
        worst-q-error exemplar board.  Returns the q-error.
        """
        shard = self.shards[self.route(request)]
        return shard.fallback_service.record_actual(
            request.query, served, actual, tenant=request.tenant
        )

    # ------------------------------------------------------------------
    def rolling_swap(
        self,
        candidate: CardinalityEstimator,
        *,
        gate: PromotionGate | None = None,
        probe_queries: Sequence[Query] | None = None,
    ) -> RollingSwapReport:
        """Swap every shard to ``candidate``, one shard at a time.

        The gate judges the candidate *before* any shard is touched (a
        rejected candidate never serves a single query).  Each swapped
        shard is probed; a probe failure rolls the already-swapped
        shards back to the incumbent and reports the swap as failed.
        """
        incumbent = self.estimator
        gate_report: GateReport | None = None
        if gate is not None:
            table = next(iter(self.shards.values())).table
            gate_report = gate.evaluate(candidate, incumbent, table)
            if not gate_report.passed:
                self._obs_events().emit(
                    "shard.swap_rejected",
                    reasons=list(gate_report.reasons),
                )
                self._count_swap("rejected")
                return RollingSwapReport(
                    promoted=False,
                    rolled_back=False,
                    gate_report=gate_report,
                    reason="gate rejected candidate",
                )
        if probe_queries is None and gate is not None:
            probe_queries = gate.validation_queries[:8]

        swapped: list[str] = []
        # One publish for the whole fleet: every live-swapping shard
        # attaches the same segment.  ``None`` (pipe transport, inline
        # mode, not started) lets each shard take its refork path.
        generation = self._publish_generation(candidate)
        for name, shard in self.shards.items():
            shard.swap_model(candidate, generation=generation)
            if probe_queries is not None and not shard.probe(probe_queries):
                # Roll back this shard and every previously swapped one.
                rollback_generation = self._publish_generation(incumbent)
                for back in [*swapped, name]:
                    self.shards[back].swap_model(
                        incumbent, generation=rollback_generation
                    )
                self._obs_events().emit(
                    "shard.swap_rollback", failed_shard=name, swapped=swapped
                )
                self._count_swap("rolled_back")
                return RollingSwapReport(
                    promoted=False,
                    rolled_back=True,
                    swapped=tuple(swapped),
                    gate_report=gate_report,
                    reason=f"post-swap probe failed on {name}",
                )
            swapped.append(name)
            self._obs_events().emit("shard.swap_shard", shard=name)
        self.estimator = candidate
        self._obs_events().emit("shard.swap_promoted", shards=len(swapped))
        self._count_swap("promoted")
        return RollingSwapReport(
            promoted=True,
            rolled_back=False,
            swapped=tuple(swapped),
            gate_report=gate_report,
            reason="promoted",
        )

    def _publish_generation(
        self, model: CardinalityEstimator
    ) -> ArenaGeneration | None:
        """Publish ``model`` once for the fleet, when a live swap can use it.

        Returns ``None`` when no shard could attach it anyway (pipe
        transport, inline mode, supervisors not started) or when shared
        memory is unavailable — every shard then reforks as before.
        """
        sup = next(iter(self.shards.values())).supervisor
        if not (sup.started and sup.mode == "fork" and sup.transport == "shm"):
            return None
        try:
            return self.arena.publish(model)
        except ArenaError:
            return None

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, ShardStats]:
        return {name: shard.stats for name, shard in self.shards.items()}

    def swap_stats(self) -> dict[str, int]:
        """Fleet-wide swap-path counters (summed over shards)."""
        total = {"arena_swaps": 0, "refork_swaps": 0, "model_pickles": 0}
        for shard in self.shards.values():
            for key, value in shard.swap_stats.items():
                total[key] += value
        return total

    def totals(self) -> ShardStats:
        total = ShardStats()
        for stats in self.stats().values():
            total.requests += stats.requests
            total.worker_served += stats.worker_served
            total.worker_answered += stats.worker_answered
            total.fallback_served += stats.fallback_served
            total.shed += stats.shed
            total.redispatches += stats.redispatches
            for reason, count in stats.shed_reasons.items():
                total.shed_reasons[reason] = (
                    total.shed_reasons.get(reason, 0) + count
                )
        return total

    def _count_swap(self, outcome: str) -> None:
        self._obs_registry().counter(
            SHARD_SWAPS, "Rolling model swaps, by outcome"
        ).inc(outcome=outcome)

    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

