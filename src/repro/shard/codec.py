"""Binary frame codec for query batches and result arrays.

``transport="shm"`` moves every query batch and every result through a
:class:`~repro.shard.shm.ShmRing` slot as a struct-framed byte layout
instead of a pickle.  The duplex pipes then carry only fixed-size
control tuples (op, request id, slot index, frame length) — see
:mod:`repro.shard.supervisor`.

Request frame (little-endian, offsets computed identically on both
sides from the header counts)::

    header   u32 magic | u32 n_queries | u32 n_preds | u32 flags
    trace    2 × u64                       (when flags & TRACE)
    counts   u32[n_queries]                predicates per query
    cols     u32[n_preds]                  column ids, query-major
    pflags   u8[n_preds]                   bit0 = lo bound present,
                                           bit1 = hi bound present
    (pad to 8)
    los      f64[n_preds]                  0.0 placeholder when absent
    his      f64[n_preds]
    tlens    u32[n_queries]                (when flags & TENANTS)
    tbytes   UTF-8, concatenated

Bounds travel as raw IEEE doubles behind presence bits, so open-sided
predicates, NaN and ±inf all round-trip exactly — the chaos matrix
asserts bit-identical answers against the pickle transport.

Result frame::

    header     u32 magic | u32 n | u32 flags | u32 reserved
    codes      u8[n]                         0 = OK per estimate
    (pad to 8)
    estimates  f64[n]                        raw doubles (NaN/inf exact)

A batch that does not fit its slot raises :class:`CodecOverflow`; the
supervisor falls back to the pickle path for that request and counts it.
"""

from __future__ import annotations

import struct
from collections.abc import Sequence

import numpy as np

from ..core.query import Predicate, Query

__all__ = [
    "CodecError",
    "CodecOverflow",
    "OUTCOME_OK",
    "OUTCOME_ERROR",
    "pack_queries",
    "unpack_queries",
    "pack_results",
    "unpack_results",
]


class CodecError(RuntimeError):
    """A frame could not be encoded or decoded."""


class CodecOverflow(CodecError):
    """The frame does not fit the slot buffer (fall back to pickle)."""


_REQ_MAGIC = 0x51524551  # "QREQ"
_RES_MAGIC = 0x53525351  # "QSRS"
_HEADER = struct.Struct("<IIII")
_TRACE = struct.Struct("<QQ")

_F_TRACE = 1 << 0
_F_PARENT = 1 << 1  # the trace's parent-span half is present (not None)
_F_TENANTS = 1 << 2

_LO_PRESENT = 1
_HI_PRESENT = 2

#: Per-estimate outcome codes in the result frame.
OUTCOME_OK = 0
OUTCOME_ERROR = 1

_U64_MAX = 2**64 - 1


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _query_rows(query: Query) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-query column/flag/bound rows, memoized on the Query object.

    Queries are immutable and reused heavily across batches (replay
    streams tile a fixed workload), so the ndarray encoding is computed
    once per query — mirroring ``serve.cache.query_signature``.
    """
    rows = getattr(query, "_codec_rows", None)
    if rows is None:
        preds = query.predicates
        k = len(preds)
        cols = np.empty(k, dtype=np.uint32)
        flags = np.zeros(k, dtype=np.uint8)
        los = np.zeros(k, dtype=np.float64)
        his = np.zeros(k, dtype=np.float64)
        for i, pred in enumerate(preds):
            cols[i] = pred.column
            if pred.lo is not None:
                flags[i] |= _LO_PRESENT
                los[i] = pred.lo
            if pred.hi is not None:
                flags[i] |= _HI_PRESENT
                his[i] = pred.hi
        rows = (cols, flags, los, his)
        object.__setattr__(query, "_codec_rows", rows)
    return rows


def pack_queries(
    queries: Sequence[Query],
    buf,
    *,
    trace_ctx: tuple[int, int | None] | None = None,
    tenants: Sequence[str] | None = None,
) -> int:
    """Encode a query batch into ``buf``; returns the frame length.

    Raises :class:`CodecOverflow` when the frame exceeds ``len(buf)``.
    """
    n = len(queries)
    rows = [_query_rows(q) for q in queries]
    counts = np.fromiter((r[0].size for r in rows), np.uint32, count=n)
    p = int(counts.sum())

    flags = 0
    if trace_ctx is not None:
        trace_id, parent = trace_ctx
        if not (0 <= trace_id <= _U64_MAX) or (
            parent is not None and not (0 <= parent <= _U64_MAX)
        ):
            raise CodecError(f"trace context {trace_ctx!r} does not fit u64")
        flags |= _F_TRACE
        if parent is not None:
            flags |= _F_PARENT
    tenant_blob = b""
    tenant_lens: np.ndarray | None = None
    if tenants is not None:
        if len(tenants) != n:
            raise CodecError("tenants must match the query batch length")
        encoded = [t.encode("utf-8") for t in tenants]
        tenant_lens = np.fromiter((len(e) for e in encoded), np.uint32, count=n)
        tenant_blob = b"".join(encoded)
        flags |= _F_TENANTS

    offset = _HEADER.size
    if flags & _F_TRACE:
        trace_off = offset
        offset += _TRACE.size
    counts_off = offset
    offset += 4 * n
    cols_off = offset
    offset += 4 * p
    pflags_off = offset
    offset = _align8(offset + p)
    los_off = offset
    offset += 8 * p
    his_off = offset
    offset += 8 * p
    if flags & _F_TENANTS:
        tlens_off = offset
        offset += 4 * n
        tbytes_off = offset
        offset += len(tenant_blob)
    total = offset
    if total > len(buf):
        raise CodecOverflow(f"frame needs {total} bytes, slot has {len(buf)}")

    view = np.frombuffer(buf, dtype=np.uint8, count=total)
    _HEADER.pack_into(buf, 0, _REQ_MAGIC, n, p, flags)
    if flags & _F_TRACE:
        trace_id, parent = trace_ctx
        _TRACE.pack_into(buf, trace_off, trace_id, parent or 0)
    view[counts_off : counts_off + 4 * n] = counts.view(np.uint8)
    if p:
        cols = np.concatenate([r[0] for r in rows])
        pflags = np.concatenate([r[1] for r in rows])
        los = np.concatenate([r[2] for r in rows])
        his = np.concatenate([r[3] for r in rows])
        view[cols_off : cols_off + 4 * p] = cols.view(np.uint8)
        view[pflags_off : pflags_off + p] = pflags
        view[los_off : los_off + 8 * p] = los.view(np.uint8)
        view[his_off : his_off + 8 * p] = his.view(np.uint8)
    if flags & _F_TENANTS:
        view[tlens_off : tlens_off + 4 * n] = tenant_lens.view(np.uint8)
        if tenant_blob:
            view[tbytes_off : tbytes_off + len(tenant_blob)] = np.frombuffer(
                tenant_blob, dtype=np.uint8
            )
    return total


def unpack_queries(
    buf,
) -> tuple[list[Query], tuple[int, int | None] | None, list[str] | None]:
    """Decode a :func:`pack_queries` frame: (queries, trace_ctx, tenants)."""
    if len(buf) < _HEADER.size:
        raise CodecError("request frame shorter than its header")
    magic, n, p, flags = _HEADER.unpack_from(buf, 0)
    if magic != _REQ_MAGIC:
        raise CodecError(f"bad request magic {magic:#x}")

    offset = _HEADER.size
    trace_ctx: tuple[int, int | None] | None = None
    if flags & _F_TRACE:
        trace_id, parent = _TRACE.unpack_from(buf, offset)
        trace_ctx = (trace_id, parent if flags & _F_PARENT else None)
        offset += _TRACE.size
    counts = np.frombuffer(buf, dtype=np.uint32, count=n, offset=offset)
    offset += 4 * n
    cols = np.frombuffer(buf, dtype=np.uint32, count=p, offset=offset)
    offset += 4 * p
    pflags = np.frombuffer(buf, dtype=np.uint8, count=p, offset=offset)
    offset = _align8(offset + p)
    los = np.frombuffer(buf, dtype=np.float64, count=p, offset=offset)
    offset += 8 * p
    his = np.frombuffer(buf, dtype=np.float64, count=p, offset=offset)
    offset += 8 * p
    if int(counts.sum()) != p:
        raise CodecError("predicate counts do not sum to the frame total")

    queries: list[Query] = []
    idx = 0
    for count in counts:
        preds = []
        for _ in range(count):
            flag = pflags[idx]
            preds.append(
                Predicate(
                    int(cols[idx]),
                    float(los[idx]) if flag & _LO_PRESENT else None,
                    float(his[idx]) if flag & _HI_PRESENT else None,
                )
            )
            idx += 1
        queries.append(Query(tuple(preds)))

    tenants: list[str] | None = None
    if flags & _F_TENANTS:
        tlens = np.frombuffer(buf, dtype=np.uint32, count=n, offset=offset)
        offset += 4 * n
        tenants = []
        for length in tlens:
            tenants.append(bytes(buf[offset : offset + int(length)]).decode("utf-8"))
            offset += int(length)
    return queries, trace_ctx, tenants


def pack_results(estimates, codes, buf) -> int:
    """Encode an estimates/outcome-codes pair; returns the frame length."""
    values = np.ascontiguousarray(estimates, dtype=np.float64)
    outcome = np.ascontiguousarray(codes, dtype=np.uint8)
    if values.ndim != 1 or outcome.shape != values.shape:
        raise CodecError("estimates and codes must be matching 1-d arrays")
    n = values.size
    codes_off = _HEADER.size
    values_off = _align8(codes_off + n)
    total = values_off + 8 * n
    if total > len(buf):
        raise CodecOverflow(f"frame needs {total} bytes, slot has {len(buf)}")
    view = np.frombuffer(buf, dtype=np.uint8, count=total)
    _HEADER.pack_into(buf, 0, _RES_MAGIC, n, 0, 0)
    view[codes_off : codes_off + n] = outcome
    view[values_off : values_off + 8 * n] = values.view(np.uint8)
    return total


def unpack_results(buf, *, copy: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Decode a :func:`pack_results` frame: (estimates, codes).

    ``copy=True`` (the default) detaches the arrays from ``buf`` so the
    ring slot can be released immediately after decoding.
    """
    if len(buf) < _HEADER.size:
        raise CodecError("result frame shorter than its header")
    magic, n, _flags, _reserved = _HEADER.unpack_from(buf, 0)
    if magic != _RES_MAGIC:
        raise CodecError(f"bad result magic {magic:#x}")
    codes_off = _HEADER.size
    values_off = _align8(codes_off + n)
    codes = np.frombuffer(buf, dtype=np.uint8, count=n, offset=codes_off)
    values = np.frombuffer(buf, dtype=np.float64, count=n, offset=values_off)
    if copy:
        return values.copy(), codes.copy()
    return values, codes
