"""Admission control for one shard: bounded queues, deadlines, quotas.

A shard's worker pool has finite throughput; under a traffic spike the
choice is between queueing (and blowing every deadline), rejecting
(availability < 1), or **shedding to a cheaper tier**.  The controller
takes the third option, deciding *per request batch* who gets a worker
and who degrades to the heuristic tier — nobody is ever rejected
outright, which is what keeps measured availability at 1.0 under a
queue flood.

Three shedding rules, applied in priority order (highest priority
first, FIFO within a priority):

* **Per-tenant quota** — a tenant may hold at most ``tenant_quota``
  queue slots per batch, so one noisy tenant cannot starve the rest.
* **Queue capacity** — at most ``queue_capacity`` requests are queued
  for workers; the overflow (lowest priority first, by construction of
  the admission order) is shed.
* **Deadline awareness** — a request whose deadline would already be
  blown by its predicted queue wait (position × EWMA per-query service
  time) is shed *immediately* instead of queued to fail later; the
  heuristic answer now beats a worker answer that arrives too late.

Admitted requests are returned in arrival order, so admission never
perturbs result determinism — with shedding disabled (no deadlines, no
quotas, capacity ≥ batch) the admitted batch is exactly the input.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.query import Query
from ..obs import SHARD_SHED, EventLog, MetricsRegistry, get_events, get_registry


@dataclass(frozen=True)
class ShardRequest:
    """One query plus its serving metadata (tenant, priority, deadline)."""

    query: Query
    tenant: str = "default"
    #: larger = more important; sheds last under pressure
    priority: int = 0
    #: end-to-end answer deadline; None = no deadline
    deadline_ms: float | None = None


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-shard admission policy."""

    #: queue slots per admission window (the dispatch batch)
    queue_capacity: int = 2048
    #: max queue slots one tenant may hold per window; None = unlimited
    tenant_quota: int | None = None
    #: EWMA smoothing for the per-query service-time estimate
    service_time_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1 (or None)")
        if not 0.0 < self.service_time_alpha <= 1.0:
            raise ValueError("service_time_alpha must be in (0, 1]")


@dataclass(frozen=True)
class AdmissionDecision:
    """Who got a worker slot and who degrades to the heuristic tier."""

    #: indices into the request batch, in arrival order
    admitted: tuple[int, ...]
    #: (index, reason) for every shed request; reason in
    #: {"capacity", "quota", "deadline"}
    shed: tuple[tuple[int, str], ...] = field(default_factory=tuple)

    @property
    def shed_reasons(self) -> Counter:
        return Counter(reason for _, reason in self.shed)


class AdmissionController:
    """Decide, per batch, which requests may queue for a worker."""

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        *,
        shard: str = "",
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.shard = shard
        self._events = events
        self._registry = registry
        #: EWMA per-query worker service time (seconds); None until the
        #: first completed dispatch reports in
        self.service_seconds_per_query: float | None = None
        self.admitted_total = 0
        self.shed_total: Counter = Counter()

    # ------------------------------------------------------------------
    def predicted_wait_ms(self, position: int) -> float:
        """Expected queue wait of a request ``position`` slots deep."""
        if self.service_seconds_per_query is None:
            return 0.0
        return position * self.service_seconds_per_query * 1000.0

    def admit(self, requests: list[ShardRequest]) -> AdmissionDecision:
        """Partition one batch into admitted and shed requests."""
        cfg = self.config
        # Highest priority first; FIFO within a priority (stable sort on
        # the negated priority keeps arrival order for ties).
        order = sorted(range(len(requests)), key=lambda i: -requests[i].priority)
        admitted: list[int] = []
        shed: list[tuple[int, str]] = []
        per_tenant: Counter = Counter()
        for i in order:
            request = requests[i]
            if (
                cfg.tenant_quota is not None
                and per_tenant[request.tenant] >= cfg.tenant_quota
            ):
                shed.append((i, "quota"))
                continue
            if len(admitted) >= cfg.queue_capacity:
                shed.append((i, "capacity"))
                continue
            if (
                request.deadline_ms is not None
                and self.predicted_wait_ms(len(admitted)) > request.deadline_ms
            ):
                shed.append((i, "deadline"))
                continue
            admitted.append(i)
            per_tenant[request.tenant] += 1

        admitted.sort()  # back to arrival order: admission never reorders
        shed.sort()
        self.admitted_total += len(admitted)
        if shed:
            reasons = Counter(reason for _, reason in shed)
            self.shed_total.update(reasons)
            counter = self._obs_registry().counter(
                SHARD_SHED, "Requests shed to the heuristic tier, by reason"
            )
            for reason, count in reasons.items():
                counter.inc(count, shard=self.shard, reason=reason)
            self._obs_events().emit(
                "shard.shed",
                shard=self.shard,
                batch=len(requests),
                **{reason: count for reason, count in sorted(reasons.items())},
            )
        return AdmissionDecision(admitted=tuple(admitted), shed=tuple(shed))

    def observe_service(self, queries: int, seconds: float) -> None:
        """Fold one completed dispatch into the service-time EWMA."""
        if queries < 1 or seconds < 0.0:
            return
        per_query = seconds / queries
        if self.service_seconds_per_query is None:
            self.service_seconds_per_query = per_query
        else:
            alpha = self.config.service_time_alpha
            self.service_seconds_per_query = (
                alpha * per_query + (1.0 - alpha) * self.service_seconds_per_query
            )

    # ------------------------------------------------------------------
    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()
