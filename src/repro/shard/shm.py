"""Shared-memory model arena and slot ring for the zero-copy data plane.

Two pieces of process-shared plumbing back the sharded serving tier's
``transport="shm"`` mode:

* :class:`ModelArena` — publishes each model *generation* into a
  ``multiprocessing.shared_memory`` segment: a fixed header (magic,
  generation id, SHA-256 checksum, meta length, tensor-region offset),
  a pickled meta block (per-tensor dtype/shape/offset table plus the
  skeleton pickle from :func:`repro.persistence.split_tensors`), and a
  64-byte-aligned tensor region.  Workers :meth:`~ModelArena.attach`
  read-only ndarray views over the region instead of receiving a
  pickled estimator, so a rolling swap is "publish generation, send a
  tiny control frame".  The parent refcounts attached generations and
  unlinks retired segments once the last reference drops.

* :class:`ShmRing` — a preallocated ring of fixed-size request/response
  slots in one shared segment.  The parent owns the free list; workers
  inherit the mapping over ``fork`` and read/write slots they are
  handed via pipe control frames (see :mod:`repro.shard.codec`).

Both are fork-first by design: segments are created by the parent
before (or while) workers exist, children inherit the resource-tracker
session, and only the parent ever unlinks — so the lifetime story is
"parent refcounts, parent unlinks, ``close()`` unlinks whatever is
left".  Models attached from an arena are **inference-only**: their
tensors are read-only views, so in-place training updates would raise.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory



from ..persistence import (
    read_tensors,
    split_tensors,
    join_tensors,
    tensor_table,
    write_tensors,
)

__all__ = [
    "ArenaError",
    "ArenaGeneration",
    "ArenaAttachment",
    "ModelArena",
    "ShmRing",
]


class ArenaError(RuntimeError):
    """A shared-memory segment could not be published or attached."""


#: Segment header: magic, generation id, SHA-256 of everything after the
#: header, meta pickle length, byte offset of the tensor region.
_HEADER = struct.Struct("<12sQ32sQQ")
_MAGIC = b"repro-arena\x00"
HEADER_BYTES = _HEADER.size


def _segment_prefix() -> str:
    """Unique-per-arena segment name prefix (pid + random suffix)."""
    return f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class ArenaGeneration:
    """Handle describing one published model generation."""

    generation: int
    name: str
    size: int
    checksum: str
    tensor_bytes: int
    num_tensors: int


@dataclass
class ArenaAttachment:
    """A worker-side attachment: the rebuilt model + its live segment.

    The segment must outlive the model (the model's tensors are views
    into it); :meth:`close` drops the mapping once the model has been
    replaced and its arrays are no longer referenced.
    """

    model: object
    generation: ArenaGeneration
    _segment: shared_memory.SharedMemory = field(repr=False, default=None)

    def close(self) -> None:
        """Release the mapping; harmless if views are still referenced."""
        self.model = None
        if self._segment is None:
            return
        try:
            self._segment.close()
        except BufferError:
            # Someone still holds a tensor view; the mapping stays until
            # process exit.  Never fatal — the parent owns the unlink.
            pass
        self._segment = None


class ModelArena:
    """Publish model generations to shared memory; refcount their life.

    The publishing process (the shard router or a supervisor) calls
    :meth:`publish` to snapshot a model into a fresh segment and gets a
    :class:`ArenaGeneration` handle back.  Each supervisor that swaps
    its workers onto the generation takes a reference with
    :meth:`acquire` and drops it with :meth:`release` after the next
    swap.  Publishing auto-retires every earlier generation: a retired
    generation is unlinked the moment its refcount reaches zero, and
    :meth:`close` unlinks anything still standing.
    """

    def __init__(self, *, prefix: str | None = None) -> None:
        self._prefix = prefix or _segment_prefix()
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._handles: dict[int, ArenaGeneration] = {}
        self._refs: dict[int, int] = {}
        self._retired: set[int] = set()
        self._counter = 0
        #: generations published over this arena's lifetime.
        self.published = 0
        #: segments unlinked so far (retired generations fully drained).
        self.unlinked = 0

    # -- publishing ----------------------------------------------------
    def publish(self, model: object) -> ArenaGeneration:
        """Snapshot ``model`` into a new shared-memory generation."""
        skeleton, tensors = split_tensors(model)
        table, tensor_bytes = tensor_table(tensors)
        meta = pickle.dumps(
            {"skeleton": skeleton, "table": table},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        data_offset = _aligned(HEADER_BYTES + len(meta))
        size = data_offset + max(tensor_bytes, 1)

        self._counter += 1
        generation = self._counter
        name = f"{self._prefix}-g{generation}"
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        except OSError as exc:
            raise ArenaError(f"could not create arena segment {name}: {exc}") from exc

        buf = segment.buf
        buf[HEADER_BYTES : HEADER_BYTES + len(meta)] = meta
        write_tensors(tensors, table, buf[data_offset:])
        digest = hashlib.sha256(buf[HEADER_BYTES:size]).digest()
        _HEADER.pack_into(
            buf, 0, _MAGIC, generation, digest, len(meta), data_offset
        )

        handle = ArenaGeneration(
            generation=generation,
            name=segment.name.lstrip("/"),
            size=size,
            checksum=digest.hex(),
            tensor_bytes=tensor_bytes,
            num_tensors=len(table),
        )
        self._segments[generation] = segment
        self._handles[generation] = handle
        self._refs[generation] = 0
        self.published += 1
        # Older generations take no new attachments; drain-and-unlink.
        for old in list(self._segments):
            if old != generation:
                self.retire(old)
        return handle

    # -- refcounting ---------------------------------------------------
    def acquire(self, handle: ArenaGeneration) -> None:
        """Take a reference: ``handle`` is in use by a worker pool."""
        if handle.generation not in self._segments:
            raise ArenaError(
                f"generation {handle.generation} is not live in this arena"
            )
        self._refs[handle.generation] += 1

    def release(self, handle: ArenaGeneration) -> None:
        """Drop a reference; unlinks the segment once retired + drained."""
        generation = handle.generation
        if generation not in self._segments:
            return  # already unlinked (e.g. close() during teardown)
        self._refs[generation] -= 1
        if self._refs[generation] <= 0 and generation in self._retired:
            self._unlink(generation)

    def retire(self, generation: int) -> None:
        """Mark ``generation`` obsolete; unlink as soon as refs drain."""
        if generation not in self._segments:
            return
        self._retired.add(generation)
        if self._refs.get(generation, 0) <= 0:
            self._unlink(generation)

    def _unlink(self, generation: int) -> None:
        segment = self._segments.pop(generation)
        self._handles.pop(generation, None)
        self._refs.pop(generation, None)
        self._retired.discard(generation)
        try:
            segment.close()
        except BufferError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        self.unlinked += 1

    def live_generations(self) -> list[int]:
        """Generations whose segments still exist (tests + introspection)."""
        return sorted(self._segments)

    def close(self) -> None:
        """Unlink every remaining segment, live or retired."""
        for generation in list(self._segments):
            self._unlink(generation)

    # -- worker side ---------------------------------------------------
    @staticmethod
    def attach(name: str) -> ArenaAttachment:
        """Attach a published generation read-only and rebuild its model.

        Verifies the magic and the SHA-256 checksum before trusting the
        meta pickle, then joins the skeleton around read-only tensor
        views into the segment.  The returned attachment keeps the
        segment mapped; call :meth:`ArenaAttachment.close` after the
        model has been replaced.
        """
        try:
            segment = shared_memory.SharedMemory(name=name)
        except OSError as exc:
            raise ArenaError(f"arena segment {name} is gone: {exc}") from exc
        try:
            magic, generation, digest, meta_len, data_offset = _HEADER.unpack_from(
                segment.buf, 0
            )
            if magic != _MAGIC:
                raise ArenaError(f"{name} is not an arena segment")
            actual = hashlib.sha256(segment.buf[HEADER_BYTES:]).digest()
            if actual != digest:
                raise ArenaError(f"{name} failed its content checksum")
            meta = pickle.loads(
                segment.buf[HEADER_BYTES : HEADER_BYTES + meta_len]
            )
            region = segment.buf[data_offset:]
            arrays = read_tensors(meta["table"], region, copy=False)
            model = join_tensors(meta["skeleton"], arrays)
        except ArenaError:
            _close_quietly(segment)
            raise
        except (KeyError, ValueError, pickle.UnpicklingError, struct.error) as exc:
            _close_quietly(segment)
            raise ArenaError(f"arena segment {name} is torn: {exc}") from exc
        handle = ArenaGeneration(
            generation=generation,
            name=name,
            size=segment.size,
            checksum=digest.hex(),
            tensor_bytes=sum(row[3] for row in meta["table"]),
            num_tensors=len(meta["table"]),
        )
        return ArenaAttachment(model=model, generation=handle, _segment=segment)


def _aligned(offset: int, align: int = 64) -> int:
    return (offset + align - 1) // align * align


def _close_quietly(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:
        # A half-built view still references the mapping; it dies with
        # the frame that raised.
        pass


class ShmRing:
    """A ring of fixed-size shared-memory slots for query/result frames.

    The parent creates the ring before forking workers and owns the
    free list; a slot index travels to exactly one worker inside a pipe
    control frame, the worker overwrites the slot with its result frame,
    and the parent releases the slot after decoding the reply (or after
    killing the worker — a slot is never reused while a process that
    might still write it is alive).
    """

    def __init__(
        self,
        num_slots: int,
        slot_bytes: int,
        *,
        prefix: str | None = None,
    ) -> None:
        if num_slots < 1 or slot_bytes < HEADER_BYTES:
            raise ValueError("ring needs at least one usable slot")
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        name = f"{prefix or _segment_prefix()}-ring"
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=num_slots * slot_bytes
        )
        self.name = self._segment.name.lstrip("/")
        self._free: list[int] = list(range(num_slots - 1, -1, -1))
        self._free_set: set[int] = set(self._free)
        self._closed = False

    @property
    def free_count(self) -> int:
        return len(self._free)

    def acquire(self) -> int | None:
        """Pop a free slot index, or ``None`` when the ring is full."""
        if not self._free:
            return None
        slot = self._free.pop()
        self._free_set.discard(slot)
        return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free list (double-release is a bug)."""
        if slot in self._free_set:
            raise ValueError(f"slot {slot} released twice")
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range")
        self._free.append(slot)
        self._free_set.add(slot)

    def slot_view(self, slot: int) -> memoryview:
        """The writable byte window of ``slot`` (parent and workers)."""
        start = slot * self.slot_bytes
        return self._segment.buf[start : start + self.slot_bytes]

    def close(self, *, unlink: bool) -> None:
        """Drop the mapping; the owning parent also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:
            pass
        if unlink:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
