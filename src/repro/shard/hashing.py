"""Consistent-hash ring for shard routing.

A :class:`HashRing` maps routing keys (tenant + query identity) to shard
names so that (a) the same key always lands on the same shard — shard-
local estimate caches stay hot and per-tenant traffic is stable — and
(b) adding or removing a shard only remaps ``~1/num_shards`` of the key
space, instead of reshuffling everything like ``hash(key) % N`` would.

Hashes are :func:`hashlib.blake2b` digests of the key bytes, **not**
Python's builtin ``hash`` (which is salted per process via
``PYTHONHASHSEED`` — routing must be identical across runs and across
forked workers).  Each shard is placed at ``replicas`` points on the
ring (virtual nodes) so the key space splits evenly even with few
shards.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over named nodes with virtual replicas."""

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def _point(self, node: str, replica: int) -> int:
        return stable_hash(f"{node}#{replica}")

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = self._point(node, replica)
            # Blake2b collisions across distinct (node, replica) labels
            # are astronomically unlikely; first writer keeps the point.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        for replica in range(self.replicas):
            point = self._point(node, replica)
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def node_for(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise of it."""
        if not self._points:
            raise RuntimeError("hash ring has no nodes")
        point = stable_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[self._points[index]]
