"""Sharded serving: consistent-hash routing, supervised fork-based
worker pools, admission control with priority load shedding, and
rolling model swaps — the million-query robustness tier on top of
:mod:`repro.serve` and :mod:`repro.parallel`.

Layering::

    ShardRouter                 route by consistent hash, rolling swaps
      ├── ModelArena            shm model generations, zero-copy swaps
      └── Shard (×N)            admission + worker pool + fallback chain
            ├── AdmissionController   quotas, capacity, deadlines → shed
            ├── WorkerSupervisor      forked workers, restarts, drain
            │     └── ShmRing + codec   batches as framed shm ndarrays
            └── EstimatorService      in-process degradation chain

The pipes between supervisor and workers are a pure control plane:
bulk data (model tensors, query batches, results) crosses through
shared memory (:mod:`.shm`, :mod:`.codec`), and ``tests/test_lint.py``
rule 7 bans any other payload over a shard pipe.

Every request gets an answer — worker, fallback chain, or heuristic
shed tier — so availability stays 1.0 under the whole chaos matrix
(worker crashes, hangs, slow workers, queue floods, model corruption,
failed swaps, exhausted restart budgets).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    ShardRequest,
)
from .codec import (
    CodecError,
    CodecOverflow,
    pack_queries,
    pack_results,
    unpack_queries,
    unpack_results,
)
from .hashing import HashRing, stable_hash
from .shm import (
    ArenaError,
    ArenaGeneration,
    ModelArena,
    ShmRing,
)
from .router import (
    RollingSwapReport,
    Shard,
    ShardRouter,
    ShardStats,
    routing_key,
)
from .supervisor import DispatchResult, WorkerSupervisor

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ArenaError",
    "ArenaGeneration",
    "CodecError",
    "CodecOverflow",
    "DispatchResult",
    "HashRing",
    "ModelArena",
    "RollingSwapReport",
    "Shard",
    "ShardRequest",
    "ShardRouter",
    "ShardStats",
    "ShmRing",
    "WorkerSupervisor",
    "pack_queries",
    "pack_results",
    "routing_key",
    "stable_hash",
    "unpack_queries",
    "unpack_results",
]
