"""Sharded serving: consistent-hash routing, supervised fork-based
worker pools, admission control with priority load shedding, and
rolling model swaps — the million-query robustness tier on top of
:mod:`repro.serve` and :mod:`repro.parallel`.

Layering::

    ShardRouter                 route by consistent hash, rolling swaps
      └── Shard (×N)            admission + worker pool + fallback chain
            ├── AdmissionController   quotas, capacity, deadlines → shed
            ├── WorkerSupervisor      forked workers, restarts, drain
            └── EstimatorService      in-process degradation chain

Every request gets an answer — worker, fallback chain, or heuristic
shed tier — so availability stays 1.0 under the whole chaos matrix
(worker crashes, hangs, slow workers, queue floods, model corruption,
failed swaps, exhausted restart budgets).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    ShardRequest,
)
from .hashing import HashRing, stable_hash
from .router import (
    RollingSwapReport,
    Shard,
    ShardRouter,
    ShardStats,
    routing_key,
)
from .supervisor import DispatchResult, WorkerSupervisor

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "DispatchResult",
    "HashRing",
    "RollingSwapReport",
    "Shard",
    "ShardRequest",
    "ShardRouter",
    "ShardStats",
    "WorkerSupervisor",
    "routing_key",
    "stable_hash",
]
