"""Validation-gated promotion: no candidate reaches serving unchecked.

The paper's Section 6 verdict — learned estimators can be *illogical*
(6.3) and silently wrong after shifts — means a freshly retrained model
must prove itself against the incumbent before it may serve.  The gate
runs three families of checks on the candidate:

1. **sanity** — validation answers must be finite and within
   ``[0, num_rows]`` (reusing :func:`repro.rules.enforce.is_sane`); a
   small ``max_insane_fraction`` is tolerated by default because an
   honest regression model occasionally overshoots ``num_rows``, and
   the serving layer clamps per-answer anyway — the check is aimed at
   NaN-storms and wholesale garbage;
2. **q-error non-regression** — the candidate's p50/p95 q-error on the
   validation workload may not exceed the incumbent's by more than
   ``regression_tolerance``;
3. **logical rules** — monotonicity and consistency violation rates
   (the Table 6 rule checker from :mod:`repro.rules`), judged *relative
   to the incumbent*: learned estimators violate these rules routinely
   (that is Section 6.3's headline), so an absolute bar would veto every
   honest candidate.  The candidate fails only when its violation rate
   exceeds ``max(max_violation_rate, incumbent rate + rule_slack)`` —
   i.e. it is allowed to be as illogical as the model it replaces, but
   not catastrophically more so.  ``rule_slack`` is wide by default
   because violation rates on a small probe set are noisy (Table 6's
   rates swing run to run); the check is a guard against pathological
   candidates, not a fine discriminator.

The outcome is a :class:`GateReport` listing every reason for rejection,
so a rollback is attributable, and lifecycle events/tests can assert the
exact failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import qerrors
from ..core.table import Table
from ..core.workload import Workload
from ..rules.checks import RuleReport, check_consistency, check_monotonicity
from ..rules.enforce import is_sane


@dataclass(frozen=True)
class GateReport:
    """Verdict of one candidate-vs-incumbent validation."""

    passed: bool
    reasons: tuple[str, ...]
    candidate_p50: float
    candidate_p95: float
    incumbent_p50: float
    incumbent_p95: float
    insane_fraction: float
    rule_reports: tuple[RuleReport, ...]

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        why = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return (
            f"{verdict}{why}: candidate p95={self.candidate_p95:.2f} "
            f"vs incumbent p95={self.incumbent_p95:.2f}"
        )


class PromotionGate:
    """Validates a retrained candidate before it may replace the incumbent."""

    def __init__(
        self,
        validation_queries,
        *,
        regression_tolerance: float = 1.15,
        max_insane_fraction: float = 0.05,
        max_violation_rate: float = 0.10,
        rule_slack: float = 0.50,
        rule_checks: int = 20,
        seed: int = 0,
    ) -> None:
        if regression_tolerance < 1.0:
            raise ValueError("regression_tolerance must be >= 1")
        if not 0.0 <= max_insane_fraction <= 1.0:
            raise ValueError("max_insane_fraction must be in [0, 1]")
        if not 0.0 <= max_violation_rate <= 1.0:
            raise ValueError("max_violation_rate must be in [0, 1]")
        if rule_slack < 0.0:
            raise ValueError("rule_slack must be non-negative")
        if rule_checks < 0:
            raise ValueError("rule_checks must be non-negative")
        self.validation_queries = list(validation_queries)
        if not self.validation_queries:
            raise ValueError("the gate needs at least one validation query")
        self.regression_tolerance = regression_tolerance
        self.max_insane_fraction = max_insane_fraction
        self.max_violation_rate = max_violation_rate
        self.rule_slack = rule_slack
        self.rule_checks = rule_checks
        self.seed = seed

    @classmethod
    def from_workload(cls, workload: Workload, **kwargs) -> "PromotionGate":
        return cls(list(workload.queries), **kwargs)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        candidate: CardinalityEstimator,
        incumbent: CardinalityEstimator,
        table: Table,
    ) -> GateReport:
        """Judge ``candidate`` against ``incumbent`` on ``table``.

        Both models answer the validation queries; ground truth comes
        from the (post-update) table itself, so the comparison reflects
        the data the candidate would actually serve.
        """
        queries = self.validation_queries
        actuals = table.cardinalities(queries)
        reasons: list[str] = []

        try:
            cand = np.asarray(candidate.estimate_many(queries), dtype=np.float64)
        except Exception as exc:
            # A candidate that cannot even answer is rejected outright.
            return GateReport(
                passed=False,
                reasons=(f"candidate raised: {exc}",),
                candidate_p50=float("inf"),
                candidate_p95=float("inf"),
                incumbent_p50=float("nan"),
                incumbent_p95=float("nan"),
                insane_fraction=1.0,
                rule_reports=(),
            )
        inc = np.asarray(incumbent.estimate_many(queries), dtype=np.float64)

        sane = np.array([is_sane(v, table.num_rows) for v in cand])
        insane_fraction = float(1.0 - np.mean(sane))
        if insane_fraction > self.max_insane_fraction:
            reasons.append(
                f"sanity: {insane_fraction:.1%} of validation answers "
                "NaN/inf/out-of-bounds"
            )

        cand_q = qerrors(np.where(sane, cand, 0.0), actuals)
        inc_q = qerrors(inc, actuals)
        cand_p50, cand_p95 = (
            float(np.percentile(cand_q, 50.0)),
            float(np.percentile(cand_q, 95.0)),
        )
        inc_p50, inc_p95 = (
            float(np.percentile(inc_q, 50.0)),
            float(np.percentile(inc_q, 95.0)),
        )
        if cand_p95 > inc_p95 * self.regression_tolerance:
            reasons.append(
                f"qerror regression: candidate p95 {cand_p95:.2f} > "
                f"{self.regression_tolerance:.2f}x incumbent p95 {inc_p95:.2f}"
            )

        rule_reports: list[RuleReport] = []
        if self.rule_checks > 0 and not reasons:
            # Rule checks issue extra model calls; skip them when the
            # candidate is already rejected on cheaper grounds.  Both
            # models see the same probe pairs (same seed) so the
            # comparison is apples to apples.
            for check in (check_monotonicity, check_consistency):
                rng = np.random.default_rng(self.seed)
                report = check(candidate, table, rng, num_checks=self.rule_checks)
                rule_reports.append(report)
                rng = np.random.default_rng(self.seed)
                inc_report = check(incumbent, table, rng, num_checks=self.rule_checks)
                allowed = max(
                    self.max_violation_rate,
                    inc_report.violation_rate + self.rule_slack,
                )
                if report.violation_rate > allowed:
                    reasons.append(
                        f"rule {report.rule}: violation rate "
                        f"{report.violation_rate:.1%} > allowed {allowed:.1%} "
                        f"(incumbent {inc_report.violation_rate:.1%})"
                    )

        return GateReport(
            passed=not reasons,
            reasons=tuple(reasons),
            candidate_p50=cand_p50,
            candidate_p95=cand_p95,
            incumbent_p50=inc_p50,
            incumbent_p95=inc_p95,
            insane_fraction=insane_fraction,
            rule_reports=tuple(rule_reports),
        )
