"""Crash-safe model lifecycle: checkpointed training, drift-triggered
retraining with retry/backoff, validation-gated promotion and rollback.

The dynamic environment of the paper's Section 5 is where learned
estimators earn or lose their keep: data updates arrive, the model must
retrain, and a stale or half-updated model silently corrupts the serving
path.  ``repro.lifecycle`` makes that loop robust:

* :mod:`~repro.lifecycle.checkpoint` — atomic, checksummed training
  checkpoints (:class:`CheckpointStore`) so a crashed retrain resumes
  from its last epoch instead of restarting;
* :mod:`~repro.lifecycle.drift` — :class:`DriftDetector`, q-error
  degradation on a held-out probe + row-growth triggers;
* :mod:`~repro.lifecycle.retrain` — :class:`RetrainJob`, the supervised
  attempt loop (per-attempt deadline, bounded retries, exponential
  backoff with jitter);
* :mod:`~repro.lifecycle.gate` — :class:`PromotionGate`, the
  candidate-vs-incumbent validation (sanity, q-error non-regression,
  logical rules);
* :mod:`~repro.lifecycle.manager` — :class:`ModelLifecycleManager`,
  the state machine wiring it all into an
  :class:`~repro.serve.EstimatorService` via atomic hot-swap promotion
  (with estimate-cache invalidation) and rollback-by-not-promoting.
"""

from .checkpoint import CHECKPOINT_KIND, Checkpoint, CheckpointStore
from .drift import DriftDecision, DriftDetector
from .gate import GateReport, PromotionGate
from .manager import (
    NO_DRIFT,
    PROMOTED,
    RETRAIN_FAILED,
    ROLLED_BACK,
    LifecycleReport,
    ModelLifecycleManager,
)
from .retrain import (
    AttemptRecord,
    AttemptTimeout,
    RetrainError,
    RetrainJob,
    RetrainReport,
    RetryPolicy,
)

__all__ = [
    "AttemptRecord",
    "AttemptTimeout",
    "CHECKPOINT_KIND",
    "Checkpoint",
    "CheckpointStore",
    "DriftDecision",
    "DriftDetector",
    "GateReport",
    "LifecycleReport",
    "ModelLifecycleManager",
    "NO_DRIFT",
    "PROMOTED",
    "PromotionGate",
    "RETRAIN_FAILED",
    "ROLLED_BACK",
    "RetrainError",
    "RetrainJob",
    "RetrainReport",
    "RetryPolicy",
]
