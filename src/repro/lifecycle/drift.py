"""Drift detection over the update stream (paper Section 5.1).

When data updates arrive, a learned estimator degrades silently — the
paper's Figures 6-8 quantify exactly how badly.  :class:`DriftDetector`
watches two cheap signals and decides when a retrain is warranted:

* **q-error degradation on a held-out probe workload**: the probe
  queries are relabelled against the *current* table (ground truth is a
  ``COUNT(*)`` scan, always available) and the incumbent's p95 q-error
  is compared to the baseline recorded at its last (re)fit;
* **row-count delta**: the fraction of rows appended since the baseline
  table — the paper's update procedure appends 20%, far past the
  default 10% trigger.

A third, *live* signal can be wired in: pass an
:class:`~repro.obs.slo.SloRegistry` and any currently-breached
per-tenant **accuracy SLO** (fed by the serving tier's
``record_actual()`` feedback) also trips the detector — production
traffic complaining is drift evidence the offline probe can't see.

Any signal past its threshold trips the detector.  The decision is a
:class:`DriftDecision` value object so callers (and tests) can see *why*
a retrain fired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import qerrors
from ..core.table import Table
from ..core.workload import Workload
from ..obs.slo import QERROR, SloRegistry


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check."""

    drifted: bool
    #: which signals fired, e.g. ("qerror", "rows", "slo")
    reasons: tuple[str, ...]
    qerror_p95: float
    baseline_p95: float
    row_growth: float
    #: tenants whose accuracy SLO was breached when the "slo" signal
    #: fired (empty otherwise)
    slo_tenants: tuple[str, ...] = ()

    @property
    def degradation(self) -> float:
        """Probe q-error relative to the baseline (1.0 = unchanged)."""
        return self.qerror_p95 / self.baseline_p95 if self.baseline_p95 else 1.0


class DriftDetector:
    """Decides when the incumbent model has drifted from the data."""

    def __init__(
        self,
        probe: Workload,
        *,
        degradation_factor: float = 2.0,
        row_growth_threshold: float = 0.10,
        slos: SloRegistry | None = None,
    ) -> None:
        if degradation_factor < 1.0:
            raise ValueError("degradation_factor must be >= 1")
        if row_growth_threshold <= 0.0:
            raise ValueError("row_growth_threshold must be positive")
        self.probe = probe
        self.degradation_factor = degradation_factor
        self.row_growth_threshold = row_growth_threshold
        #: optional live signal: breached accuracy SLOs count as drift
        self.slos = slos
        self._baseline_p95: float | None = None
        self._baseline_rows: int | None = None

    # ------------------------------------------------------------------
    def probe_p95(self, estimator: CardinalityEstimator, table: Table) -> float:
        """p95 q-error of ``estimator`` on the probe, labelled vs ``table``."""
        actuals = table.cardinalities(list(self.probe.queries))
        estimates = estimator.estimate_many(list(self.probe.queries))
        return float(np.percentile(qerrors(estimates, actuals), 95.0))

    def set_baseline(self, estimator: CardinalityEstimator, table: Table) -> float:
        """Record the healthy operating point (call after every (re)fit)."""
        self._baseline_p95 = self.probe_p95(estimator, table)
        self._baseline_rows = table.num_rows
        return self._baseline_p95

    @property
    def has_baseline(self) -> bool:
        return self._baseline_p95 is not None

    @property
    def baseline_p95(self) -> float | None:
        return self._baseline_p95

    def check(self, estimator: CardinalityEstimator, table: Table) -> DriftDecision:
        """Compare the incumbent on the current table to its baseline."""
        if self._baseline_p95 is None or self._baseline_rows is None:
            raise RuntimeError("call set_baseline before check")
        p95 = self.probe_p95(estimator, table)
        growth = (table.num_rows - self._baseline_rows) / max(self._baseline_rows, 1)
        reasons = []
        slo_tenants: tuple[str, ...] = ()
        if p95 > self._baseline_p95 * self.degradation_factor:
            reasons.append("qerror")
        if growth >= self.row_growth_threshold:
            reasons.append("rows")
        if self.slos is not None and self.slos.any_breached(QERROR):
            reasons.append("slo")
            slo_tenants = tuple(self.slos.breached_tenants(QERROR))
        return DriftDecision(
            drifted=bool(reasons),
            reasons=tuple(reasons),
            qerror_p95=p95,
            baseline_p95=self._baseline_p95,
            row_growth=growth,
            slo_tenants=slo_tenants,
        )
