"""Crash-safe training checkpoints.

A checkpoint is one :meth:`training_state` snapshot (model parameters,
optimizer moments, RNG position, loss history — see the resumable-
training protocol on :class:`~repro.estimators.learned.LwNnEstimator`)
written through :func:`repro.persistence.save_bundle`, i.e. into the
same checksummed container as estimator artifacts, with the same
atomic tmp+fsync+rename write discipline.  A crash mid-save therefore
leaves either the previous checkpoint set or the new one — never a torn
file that a resume would trust.

:class:`CheckpointStore` manages a directory of numbered checkpoints,
keeps the newest ``keep``, and on :meth:`latest` walks newest-to-oldest
**skipping anything that fails its checksum** (emitting a
``lifecycle.checkpoint.corrupt`` event), so a truncated checkpoint
degrades a resume by a few epochs instead of poisoning it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from ..obs import LIFECYCLE_CHECKPOINTS, EventLog, MetricsRegistry, get_events, get_registry
from ..persistence import PersistenceError, load_bundle, save_bundle

#: ``kind`` tag of checkpoint bundles in the persistence container.
CHECKPOINT_KIND = "training-checkpoint"

_CHECKPOINT_RE = re.compile(r"^ckpt_(\d{6})\.repro$")


@dataclass(frozen=True)
class Checkpoint:
    """One recovered checkpoint: the epoch it was taken at + the state."""

    epoch: int
    state: dict
    path: Path


class CheckpointStore:
    """A directory of numbered, checksummed training checkpoints."""

    def __init__(
        self,
        directory: str | Path,
        *,
        keep: int = 3,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be at least 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._events = events
        self._registry = registry
        self.saves = 0
        self.corrupt_skipped = 0

    # ------------------------------------------------------------------
    def path_for(self, epoch: int) -> Path:
        return self.directory / f"ckpt_{epoch:06d}.repro"

    def epochs(self) -> list[int]:
        """Epoch numbers of the checkpoints on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, state: dict, epoch: int) -> Path:
        """Atomically persist one snapshot; prunes beyond ``keep``."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        path = self.path_for(epoch)
        save_bundle({"epoch": epoch, "state": state}, path, kind=CHECKPOINT_KIND)
        self.saves += 1
        self._count("saved")
        for old in self.epochs()[: -self.keep]:
            self.path_for(old).unlink(missing_ok=True)
        return path

    def latest(self) -> Checkpoint | None:
        """Newest *loadable* checkpoint; corrupt ones are skipped.

        A checkpoint that fails its checksum (torn write, bit rot) emits
        a ``lifecycle.checkpoint.corrupt`` event and the walk falls back
        to the next-older one — a resume never trusts a corrupt file.
        """
        for epoch in reversed(self.epochs()):
            path = self.path_for(epoch)
            try:
                bundle = load_bundle(path, kind=CHECKPOINT_KIND)
            except PersistenceError as exc:
                self.corrupt_skipped += 1
                self._count("corrupt")
                self._obs_events().emit(
                    "lifecycle.checkpoint.corrupt",
                    path=str(path),
                    epoch=epoch,
                    error=str(exc),
                )
                continue
            return Checkpoint(epoch=int(bundle["epoch"]), state=bundle["state"], path=path)
        return None

    def clear(self) -> None:
        """Remove every checkpoint (training finished or abandoned)."""
        for epoch in self.epochs():
            self.path_for(epoch).unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self.epochs())

    # ------------------------------------------------------------------
    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _count(self, outcome: str) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        registry.counter(
            LIFECYCLE_CHECKPOINTS, "Training checkpoints, by outcome"
        ).inc(outcome=outcome)
