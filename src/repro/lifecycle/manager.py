"""The model-lifecycle manager: train -> validate -> promote -> serve.

:class:`ModelLifecycleManager` closes the loop the paper's Section 5
leaves open: data updates arrive, drift is detected, a *candidate* is
retrained under crash-safe supervision, validated against the incumbent,
and only then hot-swapped into the serving chain.  The incumbent keeps
answering every query throughout — stale but valid — so serving
availability is never sacrificed to a failing retrain.

State machine (one :meth:`on_update` call walks it):

.. code-block:: text

    idle --drift?--> training --success--> validating --pass--> promoted
      ^     |no        |retries exhausted      |fail
      |     v          v                       v
      +-- no-drift   retrain-failed         rolled-back
           (incumbent serves on, unchanged, in all non-promoted ends)

Every transition is emitted as a ``lifecycle.transition`` event and
counted in :data:`~repro.obs.LIFECYCLE_TRANSITIONS`; promotions and
rollbacks additionally update :data:`~repro.obs.LIFECYCLE_PROMOTIONS`
and the :data:`~repro.obs.LIFECYCLE_MODEL_GENERATION` gauge, so the
whole lifecycle is reconstructable from telemetry alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.table import Table
from ..core.workload import Workload
from ..obs import (
    LIFECYCLE_MODEL_GENERATION,
    LIFECYCLE_PROMOTIONS,
    LIFECYCLE_TRANSITIONS,
    EventLog,
    MetricsRegistry,
    SpanCollector,
    get_events,
    get_registry,
    span,
)
from ..serve.service import EstimatorService
from .checkpoint import CheckpointStore
from .drift import DriftDecision, DriftDetector
from .gate import GateReport, PromotionGate
from .retrain import RetrainJob, RetrainReport, RetryPolicy

#: Terminal states of one lifecycle pass.
NO_DRIFT = "no-drift"
PROMOTED = "promoted"
ROLLED_BACK = "rolled-back"
RETRAIN_FAILED = "retrain-failed"


@dataclass(frozen=True)
class LifecycleReport:
    """Everything one :meth:`ModelLifecycleManager.on_update` pass did."""

    #: terminal state: no-drift | promoted | rolled-back | retrain-failed
    state: str
    drift: DriftDecision
    retrain: RetrainReport | None
    gate: GateReport | None
    #: service model generation after the pass
    generation: int

    @property
    def promoted(self) -> bool:
        return self.state == PROMOTED


class ModelLifecycleManager:
    """Owns the incumbent model's whole retrain/promote/rollback loop."""

    def __init__(
        self,
        service: EstimatorService,
        candidate_factory: Callable[[], CardinalityEstimator],
        detector: DriftDetector,
        *,
        checkpoint_dir: str | Path,
        gate: PromotionGate | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_every: int = 1,
        checkpoint_keep: int = 3,
        attempt_deadline_seconds: float | None = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
        collector: SpanCollector | None = None,
        quarantine=None,
    ) -> None:
        self.service = service
        #: optional guard QuarantineMonitor — a gate-passed promotion
        #: supersedes any standing quarantine of the old primary
        self.quarantine = quarantine
        self.candidate_factory = candidate_factory
        self.detector = detector
        self.gate = gate or PromotionGate(list(detector.probe.queries), seed=seed)
        self.policy = policy or RetryPolicy()
        self.store = CheckpointStore(
            checkpoint_dir, keep=checkpoint_keep, events=events, registry=registry
        )
        self.checkpoint_every = checkpoint_every
        self.attempt_deadline_seconds = attempt_deadline_seconds
        self.seed = seed
        self._clock = clock
        self._sleep = sleep
        self._events = events
        self._registry = registry
        self._collector = collector
        self.state = "idle"
        self.passes = 0
        if not self.detector.has_baseline:
            self.detector.set_baseline(self.incumbent, service.table)

    # ------------------------------------------------------------------
    @property
    def incumbent(self) -> CardinalityEstimator:
        """The currently serving primary model."""
        return self.service.primary_estimator

    @property
    def generation(self) -> int:
        return self.service.model_generation

    # ------------------------------------------------------------------
    def on_update(
        self,
        new_table: Table,
        appended: np.ndarray,
        workload: Workload | None = None,
    ) -> LifecycleReport:
        """React to a data update: check drift, maybe retrain + promote.

        ``workload`` is the fresh training workload labelled against
        ``new_table`` (required when the candidate is query-driven).
        The incumbent — and the whole serving chain — is left untouched
        unless a candidate passes the gate, so a crashing, flaky, or
        regressed retrain can never take serving down.
        """
        self.passes += 1
        with span(
            "lifecycle.pass", collector=self._collector, generation=self.generation
        ):
            decision = self.detector.check(self.incumbent, new_table)
            self._obs_events().emit(
                "lifecycle.drift",
                drifted=decision.drifted,
                reasons=",".join(decision.reasons),
                qerror_p95=decision.qerror_p95,
                baseline_p95=decision.baseline_p95,
                row_growth=decision.row_growth,
            )
            if not decision.drifted:
                self._transition(NO_DRIFT)
                return LifecycleReport(
                    state=NO_DRIFT,
                    drift=decision,
                    retrain=None,
                    gate=None,
                    generation=self.generation,
                )
            return self._retrain_and_promote(decision, new_table, workload)

    def force_retrain(
        self, new_table: Table, workload: Workload | None = None
    ) -> LifecycleReport:
        """Run the retrain/validate/promote pass regardless of drift."""
        self.passes += 1
        decision = self.detector.check(self.incumbent, new_table)
        return self._retrain_and_promote(decision, new_table, workload)

    # ------------------------------------------------------------------
    def _retrain_and_promote(
        self,
        decision: DriftDecision,
        new_table: Table,
        workload: Workload | None,
    ) -> LifecycleReport:
        self._transition("training")
        candidate = self.candidate_factory()
        job = RetrainJob(
            candidate,
            new_table,
            workload,
            store=self.store,
            policy=self.policy,
            checkpoint_every=self.checkpoint_every,
            attempt_deadline_seconds=self.attempt_deadline_seconds,
            seed=self.seed,
            clock=self._clock,
            sleep=self._sleep,
            events=self._events,
            registry=self._registry,
            collector=self._collector,
        )
        retrain = job.run()
        if not retrain.succeeded:
            # Incumbent keeps serving; checkpoints stay on disk so the
            # next pass resumes instead of restarting.
            self._transition(RETRAIN_FAILED, attempts=retrain.total_attempts)
            return LifecycleReport(
                state=RETRAIN_FAILED,
                drift=decision,
                retrain=retrain,
                gate=None,
                generation=self.generation,
            )

        self._transition("validating")
        with span("lifecycle.validate", collector=self._collector):
            report = self.gate.evaluate(candidate, self.incumbent, new_table)
        self._obs_events().emit(
            "lifecycle.validated",
            passed=report.passed,
            reasons="; ".join(report.reasons),
            candidate_p95=report.candidate_p95,
            incumbent_p95=report.incumbent_p95,
        )
        if report.passed:
            return self._promote(decision, retrain, report, candidate, new_table)
        return self._rollback(decision, retrain, report)

    def _promote(
        self,
        decision: DriftDecision,
        retrain: RetrainReport,
        report: GateReport,
        candidate: CardinalityEstimator,
        new_table: Table,
    ) -> LifecycleReport:
        self.service.replace_primary(candidate)
        if self.quarantine is not None:
            self.quarantine.on_promotion()
        self.detector.set_baseline(candidate, new_table)
        self._transition(PROMOTED, generation=self.generation)
        self._count_promotion(PROMOTED)
        self._obs_registry().gauge(
            LIFECYCLE_MODEL_GENERATION, "Serving model generation"
        ).set(self.generation)
        return LifecycleReport(
            state=PROMOTED,
            drift=decision,
            retrain=retrain,
            gate=report,
            generation=self.generation,
        )

    def _rollback(
        self, decision: DriftDecision, retrain: RetrainReport, report: GateReport
    ) -> LifecycleReport:
        # "Rollback" is a non-event by construction: the incumbent was
        # never unplugged, so rejecting the candidate is just... not
        # promoting it.  The event still narrates why.
        self._transition(ROLLED_BACK, reasons="; ".join(report.reasons))
        self._count_promotion(ROLLED_BACK)
        return LifecycleReport(
            state=ROLLED_BACK,
            drift=decision,
            retrain=retrain,
            gate=report,
            generation=self.generation,
        )

    # ------------------------------------------------------------------
    def _transition(self, state: str, **fields) -> None:
        previous, self.state = self.state, state
        self._obs_events().emit(
            "lifecycle.transition", state=state, previous=previous, **fields
        )
        self._obs_registry().counter(
            LIFECYCLE_TRANSITIONS, "Lifecycle state transitions"
        ).inc(state=state)

    def _count_promotion(self, outcome: str) -> None:
        self._obs_registry().counter(
            LIFECYCLE_PROMOTIONS, "Promotion-gate outcomes"
        ).inc(outcome=outcome)

    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()
