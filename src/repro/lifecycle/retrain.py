"""Retraining as a supervised job: checkpoints, retries, backoff.

:class:`RetrainJob` owns one attempt-loop around training a candidate
estimator.  For estimators implementing the resumable-training protocol
(``supports_resumable_training``) it drives training in
``checkpoint_every``-epoch chunks, persisting a
:class:`~repro.lifecycle.checkpoint.CheckpointStore` snapshot after each
chunk — so a crash (injected or real) costs at most ``checkpoint_every``
epochs: the next attempt **resumes from the last good checkpoint instead
of restarting from epoch 0**.

Attempts are bounded by :class:`RetryPolicy` (max attempts, exponential
backoff with seeded jitter) and by a cooperative per-attempt deadline:
the clock is checked between epoch chunks, so a hanging attempt is
abandoned with :class:`AttemptTimeout` at the next chunk boundary and
its progress survives in the checkpoint store.

``clock`` and ``sleep`` are injectable for tests (and the bench harness
uses ``sleep`` as a hook to keep serving probe traffic during backoff,
proving availability through a failing retrain).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.table import Table
from ..core.workload import Workload
from ..obs import (
    LIFECYCLE_RETRAIN_ATTEMPTS,
    EventLog,
    MetricsRegistry,
    SpanCollector,
    get_events,
    get_registry,
    span,
)
from .checkpoint import CheckpointStore


class RetrainError(RuntimeError):
    """A retrain attempt failed."""


class AttemptTimeout(RetrainError):
    """An attempt exceeded its per-attempt deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter."""

    max_attempts: int = 3
    backoff_base_seconds: float = 0.5
    backoff_cap_seconds: float = 30.0
    #: relative jitter: each backoff is scaled by 1 +/- jitter
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_seconds < 0.0 or self.backoff_cap_seconds < 0.0:
            raise ValueError("backoff seconds must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2.0**attempt),
        )
        return raw * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))


@dataclass(frozen=True)
class AttemptRecord:
    """What happened in one attempt of the retry loop."""

    attempt: int
    #: "succeeded" | "timeout" | "error"
    outcome: str
    #: epoch resumed from (0 = fresh start); None for non-resumable fits
    resumed_from_epoch: int | None
    epochs_run: int
    error: str | None
    #: backoff slept after this attempt (0.0 for the last / a success)
    backoff_seconds: float


@dataclass(frozen=True)
class RetrainReport:
    """Outcome of a whole :class:`RetrainJob` run."""

    succeeded: bool
    attempts: tuple[AttemptRecord, ...] = field(default_factory=tuple)

    @property
    def total_attempts(self) -> int:
        return len(self.attempts)

    @property
    def resumed(self) -> bool:
        """True when any attempt continued from a saved checkpoint."""
        return any((a.resumed_from_epoch or 0) > 0 for a in self.attempts)

    @property
    def total_epochs_run(self) -> int:
        return sum(a.epochs_run for a in self.attempts)


class RetrainJob:
    """Train ``estimator`` on ``table``/``workload`` under supervision."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        table: Table,
        workload: Workload | None,
        *,
        store: CheckpointStore | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_every: int = 1,
        attempt_deadline_seconds: float | None = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
        collector: SpanCollector | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if attempt_deadline_seconds is not None and attempt_deadline_seconds <= 0.0:
            raise ValueError("attempt_deadline_seconds must be positive")
        self.estimator = estimator
        self.table = table
        self.workload = workload
        self.store = store
        self.policy = policy or RetryPolicy()
        self.checkpoint_every = checkpoint_every
        self.attempt_deadline_seconds = attempt_deadline_seconds
        self._rng = np.random.default_rng(seed)
        self._clock = clock
        self._sleep = sleep
        self._events = events
        self._registry = registry
        self._collector = collector

    # ------------------------------------------------------------------
    @property
    def resumable(self) -> bool:
        return bool(getattr(self.estimator, "supports_resumable_training", False))

    def run(self) -> RetrainReport:
        """Execute the attempt loop; never raises on training failure."""
        records: list[AttemptRecord] = []
        with span(
            "lifecycle.retrain",
            collector=self._collector,
            estimator=self.estimator.name,
            resumable=self.resumable,
        ):
            for attempt in range(self.policy.max_attempts):
                self._obs_events().emit(
                    "lifecycle.retrain.attempt",
                    attempt=attempt,
                    estimator=self.estimator.name,
                )
                epochs_before = self._epochs_trained()
                self._attempt_resumed_from: int | None = None
                try:
                    resumed_from = self._attempt()
                except Exception as exc:
                    # A failed attempt may still have resumed (and made
                    # progress) before dying; report where it started.
                    resumed_from = self._attempt_resumed_from
                    outcome = (
                        "timeout" if isinstance(exc, AttemptTimeout) else "error"
                    )
                    self._count_attempt(outcome)
                    backoff = 0.0
                    last = attempt == self.policy.max_attempts - 1
                    if not last:
                        backoff = self.policy.backoff_seconds(attempt, self._rng)
                    self._obs_events().emit(
                        "lifecycle.retrain.failed",
                        attempt=attempt,
                        outcome=outcome,
                        error=str(exc),
                        backoff_seconds=backoff,
                    )
                    records.append(
                        AttemptRecord(
                            attempt=attempt,
                            outcome=outcome,
                            resumed_from_epoch=resumed_from,
                            epochs_run=max(
                                0, self._epochs_trained() - epochs_before
                            ),
                            error=str(exc),
                            backoff_seconds=backoff,
                        )
                    )
                    if not last:
                        self._sleep(backoff)
                    continue
                self._count_attempt("succeeded")
                records.append(
                    AttemptRecord(
                        attempt=attempt,
                        outcome="succeeded",
                        resumed_from_epoch=resumed_from,
                        epochs_run=max(0, self._epochs_trained() - epochs_before),
                        error=None,
                        backoff_seconds=0.0,
                    )
                )
                if self.store is not None:
                    # Training completed; checkpoints have served their
                    # purpose, and the next retrain must start fresh.
                    self.store.clear()
                self._obs_events().emit(
                    "lifecycle.retrain.succeeded",
                    attempt=attempt,
                    estimator=self.estimator.name,
                )
                return RetrainReport(succeeded=True, attempts=tuple(records))
        self._obs_events().emit(
            "lifecycle.retrain.exhausted",
            attempts=self.policy.max_attempts,
            estimator=self.estimator.name,
        )
        return RetrainReport(succeeded=False, attempts=tuple(records))

    # ------------------------------------------------------------------
    def _attempt(self) -> int | None:
        if not self.resumable:
            # No mid-training checkpoints possible: the whole fit is one
            # unit of work per attempt.
            self.estimator.fit(self.table, self.workload)
            return None

        est = self.estimator
        checkpoint = self.store.latest() if self.store is not None else None
        if checkpoint is not None:
            est.restore_training(self.table, self.workload, checkpoint.state)
            resumed_from = checkpoint.epoch
            self._obs_events().emit(
                "lifecycle.retrain.resume",
                epoch=checkpoint.epoch,
                estimator=est.name,
            )
        else:
            est.begin_training(self.table, self.workload)
            resumed_from = 0
        self._attempt_resumed_from = resumed_from

        target = est.target_epochs
        start = self._clock()
        while est.epochs_trained < target:
            if (
                self.attempt_deadline_seconds is not None
                and self._clock() - start > self.attempt_deadline_seconds
            ):
                raise AttemptTimeout(
                    f"attempt exceeded {self.attempt_deadline_seconds}s "
                    f"at epoch {est.epochs_trained}/{target}"
                )
            chunk = min(self.checkpoint_every, target - est.epochs_trained)
            est.train_epochs(self.workload, chunk)
            if self.store is not None:
                self.store.save(est.training_state(), est.epochs_trained)
        return resumed_from

    def _epochs_trained(self) -> int:
        return int(getattr(self.estimator, "epochs_trained", 0) or 0)

    # ------------------------------------------------------------------
    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _count_attempt(self, outcome: str) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        registry.counter(
            LIFECYCLE_RETRAIN_ATTEMPTS, "Retrain attempts, by outcome"
        ).inc(outcome=outcome)
