"""Fault-injection harness: seeded, composable estimator wrappers that
misbehave on purpose, used to prove the serving layer degrades
gracefully, the model lifecycle recovers from crashes, and the sharded
serving tier survives worker-level chaos."""

from .wrappers import (
    CorruptionFault,
    CrashAtEpochFault,
    ExceptionFault,
    FaultInjector,
    FlakyRetrainFault,
    HangingRetrainFault,
    LatencyFault,
    NaNFault,
    SimulatedCrash,
    SlowWorkerFault,
    StaleModelFault,
    WorkerCrashFault,
    WorkerHangFault,
    queue_flood,
    truncate_file,
)

__all__ = [
    "CorruptionFault",
    "CrashAtEpochFault",
    "ExceptionFault",
    "FaultInjector",
    "FlakyRetrainFault",
    "HangingRetrainFault",
    "LatencyFault",
    "NaNFault",
    "SimulatedCrash",
    "SlowWorkerFault",
    "StaleModelFault",
    "WorkerCrashFault",
    "WorkerHangFault",
    "queue_flood",
    "truncate_file",
]
