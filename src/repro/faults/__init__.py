"""Fault-injection harness: seeded, composable estimator wrappers that
misbehave on purpose, used to prove the serving layer degrades
gracefully, the model lifecycle recovers from crashes, the sharded
serving tier survives worker-level chaos, and the guard tier catches
adversarial plausible-but-wrong estimates."""

from .wrappers import (
    CorrelatedShiftFault,
    CorruptionFault,
    CrashAtEpochFault,
    DomainShiftFault,
    ExceptionFault,
    FaultInjector,
    FlakyRetrainFault,
    HangingRetrainFault,
    LatencyFault,
    NaNFault,
    SimulatedCrash,
    SlowWorkerFault,
    StaleModelFault,
    UpdateSkewFault,
    WorkerCrashFault,
    WorkerHangFault,
    queue_flood,
    truncate_file,
)

__all__ = [
    "CorrelatedShiftFault",
    "CorruptionFault",
    "CrashAtEpochFault",
    "DomainShiftFault",
    "ExceptionFault",
    "FaultInjector",
    "FlakyRetrainFault",
    "HangingRetrainFault",
    "LatencyFault",
    "NaNFault",
    "SimulatedCrash",
    "SlowWorkerFault",
    "StaleModelFault",
    "UpdateSkewFault",
    "WorkerCrashFault",
    "WorkerHangFault",
    "queue_flood",
    "truncate_file",
]
