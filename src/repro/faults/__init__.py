"""Fault-injection harness: seeded, composable estimator wrappers that
misbehave on purpose, used to prove the serving layer degrades
gracefully."""

from .wrappers import (
    CorruptionFault,
    ExceptionFault,
    FaultInjector,
    LatencyFault,
    NaNFault,
    StaleModelFault,
)

__all__ = [
    "CorruptionFault",
    "ExceptionFault",
    "FaultInjector",
    "LatencyFault",
    "NaNFault",
    "StaleModelFault",
]
