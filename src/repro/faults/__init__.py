"""Fault-injection harness: seeded, composable estimator wrappers that
misbehave on purpose, used to prove the serving layer degrades
gracefully and the model lifecycle recovers from crashes."""

from .wrappers import (
    CorruptionFault,
    CrashAtEpochFault,
    ExceptionFault,
    FaultInjector,
    FlakyRetrainFault,
    HangingRetrainFault,
    LatencyFault,
    NaNFault,
    SimulatedCrash,
    StaleModelFault,
    truncate_file,
)

__all__ = [
    "CorruptionFault",
    "CrashAtEpochFault",
    "ExceptionFault",
    "FaultInjector",
    "FlakyRetrainFault",
    "HangingRetrainFault",
    "LatencyFault",
    "NaNFault",
    "SimulatedCrash",
    "StaleModelFault",
    "truncate_file",
]
