"""Composable fault-injecting estimator wrappers.

Each wrapper implements the estimator protocol around an inner
estimator and misbehaves on a seeded schedule, reproducing the failure
modes the paper documents (and the ones operations people meet in
production):

* :class:`LatencyFault` — estimates stall, blowing the serving deadline.
* :class:`ExceptionFault` — estimates raise.
* :class:`NaNFault` — estimates come back NaN (or any chosen garbage
  value, e.g. ``inf``), bypassing the base-class clamp exactly like a
  buggy model wrapper would.
* :class:`CorruptionFault` — the model's numpy arrays are perturbed in
  place once, simulating a corrupted/bad artifact shipped to serving.
* :class:`StaleModelFault` — ``update()`` silently does nothing, so the
  model keeps answering from pre-update state (the Section 5 staleness
  hazard, composable with :mod:`repro.dynamic`'s environment machinery).

Faults fire with probability ``probability`` per call after the first
``after`` calls (and, when ``until`` is set, only through call number
``until`` — a bounded incident window), driven by a dedicated ``numpy``
generator, so a given ``seed`` yields an identical fault schedule on
every run.

**Adversarial distribution faults** produce *plausible-looking but
systematically wrong* answers — the guardrail hazards
:mod:`repro.guard` defends against (none of them trip the NaN/inf
sanity checks; only provable bounds, OOD detection, or q-error
quarantine catch them):

* :class:`CorrelatedShiftFault` — estimates are inflated by
  ``magnitude`` per predicate, the signature of an independence
  assumption meeting correlated columns.
* :class:`DomainShiftFault` — queries are answered as if translated
  across the column domain, the signature of a model trained on a
  different region of the data than it is serving.
* :class:`UpdateSkewFault` — ``update()`` forwards only a biased slice
  of the appended rows, so the model's view of the table silently
  drifts from the truth with every update.

**Update-path faults** target the training/retraining lifecycle instead
of the query path (the hazards :mod:`repro.lifecycle` defends against):

* :class:`CrashAtEpochFault` — training dies with :class:`SimulatedCrash`
  when it reaches a chosen epoch, a configurable number of times.
* :class:`FlakyRetrainFault` — the first N retrain attempts fail at
  startup (transient infrastructure trouble).
* :class:`HangingRetrainFault` — epochs stall, blowing the retrain
  job's per-attempt deadline.

**Worker-level faults** target a forked serving worker rather than the
model (the hazards :mod:`repro.shard`'s supervisor defends against):

* :class:`WorkerCrashFault` — the hosting *process* dies mid-estimate
  (``os._exit``; injectable for in-process unit tests), so a sharded
  worker disappears mid-batch exactly like an OOM kill.
* :class:`WorkerHangFault` — an estimate stalls far past any heartbeat
  or request deadline (injectable sleep), simulating a wedged worker.
* :class:`SlowWorkerFault` — every *batch* pays a fixed delay,
  simulating a degraded-but-alive worker (distinct from
  :class:`LatencyFault`, which stalls per query).

:func:`queue_flood` is the matching traffic generator: it tiles a
workload into a seeded burst that overflows any bounded admission queue.

All fault wrappers transparently delegate the resumable-training
protocol (``begin_training`` / ``train_epochs`` / ``training_state`` /
``restore_training``) to the wrapped estimator, so a fault-wrapped
candidate drops straight into a :class:`repro.lifecycle.RetrainJob`.
:func:`truncate_file` simulates a torn checkpoint on disk.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Predicate, Query
from ..core.table import Table
from ..core.workload import Workload


class SimulatedCrash(RuntimeError):
    """An injected process death during training (see CrashAtEpochFault)."""


def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Chop a file to its leading ``keep_fraction`` — a torn write.

    Simulates the crash-mid-write hazard the checkpoint/artifact layer
    must survive: the truncated file still exists at the final path but
    fails its content checksum.  Returns the new size in bytes.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    size = os.path.getsize(path)
    kept = int(size * keep_fraction)
    os.truncate(path, kept)
    return kept


class FaultInjector(CardinalityEstimator):
    """Base wrapper: delegate to ``inner``, inject a fault on schedule.

    Subclasses override :meth:`_fault`.  The public :meth:`estimate` is
    overridden (rather than ``_estimate``) so injected garbage reaches
    the caller unclamped — the whole point is to exercise the serving
    layer's defenses, not the base class's.
    """

    kind = "fault"

    def __init__(
        self,
        inner: CardinalityEstimator,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        until: int | None = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if after < 0:
            raise ValueError("after must be non-negative")
        if until is not None and until < after:
            raise ValueError("until must be >= after")
        self.inner = inner
        self.probability = probability
        self.after = after
        self.until = until
        self.name = f"{self.kind}({inner.name})"
        self.requires_workload = inner.requires_workload
        self._rng = np.random.default_rng(seed)
        self._calls = 0
        self.faults_fired = 0
        # Adopt an already-fitted inner estimator.
        try:
            self._table = inner.table
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        self.inner.fit(table, workload)

    def _update(self, table: Table, appended, workload: Workload | None) -> None:
        self.inner.update(table, appended, workload)

    def _scheduled(self) -> bool:
        """Roll the seeded schedule for the current call number."""
        if self._calls <= self.after:
            return False
        if self.until is not None and self._calls > self.until:
            return False
        return self._rng.random() < self.probability

    def estimate(self, query: Query) -> float:
        if self._table is None:
            raise RuntimeError(f"{self.name} must be fit before estimating")
        self._calls += 1
        if self._scheduled():
            self.faults_fired += 1
            return self._fault(query)
        return self.inner.estimate(query)

    def estimate_many(self, queries) -> np.ndarray:
        """Batch path: one scheduled fault roll per query, unclamped.

        The base class's batched dispatch would clamp/sanitize through
        ``_estimate_batch``; faults must reach the caller raw (NaN, inf,
        exceptions), so the batch is routed through the overridden
        :meth:`estimate` — the fault schedule advances exactly as if the
        queries had been served one by one.
        """
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)

    def _estimate(self, query: Query) -> float:
        return self.inner.estimate(query)

    def model_size_bytes(self) -> int:
        return self.inner.model_size_bytes()

    # ------------------------------------------------------------------
    # Resumable-training protocol: transparent delegation, so a
    # fault-wrapped estimator can be driven by repro.lifecycle's
    # checkpointing trainer.  Update-path faults override pieces.
    # ------------------------------------------------------------------
    @property
    def supports_resumable_training(self) -> bool:  # type: ignore[override]
        return getattr(self.inner, "supports_resumable_training", False)

    @property
    def epochs_trained(self) -> int:
        return self.inner.epochs_trained

    @property
    def target_epochs(self) -> int:
        return self.inner.target_epochs

    def begin_training(self, table: Table, workload: Workload) -> None:
        self.inner.begin_training(table, workload)
        self._table = table

    def train_epochs(self, workload: Workload, epochs: int) -> None:
        self.inner.train_epochs(workload, epochs)

    def training_state(self) -> dict:
        return self.inner.training_state()

    def restore_training(self, table: Table, workload: Workload, state: dict) -> None:
        self.inner.restore_training(table, workload, state)
        self._table = table

    # ------------------------------------------------------------------
    def _fault(self, query: Query) -> float:
        """Produce one faulty response (may raise or stall)."""
        raise NotImplementedError


class LatencyFault(FaultInjector):
    """Stall for ``delay_seconds`` before answering correctly."""

    kind = "latency"

    def __init__(
        self,
        inner: CardinalityEstimator,
        delay_seconds: float = 0.05,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
    ) -> None:
        super().__init__(inner, probability, seed, after)
        if delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")
        self.delay_seconds = delay_seconds

    def _fault(self, query: Query) -> float:
        time.sleep(self.delay_seconds)
        return self.inner.estimate(query)


class ExceptionFault(FaultInjector):
    """Raise instead of answering."""

    kind = "exception"

    def __init__(
        self,
        inner: CardinalityEstimator,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        message: str = "injected estimator fault",
    ) -> None:
        super().__init__(inner, probability, seed, after)
        self.message = message

    def _fault(self, query: Query) -> float:
        raise RuntimeError(self.message)


class NaNFault(FaultInjector):
    """Answer with NaN (or any chosen garbage value, e.g. ``inf``)."""

    kind = "nan"

    def __init__(
        self,
        inner: CardinalityEstimator,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        value: float = float("nan"),
    ) -> None:
        super().__init__(inner, probability, seed, after)
        self.value = float(value)

    def _fault(self, query: Query) -> float:
        return self.value


class CorruptionFault(FaultInjector):
    """Perturb the inner model's float arrays once — a bad artifact.

    On the first scheduled firing, every float ndarray reachable from
    the inner estimator (model weights, histogram counts, SPN
    parameters; the training :class:`Table` itself is left alone) gets
    additive Gaussian noise of ``magnitude`` standard deviations.  From
    then on the corrupted model answers natively — typically garbage,
    often out of bounds, exactly what a truncated or bit-flipped
    artifact produces after a clean unpickle.
    """

    kind = "corruption"

    def __init__(
        self,
        inner: CardinalityEstimator,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        magnitude: float = 5.0,
    ) -> None:
        super().__init__(inner, probability, seed, after)
        if magnitude <= 0.0:
            raise ValueError("magnitude must be positive")
        self.magnitude = magnitude
        self.corrupted = False
        self.arrays_corrupted = 0

    def _fault(self, query: Query) -> float:
        if not self.corrupted:
            self.corrupted = True
            self.arrays_corrupted = self._corrupt(self.inner, set(), depth=0)
        return self.inner.estimate(query)

    def _corrupt(self, obj, seen: set[int], depth: int) -> int:
        if id(obj) in seen or depth > 8:
            return 0
        seen.add(id(obj))
        count = 0
        if isinstance(obj, np.ndarray):
            if np.issubdtype(obj.dtype, np.floating) and obj.size:
                scale = self.magnitude * (float(obj.std()) + 1.0)
                obj += self._rng.normal(0.0, scale, size=obj.shape)
                count += 1
            return count
        if isinstance(obj, Table):
            return 0  # corrupt the model, not the data it was built from
        if isinstance(obj, dict):
            values = obj.values()
        elif isinstance(obj, (list, tuple, set, frozenset)):
            values = obj
        elif hasattr(obj, "__dict__"):
            values = vars(obj).values()
        else:
            return 0
        for value in values:
            count += self._corrupt(value, seen, depth + 1)
        return count


class CrashAtEpochFault(FaultInjector):
    """Kill training when it reaches ``crash_epoch``, ``times`` times.

    Models the mid-retrain process death of the lifecycle story: the
    wrapper delegates training epoch by epoch and raises
    :class:`SimulatedCrash` the moment the wrapped estimator's epoch
    counter reaches ``crash_epoch`` (each crash consumes one of
    ``times``; afterwards training proceeds normally, e.g. after a
    resume from checkpoint).  Query-path behaviour is untouched.
    """

    kind = "crash-at-epoch"

    def __init__(
        self,
        inner: CardinalityEstimator,
        crash_epoch: int,
        times: int = 1,
    ) -> None:
        super().__init__(inner, probability=0.0)
        if crash_epoch < 0:
            raise ValueError("crash_epoch must be non-negative")
        if times < 0:
            raise ValueError("times must be non-negative")
        self.crash_epoch = crash_epoch
        self.crashes_left = times
        self.crashes_fired = 0

    def train_epochs(self, workload: Workload, epochs: int) -> None:
        for _ in range(epochs):
            if self.crashes_left and self.inner.epochs_trained >= self.crash_epoch:
                self.crashes_left -= 1
                self.crashes_fired += 1
                raise SimulatedCrash(
                    f"injected crash at epoch {self.inner.epochs_trained}"
                )
            self.inner.train_epochs(workload, 1)

    def _fault(self, query: Query) -> float:  # pragma: no cover - never fires
        return self.inner.estimate(query)


class FlakyRetrainFault(FaultInjector):
    """The first ``fail_attempts`` training attempts die at startup.

    Each call to :meth:`begin_training` or :meth:`restore_training`
    counts as one attempt; transient infrastructure failures (OOM kills,
    lost workers) present exactly like this to a retry loop.
    """

    kind = "flaky-retrain"

    def __init__(self, inner: CardinalityEstimator, fail_attempts: int = 2) -> None:
        super().__init__(inner, probability=0.0)
        if fail_attempts < 0:
            raise ValueError("fail_attempts must be non-negative")
        self.fail_attempts = fail_attempts
        self.attempts = 0

    def _maybe_fail(self) -> None:
        self.attempts += 1
        if self.attempts <= self.fail_attempts:
            raise RuntimeError(
                f"injected flaky retrain failure (attempt {self.attempts})"
            )

    def begin_training(self, table: Table, workload: Workload) -> None:
        self._maybe_fail()
        super().begin_training(table, workload)

    def restore_training(self, table: Table, workload: Workload, state: dict) -> None:
        self._maybe_fail()
        super().restore_training(table, workload, state)

    def _fault(self, query: Query) -> float:  # pragma: no cover - never fires
        return self.inner.estimate(query)


class HangingRetrainFault(FaultInjector):
    """Epochs stall for ``hang_seconds`` during the first ``hang_attempts``
    training attempts, blowing any per-attempt deadline.

    The stall happens *before* each delegated epoch chunk, so a
    cooperative deadline check (see
    :class:`repro.lifecycle.RetrainJob`) observes the overrun after the
    chunk returns and abandons the attempt; later attempts run clean.
    """

    kind = "hanging-retrain"

    def __init__(
        self,
        inner: CardinalityEstimator,
        hang_seconds: float = 0.05,
        hang_attempts: int = 1,
    ) -> None:
        super().__init__(inner, probability=0.0)
        if hang_seconds < 0.0:
            raise ValueError("hang_seconds must be non-negative")
        if hang_attempts < 0:
            raise ValueError("hang_attempts must be non-negative")
        self.hang_seconds = hang_seconds
        self.hang_attempts = hang_attempts
        self.attempts = 0
        self.hangs_fired = 0

    def begin_training(self, table: Table, workload: Workload) -> None:
        self.attempts += 1
        super().begin_training(table, workload)

    def restore_training(self, table: Table, workload: Workload, state: dict) -> None:
        self.attempts += 1
        super().restore_training(table, workload, state)

    def train_epochs(self, workload: Workload, epochs: int) -> None:
        if self.attempts <= self.hang_attempts:
            self.hangs_fired += 1
            time.sleep(self.hang_seconds)
        self.inner.train_epochs(workload, epochs)

    def _fault(self, query: Query) -> float:  # pragma: no cover - never fires
        return self.inner.estimate(query)


class WorkerCrashFault(FaultInjector):
    """Kill the hosting process mid-estimate — a serving worker dying.

    When the seeded schedule fires, the wrapper terminates the *process*
    via ``os._exit(exit_code)`` (no cleanup, no exception propagation —
    exactly what an OOM kill or segfault looks like from the parent's
    end of the pipe).  Inside a forked :mod:`repro.shard` worker the
    supervisor observes a dead pipe mid-batch; that is the scenario this
    wrapper exists to produce.

    Unit tests run in the parent process, so ``_exit`` is injectable:
    pass a callable (e.g. one raising :class:`SimulatedCrash`) and it is
    invoked instead of ``os._exit``.
    """

    kind = "worker-crash"

    def __init__(
        self,
        inner: CardinalityEstimator,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        exit_code: int = 3,
        _exit: Callable[[int], None] | None = None,
    ) -> None:
        super().__init__(inner, probability, seed, after)
        self.exit_code = exit_code
        self._exit = os._exit if _exit is None else _exit

    def _fault(self, query: Query) -> float:
        self._exit(self.exit_code)
        # Only reachable with an injected (non-exiting) _exit double.
        return self.inner.estimate(query)


class WorkerHangFault(FaultInjector):
    """Stall an estimate far past any request deadline — a wedged worker.

    Unlike :class:`LatencyFault` (a *slow but recovering* tier), the
    hang is meant to exceed the supervisor's heartbeat/request timeout
    so the worker gets killed and restarted; ``hang_seconds`` defaults
    high enough that a test that fails to time out hangs visibly rather
    than passing silently.  ``sleep`` is injectable for unit tests.
    """

    kind = "worker-hang"

    def __init__(
        self,
        inner: CardinalityEstimator,
        hang_seconds: float = 30.0,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(inner, probability, seed, after)
        if hang_seconds < 0.0:
            raise ValueError("hang_seconds must be non-negative")
        self.hang_seconds = hang_seconds
        self._sleep = sleep

    def _fault(self, query: Query) -> float:
        self._sleep(self.hang_seconds)
        return self.inner.estimate(query)


class SlowWorkerFault(FaultInjector):
    """Delay every *batch* by a fixed amount — a degraded, alive worker.

    A slow worker is not a hung worker: it keeps answering correctly,
    just late enough to erode the deadline budget and trip
    deadline-aware admission control.  The delay is paid once per
    ``estimate_many`` call (and once per scalar call), not per query, so
    batch size controls the per-query cost exactly like a worker whose
    host is CPU-starved.  ``sleep`` is injectable for unit tests.
    """

    kind = "slow-worker"

    def __init__(
        self,
        inner: CardinalityEstimator,
        delay_seconds: float = 0.01,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(inner, probability, seed, after)
        if delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")
        self.delay_seconds = delay_seconds
        self._sleep = sleep

    def estimate_many(self, queries) -> np.ndarray:
        """One fault roll — and at most one delay — for the whole batch."""
        if self._table is None:
            raise RuntimeError(f"{self.name} must be fit before estimating")
        self._calls += 1
        if self._scheduled():
            self.faults_fired += 1
            self._sleep(self.delay_seconds)
        return np.asarray(self.inner.estimate_many(queries), dtype=np.float64)

    def _fault(self, query: Query) -> float:
        self._sleep(self.delay_seconds)
        return self.inner.estimate(query)


def queue_flood(
    queries: Sequence[Query], multiplier: int = 8, seed: int = 0
) -> list[Query]:
    """Tile a workload into a seeded burst that overflows bounded queues.

    Returns ``multiplier`` copies of ``queries`` in a deterministic
    shuffled order — the traffic shape of a dashboard stampede or a
    retry storm: the same parametrized queries, all at once, far beyond
    any per-shard admission capacity.  The multiset of queries is
    preserved exactly, so availability accounting stays exact under the
    flood.
    """
    if multiplier < 1:
        raise ValueError(f"multiplier must be at least 1, got {multiplier}")
    flood = [q for q in queries for _ in range(multiplier)]
    order = np.random.default_rng(seed).permutation(len(flood))
    return [flood[i] for i in order]


class StaleModelFault(FaultInjector):
    """Silently drop updates: the model keeps serving pre-update state.

    This is the Section 5 hazard as a serving fault: the wrapper accepts
    ``update()`` calls (and reports near-zero update cost) but never
    propagates them to the inner model, so after a data update —
    e.g. one produced by :func:`repro.datasets.updates.apply_update` and
    replayed through :mod:`repro.dynamic`'s environment machinery —
    every estimate comes from the stale model.
    """

    kind = "stale"

    def __init__(self, inner: CardinalityEstimator, seed: int = 0) -> None:
        super().__init__(inner, probability=0.0, seed=seed)
        self.dropped_updates = 0

    def _update(self, table: Table, appended, workload: Workload | None) -> None:
        self.dropped_updates += 1

    def _fault(self, query: Query) -> float:  # pragma: no cover - never fires
        return self.inner.estimate(query)


class CorrelatedShiftFault(FaultInjector):
    """Inflate estimates by ``magnitude`` per predicate — AVI gone wrong.

    The attribute-value-independence assumption multiplies per-column
    selectivities; when the columns are in fact correlated, the product
    under- or over-shoots *geometrically in the number of predicates*.
    Each scheduled answer is the inner estimate times
    ``magnitude ** num_predicates``: ``magnitude > 1`` reproduces the
    overestimate direction (only a provable upper bound stops it),
    ``magnitude < 1`` the underestimate direction on positively
    correlated data (no bound catches it — only q-error feedback).
    Either way the result is finite and positive, sailing straight
    through NaN/inf sanity checks.
    """

    kind = "correlated-shift"

    def __init__(
        self,
        inner: CardinalityEstimator,
        magnitude: float = 8.0,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        until: int | None = None,
    ) -> None:
        super().__init__(inner, probability, seed, after, until)
        if magnitude <= 0.0 or magnitude == 1.0:
            raise ValueError("magnitude must be positive and not 1.0")
        self.magnitude = magnitude

    def _fault(self, query: Query) -> float:
        inflation = self.magnitude ** max(len(query.predicates), 1)
        return self.inner.estimate(query) * inflation


class DomainShiftFault(FaultInjector):
    """Answer queries as if translated across the column domain.

    Models a train/serve domain mismatch: the scheduled answer is the
    inner estimate for the query *shifted* by ``shift_fraction`` of each
    predicated column's value range — i.e. the model responds from a
    different region of the distribution than the one being asked
    about.  Like all adversarial faults the answer is perfectly sane in
    isolation; only comparing against the true domain (bounds, OOD
    scoring, q-error feedback) reveals it.
    """

    kind = "domain-shift"

    def __init__(
        self,
        inner: CardinalityEstimator,
        shift_fraction: float = 0.5,
        probability: float = 1.0,
        seed: int = 0,
        after: int = 0,
        until: int | None = None,
    ) -> None:
        super().__init__(inner, probability, seed, after, until)
        if shift_fraction == 0.0:
            raise ValueError("shift_fraction must be non-zero")
        self.shift_fraction = shift_fraction

    def _fault(self, query: Query) -> float:
        data = self.inner.table.data
        shifted = []
        for pred in query.predicates:
            column = data[:, pred.column]
            span = float(column.max() - column.min()) or 1.0
            shift = self.shift_fraction * span
            shifted.append(
                Predicate(
                    column=pred.column,
                    lo=None if pred.lo is None else pred.lo + shift,
                    hi=None if pred.hi is None else pred.hi + shift,
                )
            )
        return self.inner.estimate(Query(predicates=tuple(shifted)))


class UpdateSkewFault(FaultInjector):
    """Forward only a biased slice of appended rows — silent data skew.

    On every ``update()`` the wrapper keeps just the appended rows whose
    ``column`` value is at or below the append batch's median and shows
    the inner model a table containing only those (the wrapper itself —
    and therefore the serving layer — still sees the true table).  The
    model's view of the distribution drifts further from the truth with
    each update, the creeping version of the Section 5 staleness hazard
    that no single-query sanity check can catch.
    """

    kind = "update-skew"

    def __init__(
        self, inner: CardinalityEstimator, column: int = 0, seed: int = 0
    ) -> None:
        super().__init__(inner, probability=0.0, seed=seed)
        self.column = column
        self.updates_skewed = 0

    def _update(self, table: Table, appended, workload: Workload | None) -> None:
        if appended is None or len(appended) == 0:
            self.inner.update(table, appended, workload)
            return
        self.updates_skewed += 1
        values = appended[:, self.column]
        biased = appended[values <= np.median(values)]
        old_rows = table.data[: table.num_rows - len(appended)]
        skewed = Table(
            name=table.name,
            data=np.vstack([old_rows, biased]),
            column_names=list(table.column_names),
        )
        if workload is not None:
            # The model's whole training view is the skewed world: any
            # retraining labels are recomputed against the biased table.
            workload = Workload(
                queries=workload.queries,
                cardinalities=skewed.cardinalities(list(workload.queries)),
            )
        self.inner.update(skewed, biased, workload)

    def _fault(self, query: Query) -> float:  # pragma: no cover - never fires
        return self.inner.estimate(query)
