"""Interpretability helpers for black-box estimators (Section 7.2)."""

from .attribution import (
    FeatureImportance,
    InfluentialQuery,
    TrainingInfluence,
    lw_feature_importance,
    permutation_importance,
)

__all__ = [
    "FeatureImportance",
    "InfluentialQuery",
    "TrainingInfluence",
    "lw_feature_importance",
    "permutation_importance",
]
