"""Interpretability helpers (paper Section 7.2).

The paper suggests applying ML-explanation techniques to black-box
estimators: feature-attribution methods to see which inputs drive a
prediction, and influence-style diagnostics to trace a bad estimate back
to training examples.  Two model-agnostic tools:

* :func:`permutation_importance` — permute one feature column across a
  probe workload and measure how much the estimator's accuracy degrades;
  large degradation = the estimator leans on that feature.
* :class:`TrainingInfluence` — for query-driven models, the
  nearest-training-queries diagnostic: which labelled queries most
  resemble a suspicious test query (a cheap stand-in for influence
  functions, which need model Hessians).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import qerrors
from ..core.query import Query
from ..core.workload import Workload


@dataclass(frozen=True)
class FeatureImportance:
    """Permutation importance of one feature column."""

    feature: int
    name: str
    baseline_error: float
    permuted_error: float

    @property
    def importance(self) -> float:
        """Degradation factor; 1.0 means the feature carries no signal."""
        return self.permuted_error / max(self.baseline_error, 1e-12)


def _geo_mean_error(estimates: np.ndarray, actuals: np.ndarray) -> float:
    return float(np.exp(np.log(qerrors(estimates, actuals)).mean()))


def permutation_importance(
    predict: "callable",
    features: np.ndarray,
    actuals: np.ndarray,
    rng: np.random.Generator,
    feature_names: list[str] | None = None,
    repeats: int = 3,
) -> list[FeatureImportance]:
    """Permutation importance over an explicit feature matrix.

    ``predict`` maps a feature matrix to cardinality estimates (e.g. the
    internal regressor of LW-XGB/NN).  Each feature column is shuffled
    ``repeats`` times; the reported degradation is the mean.
    """
    features = np.asarray(features, dtype=np.float64)
    actuals = np.asarray(actuals, dtype=np.float64)
    baseline = _geo_mean_error(predict(features), actuals)
    out = []
    for j in range(features.shape[1]):
        degraded = []
        for _ in range(repeats):
            shuffled = features.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            degraded.append(_geo_mean_error(predict(shuffled), actuals))
        name = feature_names[j] if feature_names else f"f{j}"
        out.append(
            FeatureImportance(
                feature=j,
                name=name,
                baseline_error=baseline,
                permuted_error=float(np.mean(degraded)),
            )
        )
    return sorted(out, key=lambda fi: fi.importance, reverse=True)


def lw_feature_importance(
    estimator: CardinalityEstimator,
    workload: Workload,
    rng: np.random.Generator,
) -> list[FeatureImportance]:
    """Permutation importance for the LW family's feature vector.

    Works for any estimator exposing the LW featurizer protocol
    (``_featurizer.features_many`` + an internal ``_model.predict`` /
    forward pass); raises ``TypeError`` otherwise.
    """
    featurizer = getattr(estimator, "_featurizer", None)
    model = getattr(estimator, "_model", None)
    if featurizer is None or model is None:
        raise TypeError(
            f"{estimator.name} does not expose the LW featurizer protocol"
        )
    features = featurizer.features_many(list(workload.queries))

    if hasattr(model, "predict"):
        predict_log = model.predict  # GBDT
    else:
        predict_log = lambda x: model.forward(x).ravel()  # MLP

    def predict(feature_matrix: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(predict_log(feature_matrix), -30.0, 30.0))

    num_range = 2 * featurizer.ranges.num_columns
    names = [
        f"{'lo' if i % 2 == 0 else 'hi'}({i // 2})" for i in range(num_range)
    ]
    if featurizer.ce is not None:
        names += ["log_avi", "log_minsel", "log_ebo"]
    return permutation_importance(
        predict, features, workload.cardinalities, rng, names
    )


@dataclass(frozen=True)
class InfluentialQuery:
    """One nearby training query, with its label and distance."""

    index: int
    query: Query
    cardinality: float
    distance: float


class TrainingInfluence:
    """Nearest-training-query diagnostic for query-driven estimators.

    When a query-driven model produces a surprising estimate, the first
    question is "what did it train on around here?".  This indexes the
    training workload in the model's own feature space and returns the
    closest labelled neighbours of any probe query.
    """

    def __init__(
        self,
        featurize: "callable",
        workload: Workload,
    ) -> None:
        self._featurize = featurize
        self.workload = workload
        self._matrix = np.array([featurize(q) for q in workload.queries])
        scale = self._matrix.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale

    def neighbours(self, query: Query, k: int = 5) -> list[InfluentialQuery]:
        """The ``k`` training queries nearest to ``query``."""
        if k < 1:
            raise ValueError("k must be positive")
        probe = np.asarray(self._featurize(query), dtype=np.float64)
        dist = np.linalg.norm(
            (self._matrix - probe) / self._scale, axis=1
        )
        order = np.argsort(dist)[:k]
        return [
            InfluentialQuery(
                index=int(i),
                query=self.workload.queries[i],
                cardinality=float(self.workload.cardinalities[i]),
                distance=float(dist[i]),
            )
            for i in order
        ]
