"""Training-domain snapshots and out-of-distribution query scoring.

Section 6 of the paper probes the estimators with queries drawn from the
*whole* value domain (``ood_probability = 1.0``) instead of from data
tuples, and the learned models fail worst exactly there: the query
lands where the model never saw training mass.  A serving stack cannot
retrain its way out of that per query, but it *can* notice that a query
is unlike anything in the training distribution and route it to a tier
whose error is bounded by construction (the DBMS/heuristic fallbacks)
instead of the learned primary.

:class:`DomainSnapshot` is captured during ``fit`` and records what the
model actually saw:

* per-column **value ranges** of the training table,
* the **predicate-arity** distribution of the training workload
  (min/max predicates per query), and
* the **predicate-width** distribution (per-column maximum width,
  normalized by the training range).

:class:`OodDetector` scores an incoming query's distance from that
snapshot as a sum of per-violation penalties (0 = indistinguishable
from training).  The score is interpretable — each contribution names
the predicate and the reason — and monotone: the further outside the
training domain, the larger the score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.query import Query
from ..core.workload import Workload

#: score above which a query is treated as out-of-distribution
DEFAULT_OOD_THRESHOLD = 0.25


@dataclass(frozen=True)
class OodVerdict:
    """One query's distance from the training distribution."""

    score: float
    #: human-readable contributions, e.g. "col 2 range overshoot 1.40"
    reasons: tuple[str, ...] = ()

    @property
    def is_ood(self) -> bool:  # against the default threshold
        return self.score > DEFAULT_OOD_THRESHOLD


@dataclass
class DomainSnapshot:
    """What the model saw at fit time (see module docstring)."""

    #: per-column (min, max) of the training table
    column_ranges: list[tuple[float, float]]
    #: observed predicates-per-query range in the training workload
    arity_range: tuple[int, int]
    #: per-column maximum predicate width / training range (1.0 when the
    #: column was never predicated or the workload was absent)
    max_norm_width: list[float] = field(default_factory=list)

    @classmethod
    def capture(cls, table, workload: Workload | None) -> "DomainSnapshot":
        ranges = [
            (float(table.data[:, c].min()), float(table.data[:, c].max()))
            for c in range(table.num_columns)
        ]
        arity = (1, table.num_columns)
        widths = [1.0] * table.num_columns
        if workload is not None and len(workload):
            arities = [q.num_predicates for q in workload.queries]
            arity = (int(min(arities)), int(max(arities)))
            seen = [0.0] * table.num_columns
            for query in workload.queries:
                for p in query.predicates:
                    lo_t, hi_t = ranges[p.column]
                    span = max(hi_t - lo_t, 1e-12)
                    lo = lo_t if p.lo is None else p.lo
                    hi = hi_t if p.hi is None else p.hi
                    seen[p.column] = max(seen[p.column], (hi - lo) / span)
            # A column never predicated in training keeps the permissive
            # default: there is no width evidence to judge against.
            widths = [w if w > 0.0 else 1.0 for w in seen]
        return cls(column_ranges=ranges, arity_range=arity, max_norm_width=widths)


class OodDetector:
    """Score queries against a :class:`DomainSnapshot`."""

    def __init__(
        self,
        snapshot: DomainSnapshot,
        threshold: float = DEFAULT_OOD_THRESHOLD,
    ) -> None:
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        self.snapshot = snapshot
        self.threshold = threshold
        self._lows = np.array([r[0] for r in snapshot.column_ranges])
        self._highs = np.array([r[1] for r in snapshot.column_ranges])
        self._spans = np.maximum(self._highs - self._lows, 1e-12)

    # ------------------------------------------------------------------
    def score(self, query: Query) -> OodVerdict:
        """Distance of ``query`` from the training distribution."""
        total = 0.0
        reasons: list[str] = []
        lo_a, hi_a = self.snapshot.arity_range
        d = query.num_predicates
        if d > hi_a or d < lo_a:
            overshoot = (d - hi_a) if d > hi_a else (lo_a - d)
            total += 0.25 * overshoot
            reasons.append(f"arity {d} outside trained [{lo_a}, {hi_a}]")
        for p in query.predicates:
            if p.is_empty:
                continue
            t_lo, t_hi = self._lows[p.column], self._highs[p.column]
            span = self._spans[p.column]
            lo = t_lo if p.lo is None else p.lo
            hi = t_hi if p.hi is None else p.hi
            # How far the predicate box sticks out of the trained range,
            # normalized by that range: 0 when fully inside.
            overhang = max(0.0, t_lo - lo) + max(0.0, hi - t_hi)
            if overhang > 0.0:
                amount = overhang / span
                total += amount
                reasons.append(f"col {p.column} range overshoot {amount:.2f}")
            width = (hi - lo) / span
            trained_w = (
                self.snapshot.max_norm_width[p.column]
                if p.column < len(self.snapshot.max_norm_width)
                else 1.0
            )
            if width > trained_w:
                total += width - trained_w
                reasons.append(
                    f"col {p.column} width {width:.2f} > trained {trained_w:.2f}"
                )
        return OodVerdict(score=total, reasons=tuple(reasons))

    def is_ood(self, query: Query) -> bool:
        return self.score(query).score > self.threshold
