"""Estimate guardrails: provable bounds, OOD detection, model quarantine.

Defense-in-depth around the learned tiers of the serving stack, built
from the paper's Section 5/6 failure catalogue: every served estimate is

* **bounded** — clamped into a provable ``[lower, upper]`` interval from
  a fit-time :class:`BoundSketch` (AVI-free min over per-predicate
  conservative counts);
* **attributable** — out-of-distribution queries are detected against a
  fit-time :class:`DomainSnapshot` and routed past the learned primary,
  with clamp/reroute events and metrics naming the reason;
* **revocable** — a :class:`QuarantineMonitor` watches the q-error
  feedback stream and demotes a misbehaving learned tier out of the
  chain, re-admitting it only after a clean pass through the lifecycle
  promotion gate.
"""

from .bounds import BoundSketch, ColumnBound
from .guard import EstimateGuard
from .ood import DEFAULT_OOD_THRESHOLD, DomainSnapshot, OodDetector, OodVerdict
from .quarantine import (
    HEALTHY,
    QUARANTINED,
    QuarantineMonitor,
    QuarantineStatus,
)

__all__ = [
    "BoundSketch",
    "ColumnBound",
    "DEFAULT_OOD_THRESHOLD",
    "DomainSnapshot",
    "EstimateGuard",
    "HEALTHY",
    "OodDetector",
    "OodVerdict",
    "QUARANTINED",
    "QuarantineMonitor",
    "QuarantineStatus",
]
