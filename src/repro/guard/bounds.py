"""Provable cardinality bounds from per-column sketches.

The paper's Section 6 failure mode is a learned model that answers with
confidence and is off by five orders of magnitude.  A *provable* upper
bound turns that unbounded failure into a bounded one: for a conjunctive
query ``p1 AND p2 AND ... AND pd``, the number of matching rows can
never exceed the number of rows matching any *single* predicate, so

    |rows matching all preds|  <=  min_i  count(p_i)

holds unconditionally — no attribute-value-independence assumption, no
uniformity assumption, nothing learned ("Is it Bigger than a Breadbox?"
calls this the practical safety net).  :class:`BoundSketch` keeps one
conservative per-column structure so ``count(p_i)`` is cheap and *never*
an undercount:

* **exact mode** (low-cardinality columns): the sorted distinct values
  with a prefix-sum of their multiplicities; a range count is two binary
  searches and is exact.
* **bucket mode** (high-cardinality columns): equi-depth bucket edges
  with exact per-bucket row counts; a range count sums every bucket the
  range *touches* — deliberately counting partially-overlapped buckets
  in full, which keeps the bound sound where an interpolated histogram
  (e.g. :class:`~repro.estimators.traditional.histograms
  .EquiDepthHistogram`) would not.

The lower bound is the trivial 0 (a sound nonzero lower bound needs
join/sample evidence; the clamp only ever needs it to reject negative
garbage).  :meth:`BoundSketch.update` folds appended rows in without a
rebuild, preserving soundness: exact-mode multiplicities are merged,
bucket-mode edges are widened to cover new extremes and each appended
row increments exactly the one bucket that contains it.
"""

from __future__ import annotations

import numpy as np

from ..core.query import Predicate, Query

#: distinct-value ceiling under which a column keeps exact counts
DEFAULT_MAX_EXACT = 4096

#: equi-depth buckets for high-cardinality columns
DEFAULT_NUM_BUCKETS = 64


class ColumnBound:
    """Conservative ``count(lo, hi)`` for one column (see module doc)."""

    def __init__(
        self,
        values: np.ndarray,
        max_exact: int = DEFAULT_MAX_EXACT,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        values = np.sort(np.asarray(values, dtype=np.float64))
        if values.size == 0:
            raise ValueError("cannot bound a column with no values")
        uniq, counts = np.unique(values, return_counts=True)
        self.total = int(values.size)
        if len(uniq) <= max_exact:
            self.exact = True
            self.values = uniq
            self.counts = counts.astype(np.int64)
            self._prefix = np.concatenate(([0], np.cumsum(self.counts)))
        else:
            self.exact = False
            num_buckets = max(1, min(num_buckets, values.size))
            positions = np.linspace(0, values.size - 1, num_buckets + 1)
            edges = values[positions.astype(np.int64)]
            # Duplicate quantile edges (heavy hitters) would make empty
            # zero-width buckets; dedupe keeps the counts exact.
            self.edges = np.unique(edges)
            if len(self.edges) < 2:
                self.edges = np.array([self.edges[0], self.edges[0]])
            # Exact rows per bucket [edges[b], edges[b+1]) — last bucket
            # closed — via one vectorized search over the sorted values.
            cuts = np.searchsorted(values, self.edges[1:-1], side="left")
            splits = np.concatenate(([0], cuts, [values.size]))
            self.bucket_counts = np.diff(splits).astype(np.int64)

    # ------------------------------------------------------------------
    def count(self, lo: float | None, hi: float | None) -> int:
        """Rows with value in ``[lo, hi]`` — never an undercount."""
        lo_v = -np.inf if lo is None else lo
        hi_v = np.inf if hi is None else hi
        if hi_v < lo_v:
            return 0
        if self.exact:
            a = int(np.searchsorted(self.values, lo_v, side="left"))
            b = int(np.searchsorted(self.values, hi_v, side="right"))
            return int(self._prefix[b] - self._prefix[a])
        if hi_v < self.edges[0] or lo_v > self.edges[-1]:
            return 0
        # Every bucket the range touches contributes its full count:
        # partial overlap is rounded *up* to keep the bound sound.
        first = max(0, int(np.searchsorted(self.edges, lo_v, side="right")) - 1)
        # side="right" so a range ending exactly on an interior edge
        # still counts the bucket that holds rows equal to that edge.
        last = min(
            len(self.bucket_counts) - 1,
            max(0, int(np.searchsorted(self.edges, hi_v, side="right")) - 1),
        )
        return int(self.bucket_counts[first : last + 1].sum())

    def add(self, values: np.ndarray) -> None:
        """Fold appended rows in; the bound stays sound."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.total += int(values.size)
        if self.exact:
            uniq, counts = np.unique(values, return_counts=True)
            merged_values = np.union1d(self.values, uniq)
            merged_counts = np.zeros(len(merged_values), dtype=np.int64)
            merged_counts[np.searchsorted(merged_values, self.values)] += self.counts
            merged_counts[np.searchsorted(merged_values, uniq)] += counts
            self.values = merged_values
            self.counts = merged_counts
            self._prefix = np.concatenate(([0], np.cumsum(self.counts)))
            return
        # Widen the outer edges to cover new extremes, then drop each
        # appended row into exactly one bucket.
        self.edges[0] = min(self.edges[0], float(values.min()))
        self.edges[-1] = max(self.edges[-1], float(values.max()))
        idx = np.clip(
            np.searchsorted(self.edges, values, side="right") - 1,
            0,
            len(self.bucket_counts) - 1,
        )
        np.add.at(self.bucket_counts, idx, 1)

    def nbytes(self) -> int:
        if self.exact:
            return int(self.values.nbytes + self.counts.nbytes + self._prefix.nbytes)
        return int(self.edges.nbytes + self.bucket_counts.nbytes)


class BoundSketch:
    """Provable ``[lower, upper]`` cardinality bounds for one table.

    Built at fit time from the training table; ``upper_bound`` is the
    AVI-free min over per-predicate conservative counts, ``lower_bound``
    is the trivial 0.  Survives :meth:`update` without a rebuild.
    """

    def __init__(
        self,
        table,
        *,
        max_exact: int = DEFAULT_MAX_EXACT,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        self._num_rows = int(table.num_rows)
        self._columns = [
            ColumnBound(table.data[:, c], max_exact, num_buckets)
            for c in range(table.num_columns)
        ]

    @property
    def num_rows(self) -> int:
        return self._num_rows

    # ------------------------------------------------------------------
    def predicate_bound(self, predicate: Predicate) -> int:
        """Rows that could match ``predicate`` alone (never undercounts)."""
        if predicate.is_empty:
            return 0
        return self._columns[predicate.column].count(predicate.lo, predicate.hi)

    def upper_bound(self, query: Query) -> float:
        """Provable ceiling on the query's true cardinality."""
        if not query.predicates:
            return float(self._num_rows)
        bound = min(self.predicate_bound(p) for p in query.predicates)
        return float(min(bound, self._num_rows))

    def lower_bound(self, query: Query) -> float:
        """Trivial floor (0; contradictions are caught by the shortcut)."""
        return 0.0

    def bounds(self, query: Query) -> tuple[float, float]:
        return self.lower_bound(query), self.upper_bound(query)

    # ------------------------------------------------------------------
    def update(self, table, appended: np.ndarray | None) -> None:
        """Fold an append-only data update into the sketch.

        ``appended`` is the row block :meth:`Table.append_rows` added;
        when it is ``None`` (unknown delta) the sketch is rebuilt from
        the table, which is always sound.
        """
        if appended is None or len(self._columns) != table.num_columns:
            self.__init__(table)  # full rebuild: sound, O(n log n)
            return
        appended = np.asarray(appended, dtype=np.float64)
        for c, column in enumerate(self._columns):
            column.add(appended[:, c])
        self._num_rows = int(table.num_rows)

    def nbytes(self) -> int:
        """Sketch size in bytes (it should stay a *sketch*)."""
        return sum(c.nbytes() for c in self._columns)
