"""The guard facade: bounds + OOD + quarantine behind one object.

:class:`EstimateGuard` is what the serving layers actually hold.  It is
deliberately passive — the :class:`~repro.serve.EstimatorService` and
:class:`~repro.shard.Shard` call into it at three hook points:

* ``fit``/``update`` — (re)build the :class:`~repro.guard.BoundSketch`
  and the :class:`~repro.guard.DomainSnapshot` from the table the chain
  was fitted on;
* ``clamp(query, value)`` — pull any accepted estimate into the
  provable ``[lower, upper]`` interval, returning the violation reason
  (``"above-upper"`` / ``"below-lower"``) when the raw value broke it;
* ``is_ood(query)`` — decide whether the learned primary should be
  skipped for this query.

The guard also relays accuracy feedback to an attached
:class:`~repro.guard.QuarantineMonitor` (see :meth:`observe_qerror`),
so ``service.record_actual`` drives demotion without the service layer
knowing the quarantine machinery exists.  Every piece degrades to a
no-op when unfitted or disabled, so a guard can be installed on an
unfitted chain and simply wake up at ``fit`` time.
"""

from __future__ import annotations

from ..core.query import Query
from .bounds import DEFAULT_MAX_EXACT, DEFAULT_NUM_BUCKETS, BoundSketch
from .ood import DEFAULT_OOD_THRESHOLD, DomainSnapshot, OodDetector, OodVerdict


class EstimateGuard:
    """Bounds clamp + OOD routing + quarantine relay (see module doc)."""

    def __init__(
        self,
        *,
        bounds_enabled: bool = True,
        ood_enabled: bool = True,
        ood_threshold: float = DEFAULT_OOD_THRESHOLD,
        max_exact: int = DEFAULT_MAX_EXACT,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        self.bounds_enabled = bounds_enabled
        self.ood_enabled = ood_enabled
        self.ood_threshold = ood_threshold
        self._max_exact = max_exact
        self._num_buckets = num_buckets
        self.sketch: BoundSketch | None = None
        self.detector: OodDetector | None = None
        #: attached by the caller after the service exists (the monitor
        #: needs the service reference to demote)
        self.monitor = None
        # Introspection counters (metrics/events are emitted by the
        # serving layer, which owns the telemetry sinks).
        self.clamped = 0
        self.ood_rerouted = 0

    # ------------------------------------------------------------------
    # Fit-time hooks
    # ------------------------------------------------------------------
    def fit(self, table, workload=None) -> None:
        """Capture the bound sketch and training-domain snapshot."""
        if self.bounds_enabled:
            self.sketch = BoundSketch(
                table, max_exact=self._max_exact, num_buckets=self._num_buckets
            )
        if self.ood_enabled:
            self.detector = OodDetector(
                DomainSnapshot.capture(table, workload), self.ood_threshold
            )

    def update(self, table, appended=None) -> None:
        """Fold a data update into the sketch (snapshot follows the
        refitted model: the chain's ``update`` retrains on the new
        table, so its value ranges become the training domain)."""
        if self.sketch is not None:
            self.sketch.update(table, appended)
        if self.detector is not None:
            self.detector = OodDetector(
                DomainSnapshot.capture(table, None), self.ood_threshold
            )

    # ------------------------------------------------------------------
    # Serve-time hooks
    # ------------------------------------------------------------------
    def bounds(self, query: Query) -> tuple[float, float] | None:
        if self.sketch is None:
            return None
        return self.sketch.bounds(query)

    def clamp(self, query: Query, value: float) -> tuple[float, str | None]:
        """Pull ``value`` into the provable interval; name the reason."""
        if self.sketch is None:
            return value, None
        lower, upper = self.sketch.bounds(query)
        if value > upper:
            self.clamped += 1
            return upper, "above-upper"
        if value < lower:
            self.clamped += 1
            return lower, "below-lower"
        return value, None

    def ood_verdict(self, query: Query) -> OodVerdict | None:
        if self.detector is None:
            return None
        return self.detector.score(query)

    def is_ood(self, query: Query) -> bool:
        if self.detector is None:
            return False
        if self.detector.is_ood(query):
            self.ood_rerouted += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Feedback relay
    # ------------------------------------------------------------------
    def observe_qerror(self, tenant: str, qerror: float) -> None:
        if self.monitor is not None:
            self.monitor.observe(tenant, qerror)
