"""Model quarantine: demote a misbehaving learned tier, re-admit on proof.

The serving stack already *survives* a bad model (fallback chains,
breakers), but survival is per-query: a model that keeps emitting
plausible-looking garbage keeps being consulted, keeps paying its
latency, and keeps poisoning the estimate cache between clamp events.
:class:`QuarantineMonitor` closes that loop at the *model* level.  It
watches the per-tenant q-error feedback stream (the same samples that
feed :class:`~repro.obs.SloRegistry` and the exemplar boards) and, when
a tenant's recent window shows a sustained violation, **demotes** the
learned primary out of the fallback chain, replacing it with a
bounded-error safe tier (the heuristic constant estimator by default).
The swap rides :meth:`~repro.serve.EstimatorService.replace_primary`,
so it inherits the lifecycle machinery's guarantees: fresh breaker,
fresh stats, and a cache-generation bump that invalidates every cached
estimate the bad model produced.

Quarantine is *probationary*, not terminal.  Every ``probe_interval``
feedback samples the monitor re-runs the quarantined model through the
lifecycle :class:`~repro.lifecycle.PromotionGate` against the incumbent
safe tier on the probe workload; a clean pass re-admits it (another
``replace_primary``, another generation bump).  A lifecycle promotion
of a freshly-gated model clears quarantine outright (see
:meth:`QuarantineMonitor.on_promotion`).

State machine::

    HEALTHY --(window bad_fraction >= breach_fraction)--> QUARANTINED
    QUARANTINED --(gate passes on probe workload)--------> HEALTHY
    QUARANTINED --(lifecycle promotes a gated model)-----> HEALTHY
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..lifecycle.gate import GateReport, PromotionGate
from ..obs import GUARD_QUARANTINE, get_events, get_registry
from ..serve.heuristic import HeuristicConstantEstimator

HEALTHY = "healthy"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class QuarantineStatus:
    """Point-in-time snapshot of the monitor."""

    state: str
    demotions: int
    readmissions: int
    probes_failed: int
    #: tenant whose window triggered the active quarantine (None when healthy)
    offending_tenant: str | None


class QuarantineMonitor:
    """Watch q-error feedback; demote and re-admit the learned primary.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.EstimatorService` whose primary tier is
        under watch.
    probe_queries:
        Validation queries for the re-admission gate (typically the
        lifecycle probe workload).
    qerror_threshold:
        A feedback sample counts as *bad* when its q-error exceeds this.
    window / min_samples / breach_fraction:
        Per-tenant sliding window: quarantine triggers once at least
        ``min_samples`` samples are in the window and the bad fraction
        reaches ``breach_fraction`` — sustained violation, not a single
        outlier.
    probe_interval:
        Feedback samples between automatic re-admission attempts while
        quarantined.
    safe_factory:
        Zero-arg factory for the replacement tier; defaults to the
        magic-constant heuristic (it cannot fail).  The instance is
        fitted on the service's table before the swap.
    """

    def __init__(
        self,
        service,
        probe_queries,
        *,
        qerror_threshold: float = 16.0,
        window: int = 64,
        min_samples: int = 16,
        breach_fraction: float = 0.5,
        probe_interval: int = 32,
        safe_factory=None,
        gate_kwargs: dict | None = None,
        events=None,
        registry=None,
    ) -> None:
        if qerror_threshold < 1.0:
            raise ValueError("qerror_threshold must be >= 1")
        if not 0.0 < breach_fraction <= 1.0:
            raise ValueError("breach_fraction must be in (0, 1]")
        if min_samples < 1 or window < min_samples:
            raise ValueError("need 1 <= min_samples <= window")
        if probe_interval < 1:
            raise ValueError("probe_interval must be positive")
        self.service = service
        self.qerror_threshold = qerror_threshold
        self.window = window
        self.min_samples = min_samples
        self.breach_fraction = breach_fraction
        self.probe_interval = probe_interval
        self.safe_factory = safe_factory or HeuristicConstantEstimator
        self.gate = PromotionGate(
            list(probe_queries), **(gate_kwargs or {"rule_checks": 0})
        )
        self._events = events
        self._registry = registry
        self.state = HEALTHY
        self.demotions = 0
        self.readmissions = 0
        self.probes_failed = 0
        self._windows: dict[str, deque] = {}
        self._quarantined = None
        self._offender: str | None = None
        self._since_probe = 0

    # ------------------------------------------------------------------
    def observe(self, tenant: str, qerror: float) -> None:
        """Feed one q-error sample from the accuracy-feedback stream."""
        if self.state == QUARANTINED:
            self._since_probe += 1
            if self._since_probe >= self.probe_interval:
                self._since_probe = 0
                self.attempt_readmission()
            return
        window = self._windows.get(tenant)
        if window is None:
            window = self._windows[tenant] = deque(maxlen=self.window)
        window.append(qerror > self.qerror_threshold)
        if (
            len(window) >= self.min_samples
            and sum(window) / len(window) >= self.breach_fraction
        ):
            self.quarantine(tenant)

    # ------------------------------------------------------------------
    def quarantine(self, tenant: str = "default") -> None:
        """Demote the learned primary out of the chain, effective now."""
        if self.state == QUARANTINED:
            return
        self._quarantined = self.service.primary_estimator
        safe = self.safe_factory()
        safe.fit(self.service.table)
        # replace_primary gives the safe tier a fresh breaker and bumps
        # the cache generation — every estimate the bad model cached is
        # invalidated along with it.
        self.service.replace_primary(safe)
        self.state = QUARANTINED
        self._offender = tenant
        self._since_probe = 0
        self.demotions += 1
        self._count("demote")
        self._obs_events().emit(
            "guard.quarantine",
            tenant=tenant,
            demoted=self._quarantined.name,
            replacement=safe.name,
            generation=self.service.model_generation,
        )

    def attempt_readmission(self) -> GateReport | None:
        """Gate the quarantined model against the incumbent safe tier.

        Returns the gate report (``None`` when nothing is quarantined).
        A pass re-admits the model as the primary; a fail leaves it
        quarantined until the next probe interval.
        """
        if self.state != QUARANTINED or self._quarantined is None:
            return None
        report = self.gate.evaluate(
            self._quarantined,
            self.service.primary_estimator,
            self.service.table,
        )
        if report.passed:
            model = self._quarantined
            self.service.replace_primary(model)
            self.state = HEALTHY
            self._quarantined = None
            self._offender = None
            self._windows.clear()
            self.readmissions += 1
            self._count("readmit")
            self._obs_events().emit(
                "guard.readmit",
                model=model.name,
                generation=self.service.model_generation,
            )
        else:
            self.probes_failed += 1
            self._count("probe-failed")
            self._obs_events().emit(
                "guard.probe_failed", reasons=list(report.reasons)
            )
        return report

    def on_promotion(self) -> None:
        """A lifecycle promotion installed a freshly-gated model.

        The new primary already proved itself against the incumbent, so
        any active quarantine (of the model it replaced) is moot.
        """
        self.state = HEALTHY
        self._quarantined = None
        self._offender = None
        self._since_probe = 0
        self._windows.clear()

    # ------------------------------------------------------------------
    def status(self) -> QuarantineStatus:
        return QuarantineStatus(
            state=self.state,
            demotions=self.demotions,
            readmissions=self.readmissions,
            probes_failed=self.probes_failed,
            offending_tenant=self._offender,
        )

    def _count(self, action: str) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        registry.counter(
            GUARD_QUARANTINE, "Quarantine transitions, by action"
        ).inc(action=action)

    def _obs_events(self):
        return self._events if self._events is not None else get_events()
