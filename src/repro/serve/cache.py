"""Keyed estimate cache for the serving layer.

Real deployments answer the same parametrized queries over and over
(dashboards, prepared statements), and a cardinality estimate only goes
stale when the underlying data changes.  :class:`EstimateCache` is a
small LRU map from :class:`~repro.core.query.Query` (frozen, hence
hashable) to the served estimate.  Keys are **canonicalized** — the
predicate tuple is sorted by column — so the same conjunction written
with its predicates in a different order hits the same entry.

Entries are **namespaced by model generation**: every key carries the
generation counter current at insertion time, and
:meth:`bump_generation` — called by the service on ``update()`` and on
lifecycle hot-swaps (see :meth:`EstimatorService.replace_primary`) —
makes every existing entry unreachable in O(1).  A hit is therefore
always as fresh as a cold call against the *current* model; answers
computed by a replaced model can never be served again, and stale
entries age out through normal LRU eviction.

The cache is opt-in: pass ``cache=`` to
:class:`~repro.serve.service.EstimatorService`.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.query import Predicate, Query


def canonical_predicates(query: Query) -> tuple[Predicate, ...]:
    """The query's predicates sorted by column index.

    A conjunction is order-insensitive — ``a=1 AND b=2`` and
    ``b=2 AND a=1`` select the same rows — but :class:`Query` hashes its
    predicate *tuple*, so the raw query object is order-sensitive.
    Cache keys use this canonical form, letting semantically identical
    queries share one entry.  (Columns are distinct per query by
    construction, so the sort is a total order.)
    """
    return tuple(sorted(query.predicates, key=lambda p: p.column))


def query_signature(query: Query) -> tuple[tuple, ...]:
    """Canonical primitive cache key: ``((column, lo, hi), ...)`` sorted
    by column, memoized on the query object.

    Cache lookups at fast-path speeds are dominated by hashing: a key
    built from :class:`Predicate` objects re-enters Python for every
    element's generated ``__hash__`` on every dict probe — twice per
    ``get`` (probe + LRU bump) — while a nested tuple of ints and floats
    hashes entirely in C.  The signature is a pure function of a frozen
    value, so it is computed once and stashed on the instance
    (``object.__setattr__`` bypasses the frozen guard exactly like the
    dataclass-generated ``__init__`` does); replayed query objects pay
    the sort only on first sight.
    """
    sig = query.__dict__.get("_cache_signature")
    if sig is None:
        sig = tuple(
            (p.column, p.lo, p.hi)
            for p in sorted(query.predicates, key=lambda p: p.column)
        )
        object.__setattr__(query, "_cache_signature", sig)
    return sig


class EstimateCache:
    """Bounded LRU map from (model generation, query) to served estimate."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Generation tag stamped onto new entries; old-generation
        #: entries are unreachable and simply age out of the LRU.
        self.generation = 0
        self._entries: OrderedDict[
            tuple[int, tuple[tuple, ...]], float
        ] = OrderedDict()

    def _key(self, query: Query) -> tuple[int, tuple[tuple, ...]]:
        return (self.generation, query_signature(query))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: Query) -> bool:
        return self._key(query) in self._entries

    def get(self, query: Query) -> float | None:
        """Cached estimate for ``query`` under the current generation."""
        key = self._key(query)
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, query: Query, estimate: float) -> None:
        """Insert or refresh an entry, evicting the least recently used."""
        key = self._key(query)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = estimate
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def bump_generation(self) -> int:
        """Invalidate every entry by advancing the generation tag.

        O(1): old entries stay in the map (counting against capacity
        until evicted) but can never match a lookup again.  Returns the
        new generation.
        """
        self.generation += 1
        return self.generation

    def clear(self) -> None:
        """Drop every entry immediately (also reclaims their capacity)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"EstimateCache(size={len(self)}/{self.capacity}, "
            f"gen={self.generation}, hits={self.hits}, misses={self.misses})"
        )
