"""Keyed estimate cache for the serving layer.

Real deployments answer the same parametrized queries over and over
(dashboards, prepared statements), and a cardinality estimate only goes
stale when the underlying data changes.  :class:`EstimateCache` is a
small LRU map from :class:`~repro.core.query.Query` (frozen, hence
hashable) to the served estimate.  The service consults it before
walking the fallback chain and clears it on ``update()``, so a hit is
always as fresh as a cold call against the current model state.

The cache is opt-in: pass ``cache=`` to
:class:`~repro.serve.service.EstimatorService`.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.query import Query


class EstimateCache:
    """Bounded LRU map from query to served estimate."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Query, float] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: Query) -> bool:
        return query in self._entries

    def get(self, query: Query) -> float | None:
        """Cached estimate for ``query``, or None on a miss."""
        try:
            value = self._entries[query]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(query)
        self.hits += 1
        return value

    def put(self, query: Query, estimate: float) -> None:
        """Insert or refresh an entry, evicting the least recently used."""
        if query in self._entries:
            self._entries.move_to_end(query)
        self._entries[query] = estimate
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (model state changed; estimates are stale)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"EstimateCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
