"""The last-resort tier: a magic-constant selectivity guess.

When every model tier of a fallback chain is broken, the service still
has to hand the optimizer *a* number.  Optimizers have shipped with
magic selectivity constants since System R (1/10 per predicate is the
textbook figure); this estimator reproduces that behaviour.  It cannot
fail: no model state, no arithmetic that can overflow, microsecond
latency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.query import Query
from ..core.table import Table
from ..core.workload import Workload


class HeuristicConstantEstimator(CardinalityEstimator):
    """System-R-style constant selectivity per predicate."""

    name = "heuristic"

    def __init__(self, selectivity: float = 0.1) -> None:
        super().__init__()
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        self.selectivity = selectivity
        self._num_rows = 0

    def _fit(self, table: Table, workload: Workload | None) -> None:
        self._num_rows = table.num_rows

    def _estimate(self, query: Query) -> float:
        if any(p.is_empty for p in query.predicates):
            return 0.0
        return self._num_rows * self.selectivity**query.num_predicates

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        any_empty = np.array(
            [any(p.is_empty for p in q.predicates) for q in queries]
        )
        num_preds = np.array([q.num_predicates for q in queries], dtype=np.int64)
        # Index a table of scalar powers: numpy's vectorized power differs
        # from Python's ``**`` by an ulp for some exponents, and this tier
        # must match the scalar path bit-for-bit.
        powers = np.array(
            [self.selectivity**k for k in range(int(num_preds.max(initial=0)) + 1)]
        )
        return np.where(any_empty, 0.0, self._num_rows * powers[num_preds])

    def _update(self, table: Table, appended, workload: Workload | None) -> None:
        self._num_rows = table.num_rows
