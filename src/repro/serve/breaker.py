"""Circuit breaker for estimator tiers (the ByteCard-style guardrail).

A breaker watches one tier of the serving fallback chain and cuts it out
of the request path when it misbehaves repeatedly, so a broken model
stops burning the per-query deadline budget.  Classic three-state
machine:

* **CLOSED** — healthy; calls flow through.  ``failure_threshold``
  *consecutive* failures trip the breaker to OPEN.
* **OPEN** — the tier is skipped outright.  After ``recovery_seconds``
  the breaker moves to HALF_OPEN and lets probe traffic through.
* **HALF_OPEN** — calls are allowed as probes; ``probe_successes``
  consecutive successes close the breaker, any failure re-opens it.

The clock is injectable so tests (and the fault-injection harness) can
drive recovery deterministically without sleeping.

Every state transition — including the lazy OPEN -> HALF_OPEN promotion
performed when :attr:`CircuitBreaker.state` is read after the recovery
window — is emitted as a ``breaker.transition`` event on the breaker's
:class:`~repro.obs.EventLog` and counted in the metrics registry, so
tests and dashboards see the exact transition *sequence* rather than
polled snapshots.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable

from ..obs import BREAKER_TRANSITIONS, EventLog, MetricsRegistry
from ..obs import get_events as _default_events
from ..obs import get_registry as _default_registry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery policy of one circuit breaker."""

    #: consecutive failures that trip a CLOSED breaker
    failure_threshold: int = 5
    #: seconds an OPEN breaker waits before probing (HALF_OPEN)
    recovery_seconds: float = 30.0
    #: consecutive HALF_OPEN successes needed to close again
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.recovery_seconds < 0.0:
            raise ValueError("recovery_seconds must be non-negative")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be at least 1")


class CircuitBreaker:
    """CLOSED / OPEN / HALF_OPEN state machine over success/failure events."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        events: EventLog | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        #: label attached to emitted transition events (the tier name)
        self.name = name
        self._events = events
        self._registry = registry
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._opened_at = 0.0
        #: number of CLOSED/HALF_OPEN -> OPEN transitions observed
        self.trips = 0

    def _transition(self, new_state: BreakerState) -> None:
        old = self._state
        self._state = new_state
        events = self._events if self._events is not None else _default_events()
        events.emit(
            "breaker.transition",
            breaker=self.name,
            old=old.value,
            new=new_state.value,
        )
        registry = self._registry if self._registry is not None else _default_registry()
        registry.counter(
            BREAKER_TRANSITIONS, "Circuit-breaker state transitions"
        ).inc(breaker=self.name, old=old.value, new=new_state.value)

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state; promotes OPEN to HALF_OPEN once recovery is due."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.config.recovery_seconds
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probe_streak = 0
        return self._state

    def allows_request(self) -> bool:
        """True when the guarded tier should be attempted right now."""
        return self.state is not BreakerState.OPEN

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.config.probe_successes:
                self._close()
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._trip()
        else:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self._transition(BreakerState.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_streak = 0
        self.trips += 1

    def _close(self) -> None:
        self._transition(BreakerState.CLOSED)
        self._consecutive_failures = 0
        self._probe_streak = 0

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state.value!r}, trips={self.trips})"
