"""Fault-tolerant estimator serving (the ByteCard-style deployment story).

The paper's verdict is that learned estimators are accurate *until they
aren't*: stale after updates (Section 5), illogical (Section 6.3), and
pathological under correlation shifts (Section 6).  Production systems
that shipped learned cardinality estimation anyway did it by wrapping
the model in guardrails with traditional fallbacks.  This module is that
wrapper:

:class:`EstimatorService` answers every query from a **fallback chain**
of estimator tiers (e.g. ``naru -> sampling -> postgres -> heuristic``).
For each query it walks the chain and returns the first acceptable
answer, where a tier's answer is rejected when it

* raises an exception,
* exceeds the remaining per-query **deadline budget**,
* is NaN or infinite, or
* (finite but out of bounds) — served after clamping, but counted as a
  failure against the tier, reusing the :mod:`repro.rules` bounds
  checks.

Each tier sits behind a :class:`~repro.serve.breaker.CircuitBreaker`, so
a tier that fails repeatedly is skipped without paying its latency until
a recovery probe succeeds.  Rule-implied answers (contradictory or
full-domain queries) are short-circuited before any model runs, exactly
like :class:`~repro.rules.LogicalGuard`.  Per-tier health counters and
latency quantiles are exposed via :meth:`EstimatorService.health`.

The service is fully instrumented through :mod:`repro.obs`: every
:meth:`~EstimatorService.serve` call opens a ``serve`` span with one
child span per tier attempt, fallback activations / sanitizations /
NaN catches are emitted as structured events, and per-tier latencies
feed both the exact-percentile health window and the registry's
exportable histogram.  Pass ``registry`` / ``collector`` / ``events``
to aggregate telemetry across services; the defaults are the
process-wide instances.

The service is itself a :class:`CardinalityEstimator`, so it drops into
every harness, can be persisted, and can even be a tier of another
service.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.metrics import qerror as _qerror
from ..core.query import Query
from ..core.table import Table
from ..core.workload import Workload
from ..obs import (
    GUARD_CLAMPED,
    GUARD_OOD,
    SERVE_CACHE,
    SERVE_REQUESTS,
    SERVE_TIER_ATTEMPTS,
    SERVE_TIER_SECONDS,
    EventLog,
    Exemplar,
    ExemplarStore,
    LatencyWindow,
    MetricsRegistry,
    SloRegistry,
    SpanCollector,
    format_quantiles_ms,
    get_collector,
    get_events,
    get_exemplars,
    get_registry,
    get_slos,
    span,
)
from ..rules.enforce import clamp_to_bounds, trivial_answer
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .cache import EstimateCache

#: Per-predicate selectivity of the in-service emergency answer, used
#: only when every tier of the chain is skipped or fails.
LAST_RESORT_SELECTIVITY = 0.1

#: Latency samples retained per tier for the p50/p99 estimates.
_LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class ServedEstimate:
    """The outcome of serving one query."""

    estimate: float
    #: name of the tier that produced the answer ("shortcut" when a
    #: rule-implied answer skipped the chain, "last-resort" when every
    #: tier failed)
    tier: str
    #: index of the serving tier in the chain; -1 for the shortcut path
    tier_index: int
    #: True when a tier other than the primary produced the answer
    degraded: bool
    latency_seconds: float
    #: (tier, outcome) per chain step, e.g. ("naru", "nan")
    attempts: tuple[tuple[str, str], ...]
    #: trace id of the serving span (None when no collector is active);
    #: links accuracy feedback and exemplars back to the full span tree
    trace_id: int | None = None


@dataclass(frozen=True)
class TierHealth:
    """Point-in-time health of one tier of the chain."""

    tier: str
    state: str
    attempts: int
    served: int
    sanitized: int
    failures: dict[str, int]
    skipped_open: int
    skipped_deadline: int
    trips: int
    p50_ms: float
    p99_ms: float
    #: answers pulled into the provable bound interval (repro.guard)
    guard_clamped: int = 0


@dataclass(frozen=True)
class ServiceHealth:
    """Snapshot returned by :meth:`EstimatorService.health`."""

    queries: int
    answered: int
    degraded: int
    shortcuts: int
    last_resort: int
    tiers: tuple[TierHealth, ...]

    @property
    def availability(self) -> float:
        """Fraction of queries answered (the service answers them all)."""
        return self.answered / self.queries if self.queries else 1.0

    @property
    def degraded_rate(self) -> float:
        """Fraction of queries served by a fallback tier."""
        return self.degraded / self.queries if self.queries else 0.0

    def to_text(self) -> str:
        """Monospace rendering for logs and demos."""
        lines = [
            f"queries={self.queries} availability={self.availability:.3f} "
            f"degraded={self.degraded} ({self.degraded_rate:.1%}) "
            f"shortcuts={self.shortcuts} last_resort={self.last_resort}"
        ]
        for t in self.tiers:
            fails = (
                " ".join(f"{k}={v}" for k, v in sorted(t.failures.items()))
                or "none"
            )
            lines.append(
                f"  [{t.state:9s}] {t.tier}: served={t.served}/{t.attempts} "
                f"sanitized={t.sanitized} trips={t.trips} "
                f"skipped(open={t.skipped_open}, deadline={t.skipped_deadline}) "
                f"{format_quantiles_ms(t.p50_ms, t.p99_ms)} failures: {fails}"
            )
        return "\n".join(lines)


@dataclass
class _TierStats:
    attempts: int = 0
    served: int = 0
    sanitized: int = 0
    guard_clamped: int = 0
    failures: Counter = field(default_factory=Counter)
    skipped_open: int = 0
    skipped_deadline: int = 0
    latencies: LatencyWindow = field(
        default_factory=lambda: LatencyWindow(maxlen=_LATENCY_WINDOW)
    )


class _Tier:
    """One link of the fallback chain: estimator + breaker + stats."""

    def __init__(
        self,
        name: str,
        estimator: CardinalityEstimator,
        breaker: CircuitBreaker,
    ) -> None:
        self.name = name
        self.estimator = estimator
        self.breaker = breaker
        self.stats = _TierStats()

    def health(self) -> TierHealth:
        return TierHealth(
            tier=self.name,
            state=self.breaker.state.value,
            attempts=self.stats.attempts,
            served=self.stats.served,
            sanitized=self.stats.sanitized,
            failures=dict(self.stats.failures),
            skipped_open=self.stats.skipped_open,
            skipped_deadline=self.stats.skipped_deadline,
            trips=self.breaker.trips,
            guard_clamped=self.stats.guard_clamped,
            p50_ms=self.stats.latencies.percentile_ms(50.0),
            p99_ms=self.stats.latencies.percentile_ms(99.0),
        )


class EstimatorService(CardinalityEstimator):
    """Serve estimates from a fallback chain of estimator tiers.

    ``tiers[0]`` is the primary (typically the learned model); later
    tiers are consulted in order when earlier ones fail.  Pre-fitted
    tiers are adopted as-is; otherwise call :meth:`fit` to fit the whole
    chain.
    """

    name = "service"

    def __init__(
        self,
        tiers: Sequence[CardinalityEstimator],
        *,
        deadline_ms: float | None = 100.0,
        breaker: BreakerConfig | None = None,
        clock: Callable[[], float] = time.perf_counter,
        registry: MetricsRegistry | None = None,
        collector: SpanCollector | None = None,
        events: EventLog | None = None,
        cache: EstimateCache | int | None = None,
        slos: SloRegistry | None = None,
        exemplars: ExemplarStore | None = None,
        guard=None,
    ) -> None:
        super().__init__()
        if not tiers:
            raise ValueError("a service needs at least one tier")
        if deadline_ms is not None and deadline_ms <= 0.0:
            raise ValueError("deadline_ms must be positive (or None)")
        # Opt-in keyed estimate cache: an int is a capacity, an
        # EstimateCache is adopted as-is, None (default) disables it.
        self.cache = EstimateCache(cache) if isinstance(cache, int) else cache
        self._clock = clock
        self._deadline = None if deadline_ms is None else deadline_ms / 1000.0
        self.breaker_config = breaker or BreakerConfig()
        # Shared telemetry sinks: callers aggregating across services
        # pass their own; None means the process-wide defaults.
        self._registry = registry
        self._collector = collector
        self._events = events
        self._slos = slos
        self._exemplars = exemplars
        #: optional repro.guard.EstimateGuard: provable bound clamping,
        #: OOD routing, and quarantine feedback (duck-typed so the serve
        #: layer stays import-free of repro.guard)
        self.guard = guard
        self._tiers: list[_Tier] = []
        seen: Counter = Counter()
        for est in tiers:
            seen[est.name] += 1
            label = est.name if seen[est.name] == 1 else f"{est.name}#{seen[est.name]}"
            self._tiers.append(
                _Tier(
                    label,
                    est,
                    CircuitBreaker(
                        self.breaker_config,
                        clock,
                        name=label,
                        events=events,
                        registry=registry,
                    ),
                )
            )
        self.name = f"serve({'->'.join(t.name for t in self._tiers)})"
        self.requires_workload = any(t.requires_workload for t in tiers)
        # Adopt the table of an already-fitted chain so the service can
        # answer immediately without a redundant refit.
        for est in tiers:
            try:
                self._table = est.table
                break
            except RuntimeError:
                continue
        #: (name, labels) -> (registry, BoundCounter): hot-path metric
        #: memoization; see :meth:`_bound_counter`
        self._counters: dict = {}
        self._queries = 0
        self._degraded = 0
        self._shortcuts = 0
        self._last_resort = 0
        #: Monotone counter bumped on every model replacement (update or
        #: lifecycle hot-swap); namespaces the estimate cache.
        self._generation = 0

    # ------------------------------------------------------------------
    # Estimator protocol
    # ------------------------------------------------------------------
    def _fit(self, table: Table, workload: Workload | None) -> None:
        for tier in self._tiers:
            tier.estimator.fit(
                table, workload if tier.estimator.requires_workload else None
            )
        if self.guard is not None:
            self.guard.fit(table, workload)

    def _update(self, table: Table, appended, workload: Workload | None) -> None:
        for tier in self._tiers:
            tier.estimator.update(
                table, appended, workload if tier.estimator.requires_workload else None
            )
        if self.guard is not None:
            self.guard.update(table, appended)
        # Model state changed; every cached estimate is stale.
        self._advance_generation()

    def _estimate(self, query: Query) -> float:
        return self.serve(query).estimate

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        return np.array(
            [s.estimate for s in self.serve_batch(queries)], dtype=np.float64
        )

    def model_size_bytes(self) -> int:
        return sum(t.estimator.model_size_bytes() for t in self._tiers)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, query: Query) -> ServedEstimate:
        """Answer one query through the chain; never raises, never NaN."""
        # Raw-speed path: with no span collection active (neither a
        # service-local collector nor the process-wide one) the span
        # machinery can only ever yield None, so skip it entirely.  A
        # cache hit then costs single-digit microseconds — the whole
        # point of the fast-path tier — and a miss pays one extra
        # attribute check before the usual chain walk.
        if self._collector is None and get_collector() is None:
            served = self._cached_answer(query)
            if served is None:
                served = self._serve_inner(query)
                self._cache_result(query, served)
            return served
        with span("serve", collector=self._collector, service=self.name) as root:
            served = self._cached_answer(query)
            if served is None:
                served = self._serve_inner(query)
                self._cache_result(query, served)
            if root is not None:
                root.attrs["tier"] = served.tier
                root.attrs["degraded"] = served.degraded
                served = replace(served, trace_id=root.trace_id)
            return served

    def _cached_answer(self, query: Query) -> ServedEstimate | None:
        """Cache lookup; counts the query and the hit/miss metric."""
        if self.cache is None:
            return None
        start = self._clock()
        hit = self.cache.get(query)
        if hit is None:
            self._count_cache("miss")
            return None
        # A semantic cache distinguishes exact hits from subsumption
        # answers via ``last_hit_kind``; the plain LRU cache has no such
        # attribute and every hit is exact.
        kind = getattr(self.cache, "last_hit_kind", None) or "hit"
        self._count_cache(kind)
        self._queries += 1
        self._count_request("cache")
        # Constructed via __dict__ rather than the frozen-dataclass
        # __init__ (which object.__setattr__'s every field): the
        # generated constructor alone costs ~2.5us, a third of the
        # whole cache-hit latency budget.
        served = ServedEstimate.__new__(ServedEstimate)
        served.__dict__.update({
            "estimate": hit,
            "tier": "semantic-cache" if kind == "semantic_hit" else "cache",
            "tier_index": -1,
            "degraded": False,
            "latency_seconds": self._clock() - start,
            "attempts": (("cache", "served"),),
            "trace_id": None,
        })
        return served

    def _cache_result(self, query: Query, served: ServedEstimate) -> None:
        # Last-resort answers reflect a transient outage, not the model;
        # caching them would pin the emergency constant past recovery.
        if self.cache is not None and served.tier != "last-resort":
            self.cache.put(query, served.estimate)

    def _serve_inner(self, query: Query) -> ServedEstimate:
        table = self.table
        start = self._clock()
        self._queries += 1

        trivial = trivial_answer(query, table)
        if trivial is not None:
            self._shortcuts += 1
            self._count_request("shortcut")
            return ServedEstimate(
                estimate=trivial,
                tier="shortcut",
                tier_index=-1,
                degraded=False,
                latency_seconds=self._clock() - start,
                attempts=(("shortcut", "served"),),
            )

        attempts: list[tuple[str, str]] = []
        # OOD queries skip the learned primary: the model never saw this
        # region of the query space, so a tier with bounded-by-design
        # error answers instead (unless the primary is the only tier).
        skip_primary = (
            self.guard is not None
            and len(self._tiers) > 1
            and self.guard.is_ood(query)
        )
        if skip_primary:
            attempts.append(("guard", "ood-reroute"))
            self._count_guard_ood()
            self._obs_events().emit("guard.ood", service=self.name)
        last = len(self._tiers) - 1
        for index, tier in enumerate(self._tiers):
            if index == 0 and skip_primary:
                self._attempt_outcome(tier, attempts, "skipped-ood")
                continue
            if not tier.breaker.allows_request():
                tier.stats.skipped_open += 1
                self._attempt_outcome(tier, attempts, "skipped-open")
                continue
            # The final tier is the designated cheap answer-of-last-model
            # and is exempt from the deadline: an aborted primary must
            # still degrade to *some* tier's estimate.
            if index < last and self._budget_spent(start):
                tier.stats.skipped_deadline += 1
                self._attempt_outcome(tier, attempts, "skipped-deadline")
                continue

            tier.stats.attempts += 1
            with span(
                "serve.tier", collector=self._collector, tier=tier.name
            ) as attempt_span:
                call_start = self._clock()
                try:
                    raw = float(tier.estimator.estimate(query))
                    failed = False
                except Exception:
                    self._record_failure(tier, "exception", call_start)
                    failed = True
                if failed:
                    self._attempt_outcome(tier, attempts, "exception", attempt_span)
                    continue
                self._record_latency(tier, self._clock() - call_start)

                if index < last and self._budget_spent(start):
                    # The answer arrived, but too late to be useful: the
                    # optimizer has moved on.  Discard and penalise the tier.
                    tier.stats.failures["timeout"] += 1
                    tier.breaker.record_failure()
                    self._attempt_outcome(tier, attempts, "timeout", attempt_span)
                    continue
                if math.isnan(raw):
                    self._record_failure(tier, "nan", None)
                    self._attempt_outcome(tier, attempts, "nan", attempt_span)
                    self._obs_events().emit("serve.nan", tier=tier.name)
                    continue
                if math.isinf(raw):
                    self._record_failure(tier, "inf", None)
                    self._attempt_outcome(tier, attempts, "inf", attempt_span)
                    self._obs_events().emit("serve.nan", tier=tier.name, infinite=True)
                    continue

                if 0.0 <= raw <= table.num_rows:
                    value, outcome = raw, "served"
                else:
                    # Finite but illogical: serve the clamped value, count
                    # the incident against the tier's breaker.
                    value, outcome = clamp_to_bounds(raw, table.num_rows), "sanitized"
                    tier.stats.sanitized += 1
                    self._obs_events().emit(
                        "serve.sanitized", tier=tier.name, raw=raw, served=value
                    )
                value, outcome = self._guard_clamp(
                    tier, query, raw, value, outcome
                )
                if outcome == "served":
                    tier.breaker.record_success()
                else:
                    tier.breaker.record_failure()
                tier.stats.served += 1
                if index > 0:
                    self._degraded += 1
                    self._obs_events().emit(
                        "serve.fallback", tier=tier.name, tier_index=index
                    )
                self._attempt_outcome(tier, attempts, outcome, attempt_span)
            self._count_request("primary" if index == 0 else "fallback")
            return ServedEstimate(
                estimate=value,
                tier=tier.name,
                tier_index=index,
                degraded=index > 0,
                latency_seconds=self._clock() - start,
                attempts=tuple(attempts),
            )

        # Every tier skipped or failed: the in-service emergency answer.
        self._last_resort += 1
        self._degraded += 1
        attempts.append(("last-resort", "served"))
        self._count_request("last-resort")
        self._obs_events().emit("serve.last_resort", service=self.name)
        return ServedEstimate(
            estimate=self._last_resort_value(query, table),
            tier="last-resort",
            tier_index=len(self._tiers),
            degraded=True,
            latency_seconds=self._clock() - start,
            attempts=tuple(attempts),
        )

    def serve_many(self, queries: Sequence[Query]) -> list[ServedEstimate]:
        """Serve a batch, one by one (the harness replay path)."""
        return [self.serve(q) for q in queries]

    # ------------------------------------------------------------------
    # Accuracy feedback
    # ------------------------------------------------------------------
    def record_actual(
        self,
        query: Query,
        served: ServedEstimate,
        actual: float,
        tenant: str = "default",
    ) -> float:
        """Feed back the true cardinality for an earlier estimate.

        The execution engine learns the real row count long after the
        estimate was served; calling this closes the loop: the q-error
        sample feeds the per-tenant accuracy SLO (breach detection) and,
        when bad enough, the worst-q-error exemplar board — carrying the
        serving span's ``trace_id`` so the bad estimate links straight
        to its trace.  Returns the q-error.
        """
        q = _qerror(served.estimate, actual)
        slos = self._slos if self._slos is not None else get_slos()
        slos.record_qerror(tenant, q)
        if self.guard is not None:
            # Quarantine watches the same feedback stream the SLOs do.
            self.guard.observe_qerror(tenant, q)
        exemplars = (
            self._exemplars if self._exemplars is not None else get_exemplars()
        )
        # OOD-rerouted answers are surfaced on the board under an
        # "ood->tier" label, so a drifting workload is attributable at a
        # glance.
        estimator_label = served.tier
        if ("guard", "ood-reroute") in served.attempts:
            estimator_label = f"ood->{served.tier}"
        if exemplars.would_record_qerror(tenant, q):
            exemplars.record_qerror(
                Exemplar(
                    tenant=tenant,
                    estimator=estimator_label,
                    query=repr(query),
                    estimate=served.estimate,
                    latency_seconds=served.latency_seconds,
                    actual=actual,
                    qerror=q,
                    trace_id=served.trace_id,
                )
            )
        return q

    def serve_batch(self, queries: Sequence[Query]) -> list[ServedEstimate]:
        """Serve a batch through each tier's batched hot path.

        The whole batch walks the chain together: every still-unanswered
        query goes to the current tier in one ``estimate_many`` call, the
        per-query outcomes are judged exactly like the scalar path (NaN /
        inf / out-of-bounds), and only the rejected queries fall through
        to the next tier.  A tier call that raises fails the whole
        sub-batch on that tier.  Per-tier latency samples are amortised
        (call wall-clock divided by sub-batch size) so attempt counts and
        latency-sample counts stay one-to-one, the invariant the health
        window and the exported histogram share with the scalar path.
        Never raises; every query gets an answer.
        """
        queries = list(queries)
        with span(
            "serve.batch",
            collector=self._collector,
            service=self.name,
            batch=len(queries),
        ) as root:
            results = self._serve_batch_inner(queries)
            if root is not None:
                results = [replace(s, trace_id=root.trace_id) for s in results]
            return results

    def _serve_batch_inner(self, queries: list[Query]) -> list[ServedEstimate]:
        table = self.table
        start = self._clock()
        n = len(queries)
        results: list[ServedEstimate | None] = [None] * n
        attempts: list[list[tuple[str, str]]] = [[] for _ in range(n)]
        pending: list[int] = []

        for i, query in enumerate(queries):
            cached = self._cached_answer(query)
            if cached is not None:
                results[i] = cached
                continue
            self._queries += 1
            trivial = trivial_answer(query, table)
            if trivial is not None:
                self._shortcuts += 1
                self._count_request("shortcut")
                results[i] = ServedEstimate(
                    estimate=trivial,
                    tier="shortcut",
                    tier_index=-1,
                    degraded=False,
                    latency_seconds=self._clock() - start,
                    attempts=(("shortcut", "served"),),
                )
                continue
            pending.append(i)

        # Per-query OOD verdicts: flagged queries are pulled out of the
        # tier-0 sub-batch and rejoin the walk at tier 1, so the learned
        # primary never sees them (mirrors the scalar path's skip).
        ood_carry: list[int] = []
        if self.guard is not None and len(self._tiers) > 1:
            for i in pending:
                if self.guard.is_ood(queries[i]):
                    ood_carry.append(i)
                    attempts[i].append(("guard", "ood-reroute"))
                    self._count_guard_ood()
                    self._obs_events().emit("guard.ood", service=self.name)
            if ood_carry:
                carried = set(ood_carry)
                pending = [i for i in pending if i not in carried]

        last = len(self._tiers) - 1
        for index, tier in enumerate(self._tiers):
            if index == 0 and ood_carry:
                for i in ood_carry:
                    self._attempt_outcome(tier, attempts[i], "skipped-ood")
            if index == 1 and ood_carry:
                pending = pending + ood_carry
                ood_carry = []
            if not pending:
                if ood_carry:
                    continue  # rerouted queries rejoin at tier 1
                break
            if not tier.breaker.allows_request():
                tier.stats.skipped_open += len(pending)
                for i in pending:
                    self._attempt_outcome(tier, attempts[i], "skipped-open")
                continue
            if index < last and self._budget_spent(start):
                tier.stats.skipped_deadline += len(pending)
                for i in pending:
                    self._attempt_outcome(tier, attempts[i], "skipped-deadline")
                continue

            tier.stats.attempts += len(pending)
            with span(
                "serve.tier",
                collector=self._collector,
                tier=tier.name,
                batch=len(pending),
            ) as attempt_span:
                call_start = self._clock()
                sub = [queries[i] for i in pending]
                try:
                    raw = np.asarray(
                        tier.estimator.estimate_many(sub), dtype=np.float64
                    )
                    failed = raw.shape != (len(sub),)
                except Exception as exc:
                    self._obs_events().emit(
                        "serve.batch_tier_error",
                        tier=tier.name,
                        batch=len(sub),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    failed = True
                per_query = (self._clock() - call_start) / len(pending)
                for _ in pending:
                    self._record_latency(tier, per_query)
                if failed:
                    for i in pending:
                        tier.stats.failures["exception"] += 1
                        tier.breaker.record_failure()
                        self._attempt_outcome(
                            tier, attempts[i], "exception", attempt_span
                        )
                    continue
                if index < last and self._budget_spent(start):
                    # Answers arrived too late to be useful — same
                    # discard-and-penalise as the scalar path.
                    for i in pending:
                        tier.stats.failures["timeout"] += 1
                        tier.breaker.record_failure()
                        self._attempt_outcome(
                            tier, attempts[i], "timeout", attempt_span
                        )
                    continue

                still: list[int] = []
                for pos, i in enumerate(pending):
                    value = float(raw[pos])
                    if math.isnan(value):
                        self._record_failure(tier, "nan", None)
                        self._attempt_outcome(tier, attempts[i], "nan", attempt_span)
                        self._obs_events().emit("serve.nan", tier=tier.name)
                        still.append(i)
                        continue
                    if math.isinf(value):
                        self._record_failure(tier, "inf", None)
                        self._attempt_outcome(tier, attempts[i], "inf", attempt_span)
                        self._obs_events().emit(
                            "serve.nan", tier=tier.name, infinite=True
                        )
                        still.append(i)
                        continue
                    if 0.0 <= value <= table.num_rows:
                        outcome = "served"
                    else:
                        value, outcome = (
                            clamp_to_bounds(value, table.num_rows),
                            "sanitized",
                        )
                        tier.stats.sanitized += 1
                        self._obs_events().emit(
                            "serve.sanitized",
                            tier=tier.name,
                            raw=float(raw[pos]),
                            served=value,
                        )
                    value, outcome = self._guard_clamp(
                        tier, queries[i], float(raw[pos]), value, outcome
                    )
                    if outcome == "served":
                        tier.breaker.record_success()
                    else:
                        tier.breaker.record_failure()
                    tier.stats.served += 1
                    if index > 0:
                        self._degraded += 1
                        self._obs_events().emit(
                            "serve.fallback", tier=tier.name, tier_index=index
                        )
                    self._attempt_outcome(tier, attempts[i], outcome, attempt_span)
                    self._count_request("primary" if index == 0 else "fallback")
                    served = ServedEstimate(
                        estimate=value,
                        tier=tier.name,
                        tier_index=index,
                        degraded=index > 0,
                        latency_seconds=self._clock() - start,
                        attempts=tuple(attempts[i]),
                    )
                    self._cache_result(queries[i], served)
                    results[i] = served
                pending = still

        for i in pending:
            # Every tier skipped or failed this query: emergency answer.
            self._last_resort += 1
            self._degraded += 1
            attempts[i].append(("last-resort", "served"))
            self._count_request("last-resort")
            self._obs_events().emit("serve.last_resort", service=self.name)
            query = queries[i]
            results[i] = ServedEstimate(
                estimate=self._last_resort_value(query, table),
                tier="last-resort",
                tier_index=len(self._tiers),
                degraded=True,
                latency_seconds=self._clock() - start,
                attempts=tuple(attempts[i]),
            )
        assert all(served is not None for served in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Model lifecycle (hot-swap)
    # ------------------------------------------------------------------
    @property
    def model_generation(self) -> int:
        """Counter of model replacements; cache keys carry it."""
        return self._generation

    def replace_tier(self, index: int, estimator: CardinalityEstimator) -> None:
        """Atomically swap the estimator behind one tier of the chain.

        The promotion path of :mod:`repro.lifecycle` calls this (via
        :meth:`replace_primary`) after a candidate passes the gate.  The
        old estimator keeps answering until the single reference
        assignment below, so there is no window where the chain has no
        tier ``index``; the tier gets a fresh breaker and fresh stats
        (the old model's failure history says nothing about the new
        one), the estimate cache is invalidated by bumping the model
        generation, and the service adopts the new estimator's table so
        bounds checks and trivial answers reflect the data it was
        trained on.
        """
        if not 0 <= index < len(self._tiers):
            raise IndexError(f"no tier {index}; chain has {len(self._tiers)}")
        old = self._tiers[index]
        self._tiers[index] = _Tier(
            estimator.name,
            estimator,
            CircuitBreaker(
                self.breaker_config,
                self._clock,
                name=estimator.name,
                events=self._events,
                registry=self._registry,
            ),
        )
        self.name = f"serve({'->'.join(t.name for t in self._tiers)})"
        try:
            self._table = estimator.table
        except RuntimeError:
            pass  # not fitted: caller is wiring a chain pre-fit
        generation = self._advance_generation()
        self._obs_events().emit(
            "serve.model_swap",
            tier_index=index,
            old=old.name,
            new=estimator.name,
            generation=generation,
        )

    def replace_primary(self, estimator: CardinalityEstimator) -> None:
        """Hot-swap the primary tier (see :meth:`replace_tier`)."""
        self.replace_tier(0, estimator)

    def _advance_generation(self) -> int:
        self._generation += 1
        if self.cache is not None:
            self.cache.bump_generation()
        return self._generation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> ServiceHealth:
        """Point-in-time snapshot of service and per-tier counters."""
        return ServiceHealth(
            queries=self._queries,
            answered=self._queries,
            degraded=self._degraded,
            shortcuts=self._shortcuts,
            last_resort=self._last_resort,
            tiers=tuple(t.health() for t in self._tiers),
        )

    @property
    def tier_names(self) -> list[str]:
        return [t.name for t in self._tiers]

    @property
    def primary_estimator(self) -> CardinalityEstimator:
        """The estimator behind tier 0 (the lifecycle incumbent)."""
        return self._tiers[0].estimator

    def breaker_state(self, tier: str) -> BreakerState:
        """Current breaker state of the named tier."""
        for t in self._tiers:
            if t.name == tier:
                return t.breaker.state
        raise KeyError(f"no tier named {tier!r}; have {self.tier_names}")

    # ------------------------------------------------------------------
    def _budget_spent(self, start: float) -> bool:
        return self._deadline is not None and self._clock() - start > self._deadline

    def _guard_clamp(
        self, tier: _Tier, query: Query, raw: float, value: float, outcome: str
    ) -> tuple[float, str]:
        """Pull an accepted answer into the provable bound interval.

        A violation is counted against the tier (``guard_clamped`` stat,
        ``repro_guard_clamped_total{reason}`` metric, ``guard.clamp``
        event) and reported as the ``"guard-clamped"`` outcome, which
        the caller records as a breaker failure: an estimate that broke
        a provable bound is model misbehaviour, not noise.
        """
        if self.guard is None:
            return value, outcome
        value, reason = self.guard.clamp(query, value)
        if reason is not None:
            outcome = "guard-clamped"
            tier.stats.guard_clamped += 1
            self._count_guard_clamp(reason)
            self._obs_events().emit(
                "guard.clamp",
                tier=tier.name,
                raw=raw,
                served=value,
                reason=reason,
            )
        return value, outcome

    def _last_resort_value(self, query: Query, table: Table) -> float:
        """The emergency answer, clamped into every bound we can prove."""
        if any(p.is_empty for p in query.predicates):
            return 0.0
        value = clamp_to_bounds(
            table.num_rows * LAST_RESORT_SELECTIVITY**query.num_predicates,
            table.num_rows,
        )
        if self.guard is not None:
            value, reason = self.guard.clamp(query, value)
            if reason is not None:
                self._count_guard_clamp(reason)
        return value

    def _count_guard_clamp(self, reason: str) -> None:
        self._bound_counter(
            GUARD_CLAMPED,
            "Estimates pulled into the provable bound interval",
            reason=reason,
        ).inc()

    def _count_guard_ood(self) -> None:
        self._bound_counter(
            GUARD_OOD,
            "Out-of-distribution guard decisions",
            action="reroute",
        ).inc()

    def _record_failure(
        self, tier: _Tier, kind: str, call_start: float | None
    ) -> None:
        if call_start is not None:
            self._record_latency(tier, self._clock() - call_start)
        tier.stats.failures[kind] += 1
        tier.breaker.record_failure()

    # ------------------------------------------------------------------
    # Telemetry plumbing (shared sinks default to the process-wide ones)
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Memoized counter handles point into a live registry (which
        # holds a lock); they are a cache, not state — rebuilt lazily.
        state = self.__dict__.copy()
        state["_counters"] = {}
        return state

    def _obs_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _bound_counter(self, name: str, help: str, **labels):
        """Memoized :class:`~repro.obs.BoundCounter` for the hot path.

        ``registry.counter(...).inc(**labels)`` pays a lock, a dict
        probe, per-label regex validation, and a sorted key build on
        every call; at cache-hit speeds that is a measurable slice of
        the budget.  The bound series does all of that once.  Counter
        objects survive ``registry.reset()`` (reset zeroes series, it
        does not drop metrics), so caching the handle is safe as long
        as the registry itself has not been swapped — which the
        identity check guards.
        """
        key = (name, tuple(sorted(labels.items())))
        registry = self._obs_registry()
        cached = self._counters.get(key)
        if cached is not None and cached[0] is registry:
            return cached[1]
        bound = registry.counter(name, help).labelled(**labels)
        self._counters[key] = (registry, bound)
        return bound

    def _obs_events(self) -> EventLog:
        return self._events if self._events is not None else get_events()

    def _record_latency(self, tier: _Tier, seconds: float) -> None:
        tier.stats.latencies.observe(seconds)
        self._obs_registry().histogram(
            SERVE_TIER_SECONDS, "Per-tier serve-attempt latency"
        ).observe(seconds, tier=tier.name)

    def _count_request(self, outcome: str) -> None:
        self._hot_inc(SERVE_REQUESTS, "Queries served, by outcome", outcome)

    def _count_cache(self, outcome: str) -> None:
        self._hot_inc(SERVE_CACHE, "Estimate-cache lookups, by outcome", outcome)

    def _hot_inc(self, name: str, help: str, outcome: str) -> None:
        """Single-``outcome``-label bump without the kwargs/sort of
        :meth:`_bound_counter` key building (the cache-hit path runs
        this twice per query)."""
        key = (name, outcome)
        registry = self._obs_registry()
        cached = self._counters.get(key)
        if cached is not None and cached[0] is registry:
            cached[1].inc()
            return
        bound = registry.counter(name, help).labelled(outcome=outcome)
        self._counters[key] = (registry, bound)
        bound.inc()

    def _attempt_outcome(
        self, tier: _Tier, attempts: list, outcome: str, attempt_span=None
    ) -> None:
        attempts.append((tier.name, outcome))
        if attempt_span is not None:
            attempt_span.attrs["outcome"] = outcome
        self._bound_counter(
            SERVE_TIER_ATTEMPTS,
            "Tier attempt outcomes along the chain",
            tier=tier.name,
            outcome=outcome,
        ).inc()
