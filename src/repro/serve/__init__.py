"""Fault-tolerant estimator serving: fallback chains, circuit breakers,
output sanitization and health reporting (the production guardrails the
paper's findings call for)."""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .cache import EstimateCache
from .heuristic import HeuristicConstantEstimator
from .service import (
    LAST_RESORT_SELECTIVITY,
    EstimatorService,
    ServedEstimate,
    ServiceHealth,
    TierHealth,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "EstimateCache",
    "EstimatorService",
    "HeuristicConstantEstimator",
    "LAST_RESORT_SELECTIVITY",
    "ServedEstimate",
    "ServiceHealth",
    "TierHealth",
]
