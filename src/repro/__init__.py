"""repro: a reproduction of "Are We Ready For Learned Cardinality
Estimation?" (Wang et al., VLDB 2021).

The package provides:

* :mod:`repro.core` — tables, conjunctive range queries, the unified
  workload generator, and q-error metrics;
* :mod:`repro.estimators` — eight traditional and five learned
  cardinality estimators behind one protocol;
* :mod:`repro.datasets` — simulated Census/Forest/Power/DMV tables and
  the Section 6 synthetic generator;
* :mod:`repro.dynamic` — the Section 5 dynamic-environment simulator;
* :mod:`repro.rules` — the Section 6.3 logical-rule checker;
* :mod:`repro.obs` — observability: metrics, tracing spans, events and
  training telemetry (the substrate the cost figures flow through);
* :mod:`repro.bench` — harnesses regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import Scale, datasets, generate_workload, make_estimator, summarize

    table = datasets.census()
    rng = np.random.default_rng(0)
    train = generate_workload(table, 1000, rng)
    test = generate_workload(table, 200, rng)
    naru = make_estimator("naru", Scale.ci()).fit(table)
    print(summarize(naru.estimate_many(list(test.queries)), test.cardinalities))
"""

from . import (
    datasets,
    dynamic,
    explain,
    faults,
    guard,
    lifecycle,
    obs,
    persistence,
    planner,
    rules,
    serve,
    tuning,
)
from .core import (
    CardinalityEstimator,
    Predicate,
    QErrorSummary,
    Query,
    Table,
    Workload,
    WorkloadConfig,
    WorkloadGenerator,
    generate_workload,
    qerror,
    qerrors,
    summarize,
)
from .registry import (
    DBMS_NAMES,
    DEFAULT_FALLBACK_NAMES,
    EXTRA_NAMES,
    LEARNED_NAMES,
    TRADITIONAL_NAMES,
    estimator_names,
    make_estimator,
    make_fallback_chain,
    make_guarded_service,
    make_learned,
    make_lifecycle_manager,
    make_service,
    make_traditional,
)
from .scale import Scale
from .serve import EstimatorService

__version__ = "1.0.0"

__all__ = [
    "CardinalityEstimator",
    "DBMS_NAMES",
    "DEFAULT_FALLBACK_NAMES",
    "EXTRA_NAMES",
    "EstimatorService",
    "LEARNED_NAMES",
    "Predicate",
    "QErrorSummary",
    "Query",
    "Scale",
    "TRADITIONAL_NAMES",
    "Table",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "datasets",
    "dynamic",
    "estimator_names",
    "explain",
    "faults",
    "generate_workload",
    "guard",
    "lifecycle",
    "make_estimator",
    "make_fallback_chain",
    "make_guarded_service",
    "make_learned",
    "make_lifecycle_manager",
    "make_service",
    "make_traditional",
    "obs",
    "persistence",
    "planner",
    "qerror",
    "qerrors",
    "rules",
    "serve",
    "summarize",
    "tuning",
]
