"""Gradient-boosted trees substrate (replaces XGBoost; see DESIGN.md)."""

from .boosting import GradientBoostedTrees
from .tree import FeatureBinner, RegressionTree

__all__ = ["FeatureBinner", "GradientBoostedTrees", "RegressionTree"]
