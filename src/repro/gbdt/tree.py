"""Histogram-based regression trees, the weak learner of ``repro.gbdt``.

Features are pre-binned to a small number of quantile buckets (the same
trick used by XGBoost's ``hist`` method and LightGBM), so split search is
a couple of ``bincount`` calls per feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class FeatureBinner:
    """Maps continuous features to integer bins via per-feature quantiles."""

    def __init__(self, max_bins: int = 64) -> None:
        if max_bins < 2:
            raise ValueError("need at least 2 bins")
        self.max_bins = max_bins
        self.bin_edges: list[np.ndarray] = []

    def fit(self, features: np.ndarray) -> "FeatureBinner":
        features = np.asarray(features, dtype=np.float64)
        self.bin_edges = []
        for j in range(features.shape[1]):
            unique = np.unique(features[:, j])
            if len(unique) <= self.max_bins:
                # Split exactly between consecutive distinct values.
                edges = (unique[:-1] + unique[1:]) / 2.0
            else:
                qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
                edges = np.unique(np.quantile(features[:, j], qs))
            self.bin_edges.append(edges)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if not self.bin_edges:
            raise RuntimeError("binner must be fit before transform")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape, dtype=np.int64)
        for j, edges in enumerate(self.bin_edges):
            out[:, j] = np.searchsorted(edges, features[:, j], side="right")
        return out

    def num_bins(self, feature: int) -> int:
        return len(self.bin_edges[feature]) + 1


@dataclass
class _Node:
    feature: int = -1
    threshold_bin: int = -1  # go left when bin <= threshold_bin
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """A depth-limited regression tree grown greedily on binned features."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 5,
        min_gain: float = 1e-12,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: _Node | None = None
        self._num_nodes = 0

    # ------------------------------------------------------------------
    def fit(self, binned: np.ndarray, target: np.ndarray) -> "RegressionTree":
        binned = np.asarray(binned, dtype=np.int64)
        target = np.asarray(target, dtype=np.float64)
        if binned.shape[0] != target.shape[0]:
            raise ValueError("features and target must align")
        self._num_nodes = 0
        self._root = self._grow(binned, target, np.arange(len(target)), depth=0)
        return self

    def _grow(
        self, binned: np.ndarray, target: np.ndarray, idx: np.ndarray, depth: int
    ) -> _Node:
        self._num_nodes += 1
        node = _Node(value=float(target[idx].mean()))
        if depth >= self.max_depth or len(idx) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(binned, target, idx)
        if best is None:
            return node
        feature, threshold_bin = best
        go_left = binned[idx, feature] <= threshold_bin
        node.feature = feature
        node.threshold_bin = threshold_bin
        node.left = self._grow(binned, target, idx[go_left], depth + 1)
        node.right = self._grow(binned, target, idx[~go_left], depth + 1)
        return node

    def _best_split(
        self, binned: np.ndarray, target: np.ndarray, idx: np.ndarray
    ) -> tuple[int, int] | None:
        y = target[idx]
        total_sum = y.sum()
        total_cnt = len(idx)
        parent_score = total_sum**2 / total_cnt
        best_gain = self.min_gain
        best: tuple[int, int] | None = None
        for feature in range(binned.shape[1]):
            bins = binned[idx, feature]
            nb = int(bins.max()) + 1
            if nb < 2:
                continue
            sums = np.bincount(bins, weights=y, minlength=nb)
            cnts = np.bincount(bins, minlength=nb)
            left_sum = np.cumsum(sums)[:-1]
            left_cnt = np.cumsum(cnts)[:-1]
            right_sum = total_sum - left_sum
            right_cnt = total_cnt - left_cnt
            valid = (left_cnt >= self.min_samples_leaf) & (
                right_cnt >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = (
                    left_sum**2 / np.maximum(left_cnt, 1)
                    + right_sum**2 / np.maximum(right_cnt, 1)
                    - parent_score
                )
            gain = np.where(valid, gain, -np.inf)
            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best = (feature, k)
        return best

    # ------------------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree must be fit before predicting")
        binned = np.asarray(binned, dtype=np.int64)
        out = np.empty(binned.shape[0], dtype=np.float64)
        self._predict_into(self._root, binned, np.arange(binned.shape[0]), out)
        return out

    def _predict_into(
        self, node: _Node, binned: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf or len(idx) == 0:
            out[idx] = node.value
            return
        go_left = binned[idx, node.feature] <= node.threshold_bin
        assert node.left is not None and node.right is not None
        self._predict_into(node.left, binned, idx[go_left], out)
        self._predict_into(node.right, binned, idx[~go_left], out)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes
