"""Gradient-boosted regression trees (squared loss).

Stands in for XGBoost in the LW-XGB estimator.  With squared loss the
negative gradient is simply the residual, so boosting reduces to fitting
each tree to the current residuals and adding it with shrinkage.
Supports warm-started continuation (``extend``) for the dynamic
environment, where LW-XGB refreshes its model on updated query labels.

Boosting rounds are the GBDT analogue of training epochs: when a
:class:`~repro.obs.TrainingMonitor` is installed, every round reports
the post-round residual mean-squared error and its wall-clock under
``monitor_label`` (LW-XGB sets its own name).  With no monitor installed
the loop pays nothing.
"""

from __future__ import annotations


import numpy as np

from ..obs import get_monitor
from ..obs.clock import perf_counter
from .tree import FeatureBinner, RegressionTree


class GradientBoostedTrees:
    """Boosted ensemble ``f(x) = base + lr * sum_t tree_t(x)``."""

    def __init__(
        self,
        num_trees: int = 64,
        learning_rate: float = 0.15,
        max_depth: int = 6,
        min_samples_leaf: int = 5,
        max_bins: int = 64,
        monitor_label: str = "gbdt",
    ) -> None:
        if num_trees < 1:
            raise ValueError("need at least one tree")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.monitor_label = monitor_label
        self._binner: FeatureBinner | None = None
        self._trees: list[RegressionTree] = []
        self._base: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, target: np.ndarray) -> "GradientBoostedTrees":
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        self._binner = FeatureBinner(self.max_bins).fit(features)
        binned = self._binner.transform(features)
        self._base = float(target.mean())
        self._trees = []
        residual = target - self._base
        self._boost(binned, residual, self.num_trees)
        return self

    def extend(
        self, features: np.ndarray, target: np.ndarray, extra_trees: int
    ) -> "GradientBoostedTrees":
        """Add ``extra_trees`` boosted on fresh data (model update path)."""
        if self._binner is None:
            raise RuntimeError("model must be fit before extending")
        features = np.asarray(features, dtype=np.float64)
        binned = self._binner.transform(features)
        residual = np.asarray(target, dtype=np.float64) - self._predict_binned(binned)
        self._boost(binned, residual, extra_trees)
        return self

    def _boost(
        self, binned: np.ndarray, residual: np.ndarray, rounds: int
    ) -> None:
        """Fit ``rounds`` trees against ``residual`` (mutated in place)."""
        monitor = get_monitor()
        for _ in range(rounds):
            round_start = perf_counter() if monitor is not None else 0.0
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(binned, residual)
            residual -= self.learning_rate * tree.predict(binned)
            self._trees.append(tree)
            if monitor is not None:
                monitor.on_epoch(
                    self.monitor_label,
                    epoch=len(self._trees) - 1,
                    loss=float(np.mean(residual * residual)),
                    seconds=perf_counter() - round_start,
                )

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._binner is None:
            raise RuntimeError("model must be fit before predicting")
        binned = self._binner.transform(np.asarray(features, dtype=np.float64))
        return self._predict_binned(binned)

    def _predict_binned(self, binned: np.ndarray) -> np.ndarray:
        out = np.full(binned.shape[0], self._base, dtype=np.float64)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(binned)
        return out

    @property
    def num_fitted_trees(self) -> int:
        return len(self._trees)

    def num_nodes(self) -> int:
        """Total node count across trees (a model-size proxy)."""
        return sum(t.num_nodes for t in self._trees)
