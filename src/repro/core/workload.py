"""The paper's unified workload generator (Section 3).

A query with ``d`` predicates is a hyper-rectangle controlled by a *query
center* and a *range width* per predicated column:

* the number of predicates ``d`` is uniform over ``1 .. |D|`` and the ``d``
  columns are sampled without replacement;
* the center is drawn from a random data tuple with probability 90%, and
  independently per-column from the value domain ("out-of-domain", OOD)
  with probability 10%;
* the width is uniform over ``[0, domain_size]`` half the time and
  exponential with rate ``lambda = 10 / domain_size`` the other half;
* categorical columns always receive an equality predicate;
* a side of the rectangle that leaves the domain becomes an open range.

Section 6 reuses the generator with ``ood_probability = 1.0`` to probe the
whole query space of the synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .query import Predicate, Query
from .table import Column, Table


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the unified generator; paper defaults."""

    ood_probability: float = 0.1
    exponential_width_probability: float = 0.5
    exponential_rate_scale: float = 10.0
    min_predicates: int = 1
    max_predicates: int | None = None  # None means |D|

    def __post_init__(self) -> None:
        if not 0.0 <= self.ood_probability <= 1.0:
            raise ValueError("ood_probability must be a probability")
        if not 0.0 <= self.exponential_width_probability <= 1.0:
            raise ValueError("exponential_width_probability must be a probability")
        if self.min_predicates < 1:
            raise ValueError("queries must have at least one predicate")


@dataclass(frozen=True)
class Workload:
    """A batch of queries with their exact cardinalities (the labels)."""

    queries: tuple[Query, ...]
    cardinalities: np.ndarray

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.cardinalities):
            raise ValueError("queries and cardinalities must align")

    def __len__(self) -> int:
        return len(self.queries)

    def selectivities(self, table: Table) -> np.ndarray:
        return self.cardinalities / table.num_rows

    def split(self, first: int) -> tuple["Workload", "Workload"]:
        """Split into a head of ``first`` queries and the remaining tail."""
        if not 0 < first < len(self):
            raise ValueError(f"split point {first} outside (0, {len(self)})")
        return (
            Workload(self.queries[:first], self.cardinalities[:first]),
            Workload(self.queries[first:], self.cardinalities[first:]),
        )


class WorkloadGenerator:
    """Generates queries over one table following the paper's recipe."""

    def __init__(self, table: Table, config: WorkloadConfig | None = None) -> None:
        self.table = table
        self.config = config or WorkloadConfig()
        max_d = self.config.max_predicates or table.num_columns
        self._max_predicates = min(max_d, table.num_columns)
        if self.config.min_predicates > self._max_predicates:
            raise ValueError("min_predicates exceeds the number of columns")

    # ------------------------------------------------------------------
    def generate(self, count: int, rng: np.random.Generator) -> Workload:
        """Generate ``count`` queries and label them against the table."""
        queries = tuple(self.generate_query(rng) for _ in range(count))
        cards = self.table.cardinalities(list(queries))
        return Workload(queries, cards)

    def generate_query(self, rng: np.random.Generator) -> Query:
        """Generate one query (unlabelled)."""
        cfg = self.config
        d = int(rng.integers(cfg.min_predicates, self._max_predicates + 1))
        cols = rng.choice(self.table.num_columns, size=d, replace=False)
        use_ood = rng.random() < cfg.ood_probability
        # Data-centered queries take *one* tuple as the center of every
        # predicate (Section 3), so the query is guaranteed non-empty.
        center_row = None if use_ood else int(rng.integers(self.table.num_rows))
        preds = tuple(
            self._predicate_for(int(c), center_row, rng) for c in np.sort(cols)
        )
        return Query(preds)

    # ------------------------------------------------------------------
    def _predicate_for(
        self, col_index: int, center_row: int | None, rng: np.random.Generator
    ) -> Predicate:
        column = self.table.columns[col_index]
        center = self._center(col_index, column, center_row, rng)
        if column.is_categorical:
            return Predicate(col_index, center, center)
        width = self._width(column, rng)
        lo: float | None = center - width / 2.0
        hi: float | None = center + width / 2.0
        # A side that leaves the domain becomes an open range (Section 3).
        if lo < column.domain_min:
            lo = None
        if hi > column.domain_max:
            hi = None
        if lo is None and hi is None:
            # The box covers the whole domain; keep it closed at the top so
            # the predicate stays well-formed (selects everything).
            hi = column.domain_max
        return Predicate(col_index, lo, hi)

    def _center(
        self,
        col_index: int,
        column: Column,
        center_row: int | None,
        rng: np.random.Generator,
    ) -> float:
        if center_row is not None:
            return float(self.table.data[center_row, col_index])
        if column.is_categorical or column.num_distinct == 1:
            return float(rng.choice(column.distinct_values))
        return float(rng.uniform(column.domain_min, column.domain_max))

    def _width(self, column: Column, rng: np.random.Generator) -> float:
        size = column.domain_size
        if size == 0.0:
            return 0.0
        if rng.random() < self.config.exponential_width_probability:
            scale = size / self.config.exponential_rate_scale
            return float(min(rng.exponential(scale), size))
        return float(rng.uniform(0.0, size))


def generate_workload(
    table: Table,
    count: int,
    rng: np.random.Generator,
    config: WorkloadConfig | None = None,
) -> Workload:
    """One-shot helper: build a generator and produce a labelled workload."""
    return WorkloadGenerator(table, config).generate(count, rng)
