"""Core substrate: tables, queries, workload generation, metrics, and the
estimator protocol."""

from .estimator import CardinalityEstimator, TimingRecord
from .metrics import (
    QErrorSummary,
    format_qerror,
    qerror,
    qerrors,
    summarize,
    top_fraction,
    win_lose,
)
from .query import Predicate, Query, closed_range, equality, query_of
from .table import Column, Table
from .workload import Workload, WorkloadConfig, WorkloadGenerator, generate_workload

__all__ = [
    "CardinalityEstimator",
    "Column",
    "Predicate",
    "QErrorSummary",
    "Query",
    "Table",
    "TimingRecord",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "closed_range",
    "equality",
    "format_qerror",
    "generate_workload",
    "qerror",
    "qerrors",
    "query_of",
    "summarize",
    "top_fraction",
    "win_lose",
]
