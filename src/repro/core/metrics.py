"""Accuracy metrics: q-error and the summaries reported in the paper.

Q-error (Section 3) is the symmetric relative error::

    error = max(est, act) / min(est, act)

Both estimate and actual are clamped to at least one tuple before the
ratio is taken, matching the convention of the paper's released code
(otherwise any zero-cardinality query would yield an infinite error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Percentiles reported in Table 4 of the paper.  "max" is encoded as 100.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0, 100.0)


def qerror(estimate: float, actual: float) -> float:
    """Q-error of a single estimate, with the >=1-tuple clamp."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def qerrors(estimates: np.ndarray, actuals: np.ndarray) -> np.ndarray:
    """Vectorised q-errors for a batch of estimates."""
    est = np.maximum(np.asarray(estimates, dtype=np.float64), 1.0)
    act = np.maximum(np.asarray(actuals, dtype=np.float64), 1.0)
    return np.maximum(est / act, act / est)


@dataclass(frozen=True)
class QErrorSummary:
    """The 50th/95th/99th/max q-error row of Table 4."""

    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "QErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("cannot summarise an empty error vector")
        p50, p95, p99 = np.percentile(errors, [50.0, 95.0, 99.0])
        return cls(float(p50), float(p95), float(p99), float(errors.max()))

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.p50, self.p95, self.p99, self.max)

    def __str__(self) -> str:
        vals = [format_qerror(v) for v in self.as_tuple()]
        return f"50th={vals[0]} 95th={vals[1]} 99th={vals[2]} max={vals[3]}"


def summarize(estimates: np.ndarray, actuals: np.ndarray) -> QErrorSummary:
    """Summary of the q-errors of a batch of estimates."""
    return QErrorSummary.from_errors(qerrors(estimates, actuals))


def top_fraction(errors: np.ndarray, fraction: float = 0.01) -> np.ndarray:
    """The largest ``fraction`` of errors (the "top 1%" of Figures 9-10)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    errors = np.sort(np.asarray(errors, dtype=np.float64))
    k = max(1, int(round(len(errors) * fraction)))
    return errors[-k:]


def format_qerror(value: float) -> str:
    """Render a q-error the way Table 4 does (3 digits, sci over 10^4)."""
    if value >= 1e4:
        exponent = int(np.floor(np.log10(value)))
        mantissa = value / 10**exponent
        return f"{mantissa:.0f}e{exponent}"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def win_lose(
    traditional: dict[str, QErrorSummary], learned: dict[str, QErrorSummary]
) -> dict[str, str]:
    """The "L v.s. T" row of Table 4 for one dataset.

    For each reported percentile, "win" means the best learned method has a
    q-error no larger than the best traditional method.
    """
    verdicts: dict[str, str] = {}
    for attr in ("p50", "p95", "p99", "max"):
        best_t = min(getattr(s, attr) for s in traditional.values())
        best_l = min(getattr(s, attr) for s in learned.values())
        verdicts[attr] = "win" if best_l <= best_t else "lose"
    return verdicts
