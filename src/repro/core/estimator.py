"""Estimator protocol shared by all thirteen methods.

Every estimator implements:

* ``fit(table, workload=None)`` — build the model/statistics.  Query-driven
  methods (``requires_workload`` true) need a labelled training workload;
  data-driven methods ignore it.
* ``estimate(query)`` — estimated COUNT(*) for one query.
* ``update(table, appended, workload=None)`` — react to appended rows, the
  dynamic-environment protocol of Section 5.  The default is a full refit;
  learned methods override it with the incremental procedure described in
  their original papers (e.g. Naru trains one more epoch, DeepDB inserts a
  sample into its SPN).

The base class instruments these calls through :mod:`repro.obs` — every
fit/estimate/update emits a tracing span (when a collector is installed)
and a latency-histogram sample, and the same measurement feeds the
backward-compatible :class:`TimingRecord` that Figure 4
(training/inference cost) and Figures 6-8 (dynamic environments) read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..obs import observe_phase, timed_span
from .query import Query
from .table import Table
from .workload import Workload


@dataclass
class TimingRecord:
    """Wall-clock costs captured by the harness for one estimator."""

    #: cumulative wall-clock across every fit() call (a refit adds to
    #: the total instead of silently overwriting the first fit's cost)
    fit_seconds: float = 0.0
    fit_count: int = 0
    #: cumulative wall-clock across every update() call (a dynamic run
    #: updates many times; per-call times are returned by update())
    update_seconds: float = 0.0
    update_count: int = 0
    total_inference_seconds: float = 0.0
    inference_count: int = 0

    @property
    def mean_fit_seconds(self) -> float:
        if self.fit_count == 0:
            return 0.0
        return self.fit_seconds / self.fit_count

    @property
    def mean_inference_ms(self) -> float:
        if self.inference_count == 0:
            return 0.0
        return 1000.0 * self.total_inference_seconds / self.inference_count

    @property
    def mean_update_seconds(self) -> float:
        if self.update_count == 0:
            return 0.0
        return self.update_seconds / self.update_count


class CardinalityEstimator(ABC):
    """Base class for all cardinality estimators in the benchmark."""

    #: Short name used in tables and the registry.
    name: str = "estimator"
    #: True for query-driven (regression) methods that need labelled queries.
    requires_workload: bool = False
    #: True when the estimator implements the resumable-training protocol
    #: (``begin_training`` / ``train_epochs`` / ``training_state`` /
    #: ``restore_training``) that :mod:`repro.lifecycle` drives for
    #: crash-safe checkpointed retraining.
    supports_resumable_training: bool = False

    def __init__(self) -> None:
        self.timing = TimingRecord()
        self._table: Table | None = None

    # ------------------------------------------------------------------
    # Public API (timed)
    # ------------------------------------------------------------------
    def fit(self, table: Table, workload: Workload | None = None) -> "CardinalityEstimator":
        """Build the estimator from ``table`` (and queries, if query-driven)."""
        if self.requires_workload and workload is None:
            raise ValueError(f"{self.name} is query-driven and needs a workload")
        with timed_span("estimator.fit", estimator=self.name) as timer:
            self._table = table
            self._fit(table, workload)
        self.timing.fit_seconds += timer.elapsed
        self.timing.fit_count += 1
        observe_phase("fit", self.name, timer.elapsed)
        return self

    def estimate(self, query: Query) -> float:
        """Estimated COUNT(*) for one query (clamped to be non-negative)."""
        if self._table is None:
            raise RuntimeError(f"{self.name} must be fit before estimating")
        with timed_span("estimator.estimate", estimator=self.name) as timer:
            value = self._estimate(query)
        self.timing.total_inference_seconds += timer.elapsed
        self.timing.inference_count += 1
        observe_phase("estimate", self.name, timer.elapsed)
        return max(0.0, float(value))

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Estimates for a batch of queries through the batched hot path.

        Dispatches to :meth:`_estimate_batch` (vectorized in subclasses
        where batching is real math, a scalar loop otherwise) under **one**
        ``estimator.estimate_batch`` span — a batch is one logical
        inference, so it must not inflate span counts N-fold the way the
        old per-query re-entry did.  Timing accounting stays per-query
        (``inference_count`` grows by ``len(queries)``), and every element
        gets exactly the scalar path's non-negativity clamp.
        """
        if self._table is None:
            raise RuntimeError(f"{self.name} must be fit before estimating")
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        with timed_span(
            "estimator.estimate_batch", estimator=self.name, batch=len(queries)
        ) as timer:
            raw = np.asarray(self._estimate_batch(queries), dtype=np.float64)
        if raw.shape != (len(queries),):
            raise ValueError(
                f"{self.name}._estimate_batch returned shape {raw.shape} "
                f"for {len(queries)} queries"
            )
        self.timing.total_inference_seconds += timer.elapsed
        self.timing.inference_count += len(queries)
        observe_phase("estimate", self.name, timer.elapsed)
        # max(0.0, x) semantics per element: NaN compares False, so it
        # clamps to 0.0 exactly like the scalar path's ``max``.
        return np.where(raw > 0.0, raw, 0.0)

    def update(
        self,
        table: Table,
        appended: np.ndarray,
        workload: Workload | None = None,
    ) -> float:
        """React to ``appended`` rows; returns the update wall-clock seconds.

        ``table`` is the post-update relation (original rows plus
        ``appended``).  Query-driven methods receive a fresh training
        ``workload`` labelled against the new table.
        """
        if self._table is None:
            raise RuntimeError(f"{self.name} must be fit before updating")
        with timed_span("estimator.update", estimator=self.name) as timer:
            self._table = table
            self._update(table, appended, workload)
        self.timing.update_seconds += timer.elapsed
        self.timing.update_count += 1
        observe_phase("update", self.name, timer.elapsed)
        return timer.elapsed

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, table: Table, workload: Workload | None) -> None:
        """Build internal state from the table (and optional workload)."""

    @abstractmethod
    def _estimate(self, query: Query) -> float:
        """Return the estimated cardinality (may be un-clamped)."""

    def _estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Raw estimates for a batch; override where batching is real math.

        The default issues the queries one by one through
        :meth:`_estimate`, preserving the paper's scalar semantics
        (including the order in which any stateful inference RNG is
        consumed).  Vectorized overrides must return bit-identical or
        numerically equivalent values (within 1e-9 relative) to the
        scalar loop — `tests/test_batch_equivalence.py` enforces this
        for every registered estimator.
        """
        return np.array([self._estimate(q) for q in queries], dtype=np.float64)

    def _update(
        self, table: Table, appended: np.ndarray, workload: Workload | None
    ) -> None:
        """Default update: rebuild from scratch on the new table."""
        self._fit(table, workload)

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        if self._table is None:
            raise RuntimeError(f"{self.name} has not been fit")
        return self._table

    def model_size_bytes(self) -> int:
        """Approximate model footprint; 0 when not meaningful."""
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
